"""Ablations of this repo's own design choices (DESIGN.md §2).

Not paper figures — these justify the documented deviations: the
phase-2.5 joint polish, lazy Adam over SGD, and the landmark-selection
strategy choice.
"""

from __future__ import annotations

from conftest import is_fast, save_report
from repro.bench import ablations

FAST = is_fast()


def test_ablation_joint_pass(benchmark):
    out = {}

    def run():
        out["res"] = ablations.ablate_joint_pass(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("ablation_joint_pass", out["res"]["report"])
    res = out["res"]["results"]
    # The joint pass is on by default because it never hurts materially.
    assert (
        res["with joint pass"]["mean_rel"]
        <= res["without joint pass"]["mean_rel"] * 1.1
    )


def test_ablation_optimizer(benchmark):
    out = {}

    def run():
        out["res"] = ablations.ablate_optimizer(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("ablation_optimizer", out["res"]["report"])
    res = out["res"]["results"]
    # Adam converges at least as well as SGD at these budgets (the reason
    # it is the default; SGD remains available for fidelity).
    assert res["lazy adam"] <= res["sgd (paper)"] * 1.1


def test_ablation_landmark_strategy(benchmark):
    out = {}

    def run():
        out["res"] = ablations.ablate_landmark_strategy(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("ablation_landmarks_strategy", out["res"]["report"])
    res = out["res"]["results"]
    assert all(v < 0.5 for v in res.values())  # every strategy trains sanely
