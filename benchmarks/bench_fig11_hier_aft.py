"""Fig. 11 (+ Figs. 7/8) — hierarchical training and active fine-tuning.

Four arms share a validation set: RNE-Naive, RNE-Hier, and both with an
active-fine-tuning tail.  Paper shape: Hier converges faster and lower than
Naive; AFT pushes each plateau further down.  The Fig. 7 statistic (share
of collapsed embedding pairs) should be higher for the flat model.
"""

from __future__ import annotations

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig11_hier_aft(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig11_hier_aft(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig11_hier_aft", out["res"]["report"])

    finals = out["res"]["final"]
    # Hierarchy helps at equal sample budget.
    assert finals["RNE-Hier"] < finals["RNE-Naive"]
    # Fine-tuning never leaves a model worse than its own starting point.
    assert finals["RNE-Hier-AFT"] <= finals["RNE-Hier"] + 1e-9
    assert finals["RNE-Naive-AFT"] <= finals["RNE-Naive"] + 1e-9
