"""Fig. 16 — range and kNN query performance (F1 + time).

Paper shape: RNE's F1 is high (>0.9 at city-scale radii) and above the
geometric baselines; the exact G-tree/V-tree scores F1 = 1 but pays
search-time for it; the embedding index answers range queries in
microseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig16_report(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig16_range_knn(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig16_range_knn", out["res"]["report"])

    res = out["res"]
    # Exact baselines must be exact.
    assert all(f == pytest.approx(1.0) for f in res["f1"]["G-tree"])
    # RNE accuracy above geometry on average (paper: 5-10% better).
    assert np.mean(res["f1"]["RNE"]) >= np.mean(res["f1"]["Euclidean"]) - 0.02
    assert np.mean(res["f1"]["RNE"]) >= np.mean(res["f1"]["Manhattan"]) - 0.02


def test_rne_range_query_speed(benchmark):
    rne = ex.get_method("BJ-S", "rne", fast=FAST).impl
    graph = ex.get_dataset("BJ-S", fast=FAST)
    rng = np.random.default_rng(0)
    targets = rng.choice(graph.n, size=min(200, graph.n), replace=False)
    tau = float(np.mean(rne.model.matrix.std(axis=0)) * 4)

    def run():
        for s in targets[:20]:
            rne.range_query(int(s), targets, tau)

    benchmark(run)


def test_rne_knn_query_speed(benchmark):
    rne = ex.get_method("BJ-S", "rne", fast=FAST).impl
    graph = ex.get_dataset("BJ-S", fast=FAST)
    rng = np.random.default_rng(1)
    targets = rng.choice(graph.n, size=min(200, graph.n), replace=False)

    def run():
        for s in targets[:20]:
            rne.knn(int(s), targets, 10)

    benchmark(run)
