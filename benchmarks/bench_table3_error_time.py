"""Table III — mean relative error and query time for every method.

Per-method query latency is measured by pytest-benchmark over a fixed batch
of queries on each dataset; errors come from the shared comparison run.
The paper's shape: RNE fastest among index methods with the lowest error of
the approximate ones; exact methods (H2H/CH) slower; geometry fastest but
10-20x less accurate.
"""

from __future__ import annotations

import pytest

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()
DATASETS = ex.DATASET_NAMES
TIMED_METHODS = ["euclidean", "manhattan", "h2h", "lt", "rne"]
SEARCH_METHODS = ["ch", "ach"]  # scalar-query methods, timed on fewer pairs


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("method", TIMED_METHODS)
def test_query_batch(benchmark, dataset, method):
    """Vectorised-batch query latency (how these methods run in practice)."""
    built = ex.get_method(dataset, method, fast=FAST)
    pairs = ex.get_workload(dataset, fast=FAST).pairs[:500]
    benchmark(built.query_pairs, pairs)


@pytest.mark.parametrize("dataset", DATASETS[:1])
@pytest.mark.parametrize("method", SEARCH_METHODS)
def test_query_single(benchmark, dataset, method):
    """Per-query latency of the search-based hierarchies."""
    built = ex.get_method(dataset, method, fast=FAST)
    pairs = ex.get_workload(dataset, fast=FAST).pairs[:30]

    def run():
        for s, t in pairs:
            built.query(int(s), int(t))

    benchmark(run)


def test_table3_report(benchmark):
    """Regenerates the full Table III (errors + times) and saves it."""
    data = {}

    def run():
        data["cmp"] = ex.comparison(fast=FAST)
        return data["cmp"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    report = ex.table3(data=data["cmp"])
    save_report("table3", report)
    # Shape assertions from the paper:
    recs = data["cmp"]["records"]
    for ds in data["cmp"]["datasets"]:
        rne = recs[(ds, "rne")]
        assert rne["mean_rel"] < recs[(ds, "euclidean")]["mean_rel"]
        assert rne["mean_rel"] < recs[(ds, "manhattan")]["mean_rel"]
        assert rne["query_us"] < recs[(ds, "lt")]["query_us"]
