"""Fig. 14 — representation-function ablation: RNE vs DeepWalk-Regression.

Paper shape: DR beats raw geometry (it learns something), RNE beats DR
once it has a reasonable number of training samples, and RNE's inference
cost (O(d) arithmetic) is far below a forward pass through a 1K-100K
parameter network.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig14_representation(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig14_representation(
            multipliers=(1, 4) if FAST else (1, 4, 16), fast=FAST
        )
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig14_representation", out["res"]["report"])

    results = out["res"]["results"]
    mults = sorted(results["RNE"].keys())
    # With enough data RNE is the most accurate representation.
    best_mult = mults[-1]
    rne_err = results["RNE"][best_mult]
    for name, series in results.items():
        if name == "RNE":
            continue
        assert rne_err <= series[best_mult] + 1e-9, f"RNE should beat {name}"


@pytest.mark.parametrize("method", ["rne", "dr-1k"])
def test_inference_speed(benchmark, method):
    """RNE inference must be cheaper than even the smallest DR network."""
    built = ex.get_method("BJ-S", method, fast=True)
    pairs = ex.get_workload("BJ-S", fast=True).pairs[:500]
    benchmark(built.query_pairs, pairs)
