"""Scaling behaviour: RNE vs graph size, and the oracle's wall.

Quantifies the paper's third headline claim ("scales well to large road
networks"): RNE's per-query cost is O(d) — flat in |V| — its index O(|V| d),
while the Distance Oracle's construction explodes, which is why the paper
runs it only on its smallest dataset.
"""

from __future__ import annotations

import numpy as np

from conftest import is_fast, save_report
from repro.bench import ablations

FAST = is_fast()


def test_scaling(benchmark):
    out = {}

    def run():
        out["res"] = ablations.scaling_experiment(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("scaling", out["res"]["report"])

    rows = out["res"]["rows"]
    sizes = [r[0] for r in rows]
    times = [float(r[3]) for r in rows]
    index_bytes = [int(r[4]) for r in rows]
    # Query time flat in |V| (allow generous noise), index linear-ish.
    assert max(times) < 20 * min(times)
    growth = index_bytes[-1] / index_bytes[0]
    size_growth = sizes[-1] / sizes[0]
    assert growth < 4 * size_growth  # O(|V| d), with d stepping once
