"""Table IV — index size and building time per method.

Build times of the cheap indexes are measured directly with
pytest-benchmark; the expensive ones (CH/ACH/RNE) are read from the shared
comparison run, exactly as the paper reports one build per configuration.
Expected shape: CH/ACH smallest index but slowest build; hub labels (H2H)
large and fast to build; RNE's index is O(|V| d) — a fraction of the label
index — at moderate build cost; LT sits at |U|/d times the RNE size.
"""

from __future__ import annotations

import pytest

from conftest import is_fast, save_report
from repro.bench import experiments as ex
from repro.bench.methods import build_method

FAST = is_fast()


@pytest.mark.parametrize("method", ["lt", "euclidean"])
def test_build_cheap_index(benchmark, method):
    graph = ex.get_dataset("BJ-S", fast=FAST)
    benchmark.pedantic(
        build_method, args=(method, graph), kwargs={"seed": 0},
        iterations=1, rounds=3,
    )


def test_build_hub_labels(benchmark):
    graph = ex.get_dataset("BJ-S", fast=True)  # exact CH + labels: keep small
    benchmark.pedantic(
        build_method, args=("h2h", graph), kwargs={"seed": 0},
        iterations=1, rounds=1,
    )


def test_table4_report(benchmark):
    data = {}

    def run():
        data["cmp"] = ex.comparison(fast=FAST)
        return data["cmp"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    report = ex.table4(data=data["cmp"])
    save_report("table4", report)

    recs = data["cmp"]["records"]
    for ds in data["cmp"]["datasets"]:
        if (ds, "lt") in recs and (ds, "rne") in recs:
            # LT stores |U| x |V| >= 2d x |V| = 2x RNE (scale-free claim).
            assert recs[(ds, "rne")]["index_bytes"] <= recs[(ds, "lt")]["index_bytes"]
        # The paper's "RNE is 1/10-1/3 of H2H" claim depends on label sizes
        # growing with graph scale (hundreds of hubs per vertex at millions
        # of vertices); at laptop scale hub labels stay small, so we only
        # check that RNE's per-vertex cost is the fixed d * 8 bytes the
        # paper derives, not a cross-method inequality.
        if (ds, "rne") in recs:
            graph = ex.get_dataset(ds, fast=FAST)
            per_vertex = recs[(ds, "rne")]["index_bytes"] / graph.n
            assert per_vertex <= 128 * 8 + 1  # d <= 128 in every config
