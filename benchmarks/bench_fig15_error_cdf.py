"""Fig. 15 — cumulative error distribution per method.

Paper shape: RNE's CDF dominates the other approximate methods (more
queries under every error threshold), and all index methods dominate raw
Euclidean/Manhattan geometry.
"""

from __future__ import annotations

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig15_error_cdf(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig15_error_cdf(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig15_error_cdf", out["res"]["report"])

    curves = out["res"]["curves"]
    # RNE dominates geometry at every threshold.
    assert (curves["rne"] >= curves["euclidean"] - 1e-9).all()
    assert (curves["rne"] >= curves["manhattan"] - 1e-9).all()
    # And is at least competitive with ACH / the oracle overall.
    assert curves["rne"].mean() >= curves["oracle"].mean() - 0.05
