"""Fig. 12 — the landmark-count ablation for vertex-phase sampling.

All arms branch from one shared hierarchy-phase model and differ only in
how vertex-phase pairs are selected.  Paper shape: a *moderate* landmark
count wins; too few landmarks underperform even random pairs.
"""

from __future__ import annotations

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig12_landmarks(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig12_landmarks(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig12_landmarks", out["res"]["report"])

    best = out["res"]["best"]
    lm_scores = {k: v for k, v in best.items() if k.startswith("LM")}
    # The best landmark configuration should beat the smallest one
    # (too-few-landmarks pathology from the paper).
    counts = sorted(lm_scores, key=lambda k: int(k[2:]))
    assert min(lm_scores.values()) <= lm_scores[counts[0]]
