"""Shared benchmark infrastructure.

Every bench file regenerates one table or figure of the paper.  Heavy
artefacts (datasets, built methods, workloads) are cached per process via
``repro.bench.experiments``'s lru caches, so running the whole directory in
one pytest session builds each index exactly once.

Set ``REPRO_BENCH_FAST=1`` to run every benchmark on scaled-down datasets
(seconds instead of minutes), and ``REPRO_BENCH_SCALE=<float>`` to grow or
shrink the standard datasets.

Reports land in ``benchmarks/results/<name>.txt`` and are echoed to stdout;
EXPERIMENTS.md records the committed runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
RESULTS_DIR = Path(__file__).parent / "results"


def is_fast() -> bool:
    return FAST


def save_report(name: str, text: str) -> None:
    """Persist a table/series report and echo it for the console log.

    Fast-mode reports go to a separate file so a quick validation run never
    overwrites committed standard-mode results.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = ".fast" if FAST else ""
    path = RESULTS_DIR / f"{name}{suffix}.txt"
    header = f"# mode: {'fast' if FAST else 'standard'}\n"
    path.write_text(header + text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return FAST
