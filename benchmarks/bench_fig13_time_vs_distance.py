"""Fig. 13 — query time versus query distance scale.

Paper shape: CH/ACH query time grows with distance (bigger search spaces);
H2H roughly flat; LT and RNE exactly flat (O(|U|) / O(d) arithmetic,
distance-independent), with RNE below LT.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


@pytest.mark.parametrize("method", ["ch", "lt", "rne"])
def test_short_vs_long_queries(benchmark, method):
    """Benchmark one method on its longest-distance query group."""
    graph = ex.get_dataset("BJ-S", fast=FAST)
    from repro.bench.workloads import distance_scale_groups

    groups = distance_scale_groups(graph, num_groups=3, per_group=100, seed=21)
    built = ex.get_method("BJ-S", method, fast=FAST)
    pairs = groups[-1].pairs

    def run():
        built.query_pairs(pairs)

    benchmark(run)


def test_fig13_report(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig13_time_vs_distance(
            methods=("ch", "ach", "h2h", "lt", "rne"), fast=FAST
        )
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig13_time_vs_distance", out["res"]["report"])

    times = out["res"]["times"]
    # CH search grows with distance; RNE stays flat (arithmetic only).
    assert times["ch"][-1] > times["ch"][0]
    rne = np.array(times["rne"])
    assert rne.max() < 10 * max(rne.min(), 1e-6)
    # RNE is the fastest non-trivial method at every distance scale.
    for i in range(len(out["res"]["bounds"])):
        assert times["rne"][i] < times["lt"][i]
        assert times["rne"][i] < times["h2h"][i]
