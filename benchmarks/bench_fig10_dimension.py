"""Fig. 10 — error versus embedding dimension and training volume.

Paper shape: error decreases with more training samples for every d, with
diminishing returns; larger d has more capacity (lower floor) but needs
more samples to get there.
"""

from __future__ import annotations

import numpy as np

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig10_dimension(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig10_dimension(
            dims=(8, 16) if FAST else (8, 16, 32, 64),
            sample_multipliers=(4, 16) if FAST else (4, 16, 64),
            fast=FAST,
        )
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig10_dimension", out["res"]["report"])

    table = out["res"]["table"]
    mults = sorted(next(iter(table.values())).keys())
    # More samples should help (or at least not hurt much) per dimension.
    improved = [
        table[d][mults[-1]] <= table[d][mults[0]] * 1.2 for d in table
    ]
    assert np.mean(improved) >= 0.5
