"""Fig. 9 — the effect of the Lp metric on embedding error.

Trains identically configured RNEs with p in {0.5, 1, 2, 3, 4, 5} and
reports the converged validation error.  Paper shape: L1 clearly lowest;
no monotone trend among the others.
"""

from __future__ import annotations

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig9_lp(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig9_lp(
            ps=(0.5, 1.0, 2.0, 4.0) if FAST else (0.5, 1.0, 2.0, 3.0, 4.0, 5.0),
            fast=FAST,
        )
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig9_lp", out["res"]["report"])

    errors = out["res"]["errors"]
    # The paper's claim: L1 is the best representation metric.
    assert errors[1.0] == min(errors.values())
