"""Supplementary table: the exact-method design space.

Not a paper figure — a summary of every exact index this repo implements
(bidirectional Dijkstra, CH, H2H, CH hub labels, multi-level G-tree, SILC
all-pairs), positioning RNE's approximate trade-off against the exact
frontier: query time vs index size vs build time.
"""

from __future__ import annotations

import pytest

from conftest import is_fast, save_report
from repro.bench import experiments as ex
from repro.bench.reporting import format_table, human_bytes

FAST = is_fast()
EXACT_METHODS = ["dijkstra", "ch", "h2h", "hl", "gtree", "silc"]


@pytest.mark.parametrize("method", ["h2h", "hl", "gtree", "silc"])
def test_exact_query_speed(benchmark, method):
    built = ex.get_method("BJ-S", method, fast=FAST)
    pairs = ex.get_workload("BJ-S", fast=FAST).pairs[:50]

    def run():
        for s, t in pairs:
            built.query(int(s), int(t))

    benchmark(run)


def test_exact_methods_report(benchmark):
    import time

    rows = {}

    def run():
        workload = ex.get_workload("BJ-S", fast=FAST)
        pairs = workload.pairs[:200]
        for m in EXACT_METHODS:
            built = ex.get_method("BJ-S", m, fast=FAST)
            start = time.perf_counter()
            pred = built.query_pairs(pairs)
            per_q = (time.perf_counter() - start) / len(pairs) * 1e6
            # Exactness is asserted, not assumed.
            import numpy as np

            assert np.allclose(pred, workload.truth[:200]), m
            rows[m] = {
                "query_us": per_q,
                "build_s": built.build_seconds,
                "index_bytes": built.index_bytes(),
            }
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    report = format_table(
        ["method", "us/query", "build s", "index"],
        [
            [m, f"{r['query_us']:.1f}", f"{r['build_s']:.2f}",
             human_bytes(r["index_bytes"])]
            for m, r in rows.items()
        ],
        title="Exact methods — query/build/size trade-off (BJ-S)",
    )
    save_report("exact_methods", report)

    # SILC is the O(1)-query / quadratic-memory corner.
    assert rows["silc"]["index_bytes"] == max(
        r["index_bytes"] for r in rows.values()
    )
    # Dijkstra is index-free.
    assert rows["dijkstra"]["index_bytes"] == 0
