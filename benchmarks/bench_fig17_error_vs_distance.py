"""Fig. 17 — absolute and relative error across distance scales.

Paper shape: RNE's e_abs is roughly flat in distance (the squared loss
optimises absolute error uniformly), so its e_rel *decreases* with
distance; ACH's relative error grows with distance; the oracle's e_rel is
roughly flat at its epsilon.
"""

from __future__ import annotations

import numpy as np

from conftest import is_fast, save_report
from repro.bench import experiments as ex

FAST = is_fast()


def test_fig17_error_vs_distance(benchmark):
    out = {}

    def run():
        out["res"] = ex.fig17_error_vs_distance(fast=FAST)
        return out["res"]

    benchmark.pedantic(run, iterations=1, rounds=1)
    save_report("fig17_error_vs_distance", out["res"]["report"])

    res = out["res"]
    rne_rel = np.array(res["rel"]["rne"])
    # e_rel of RNE should trend down with distance: last group below first.
    assert rne_rel[-1] <= rne_rel[0] + 1e-9
    # RNE should be the most accurate approximate method on the longest
    # distance scale (where the paper's Fig. 17 shows its biggest margin).
    for m in res["rel"]:
        if m == "rne":
            continue
        assert rne_rel[-1] <= res["rel"][m][-1] + 0.02
