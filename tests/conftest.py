"""Shared fixtures: small deterministic graphs reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, grid_city


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """The paper's Fig. 1 example: 13 vertices, 15 edges, known distances.

    Vertices are 0-based (paper's v1..v13 -> 0..12).
    """
    edges = [
        (0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 2), (2, 5, 3),
        (3, 4, 4), (4, 6, 2), (5, 6, 2), (5, 7, 3), (6, 7, 3),
        (7, 8, 2), (7, 9, 4), (8, 10, 3), (9, 11, 2), (10, 12, 2),
    ]
    coords = np.array(
        [
            (0, 4), (2, 5), (1, 3), (3, 3), (5, 4), (2, 1), (4, 2),
            (4, 0), (6, 0), (2, -2), (8, 0), (1, -4), (9, 1),
        ],
        dtype=float,
    )
    return Graph(13, edges, coords=coords)


@pytest.fixture(scope="session")
def line_graph() -> Graph:
    """Path 0-1-2-3-4 with unit weights: trivially verifiable distances."""
    coords = np.column_stack([np.arange(5, dtype=float), np.zeros(5)])
    return Graph(5, [(i, i + 1, 1.0) for i in range(4)], coords=coords)


@pytest.fixture(scope="session")
def small_grid() -> Graph:
    """An 8x8 perturbed grid city (64 vertices), connected, with coords."""
    return grid_city(8, 8, seed=42)


@pytest.fixture(scope="session")
def medium_grid() -> Graph:
    """A 14x14 grid city used by training tests (196 vertices)."""
    return grid_city(14, 14, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
