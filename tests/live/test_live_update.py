"""Staleness-matrix tests for the versioned live-update subsystem.

The invariant under test: after ``LiveUpdateManager.update`` publishes a
new embedding, every serving surface — engine distances/kNN/range, the
tree index, the resilient oracle, in-flight prepared target sets —
answers bit-identically to a stack built *fresh* from the updated state.
No cache, radius, or SSSP tree may keep serving the pre-update world.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import EmbeddingTreeIndex
from repro.core.pipeline import RNE
from repro.graph import Graph
from repro.live import LiveUpdateManager, UpdateStats, perturb_weights
from repro.reliability.checkpoint import CheckpointManager, unpack_state
from repro.reliability.fallback import ResilientOracle
from repro.serving import BatchQueryEngine


def _apply_update(manager, rne, seed=0, count=6, **kw):
    new_graph, changed = perturb_weights(
        rne.graph, factor=4.0, count=count, seed=seed + 1
    )
    kw.setdefault("samples", 1500)
    kw.setdefault("rounds", 2)
    kw.setdefault("validation_size", 200)
    stats = manager.update(new_graph, changed, seed=seed, **kw)
    return new_graph, stats


class TestPerturbWeights:
    def test_topology_and_coords_preserved(self, live_graph):
        new_graph, changed = perturb_weights(live_graph, count=5, seed=2)
        assert new_graph.n == live_graph.n
        assert new_graph.m == live_graph.m
        assert np.array_equal(new_graph.coords, live_graph.coords)
        assert changed.shape == (5, 2)

    def test_factor_applied_to_exactly_count_edges(self, live_graph):
        new_graph, changed = perturb_weights(
            live_graph, factor=3.0, count=4, seed=5
        )
        _, _, old_ws = live_graph.edge_array()
        _, _, new_ws = new_graph.edge_array()
        scaled = np.flatnonzero(~np.isclose(new_ws, old_ws))
        assert scaled.size == 4
        assert np.allclose(new_ws[scaled], old_ws[scaled] * 3.0)

    def test_invalid_args(self, live_graph):
        with pytest.raises(ValueError):
            perturb_weights(live_graph, factor=0.0)
        with pytest.raises(ValueError):
            perturb_weights(live_graph, count=0)


class TestConstruction:
    def test_requires_hierarchy(self, live_graph):
        from repro.core.model import RNEModel
        from repro.core.pipeline import BuildHistory

        flat = RNE(
            live_graph,
            RNEModel.random(live_graph.n, 4, seed=0),
            None,
            BuildHistory(),
        )
        with pytest.raises(ValueError):
            LiveUpdateManager(flat)

    def test_rejects_engine_on_foreign_model(self, clone_rne, base_rne):
        foreign = BatchQueryEngine.from_rne(base_rne)
        with pytest.raises(ValueError, match="different model"):
            LiveUpdateManager(clone_rne, engines=(foreign,))

    def test_rejects_engine_ahead_of_model(self, clone_rne):
        engine = BatchQueryEngine.from_rne(clone_rne)
        engine.set_version(clone_rne.version + 3)
        with pytest.raises(ValueError, match="ahead"):
            LiveUpdateManager(clone_rne, engines=(engine,))

    def test_rejects_oracle_on_foreign_rne(self, clone_rne, base_rne):
        foreign = ResilientOracle(base_rne.graph, rne=base_rne)
        with pytest.raises(ValueError, match="different RNE"):
            LiveUpdateManager(clone_rne, oracles=(foreign,))


class TestPublish:
    def test_version_advances_by_one_when_published(self, clone_rne):
        manager = LiveUpdateManager(clone_rne)
        before = clone_rne.version
        _, stats = _apply_update(manager, clone_rne)
        assert stats.graph_changed
        if stats.published:
            assert clone_rne.version == before + 1
            assert stats.version_after == before + 1
            assert stats.changed_rows > 0
        else:
            assert clone_rne.version == before

    def test_index_refresh_bit_identical_to_full_rebuild(self, clone_rne):
        manager = LiveUpdateManager(clone_rne)
        _, stats = _apply_update(manager, clone_rne)
        assert stats.published, "perturbation should trigger a publish"
        index = clone_rne.index
        rebuilt = EmbeddingTreeIndex(
            clone_rne.hierarchy, clone_rne.model.matrix, clone_rne.model.p
        )
        assert np.array_equal(index.node_centres, rebuilt.node_centres)
        assert np.array_equal(index.node_radii, rebuilt.node_radii)
        assert 0 < stats.index_nodes_refreshed <= index.node_radii.size

    def test_graph_swapped_when_changed(self, clone_rne):
        manager = LiveUpdateManager(clone_rne)
        new_graph, stats = _apply_update(manager, clone_rne)
        assert stats.graph_changed
        assert clone_rne.graph is new_graph

    def test_version_roundtrips_through_artifact(self, clone_rne, tmp_path):
        manager = LiveUpdateManager(clone_rne)
        new_graph, stats = _apply_update(manager, clone_rne)
        assert stats.published
        path = tmp_path / "updated.npz"
        clone_rne.save(str(path))
        loaded = RNE.load(str(path), new_graph)
        assert loaded.version == clone_rne.version == 1
        assert np.array_equal(loaded.model.matrix, clone_rne.model.matrix)


class TestStalenessMatrix:
    """Post-update serving must equal a stack built fresh from new state."""

    @pytest.fixture()
    def updated(self, clone_rne):
        engine = BatchQueryEngine.from_rne(clone_rne, graph=clone_rne.graph)
        oracle = ResilientOracle(clone_rne.graph, rne=clone_rne)
        manager = LiveUpdateManager(
            clone_rne, engines=(engine,), oracles=(oracle,)
        )
        rng = np.random.default_rng(9)
        targets = np.sort(
            rng.choice(clone_rne.graph.n, size=40, replace=False)
        ).astype(np.int64)
        sources = rng.choice(clone_rne.graph.n, size=16, replace=False).astype(
            np.int64
        )
        # Warm version-keyed hot rows (promote-on-second-touch needs 3 hits).
        prepared = engine.prepare(targets)
        for _ in range(3):
            engine.knn(sources, prepared, 5)
        new_graph, stats = _apply_update(manager, clone_rne)
        assert stats.published
        fresh_engine = BatchQueryEngine.from_rne(clone_rne, graph=new_graph)
        return engine, oracle, fresh_engine, sources, targets, prepared, stats

    def test_distances_match_fresh_engine(self, updated):
        engine, _, fresh, sources, targets, _, _ = updated
        pairs = np.column_stack([sources, targets[: sources.size]])
        assert np.array_equal(engine.distances(pairs), fresh.distances(pairs))

    def test_knn_matches_fresh_engine_and_brute_force(self, updated, clone_rne):
        engine, _, fresh, sources, targets, _, _ = updated
        got = engine.knn(sources, targets, 5)
        want = fresh.knn(sources, targets, 5)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
        # Brute force over the updated embedding: lexsort (dist, id).
        matrix = clone_rne.model.matrix
        for s, g in zip(sources, got):
            dist = np.abs(matrix[targets] - matrix[s]).sum(axis=1)
            order = np.lexsort((targets, dist))[:5]
            assert np.array_equal(g, targets[order])

    def test_range_matches_fresh_engine(self, updated):
        engine, _, fresh, sources, targets, _, _ = updated
        tau = 6.0
        got = engine.range_query(sources, targets, tau)
        want = fresh.range_query(sources, targets, tau)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_prepared_targets_survive_the_swap(self, updated):
        engine, _, fresh, sources, targets, prepared, _ = updated
        got = engine.knn(sources, prepared, 5)  # prepared pre-update
        want = fresh.knn(sources, targets, 5)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_oracle_matches_fresh_engine(self, updated):
        _, oracle, fresh, sources, targets, _, _ = updated
        got = oracle.knn_batch(sources, targets, 5)
        want = fresh.knn(sources, targets, 5)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
        got_r = oracle.range_batch(sources, targets, 6.0)
        want_r = fresh.range_query(sources, targets, 6.0)
        for g, w in zip(got_r, want_r):
            assert np.array_equal(g, w)

    def test_oracle_exact_fallback_uses_new_graph(self, updated, clone_rne):
        _, oracle, _, sources, _, _, _ = updated
        from repro.algorithms.dijkstra import dijkstra

        s = int(sources[0])
        row = oracle.engine.sssp_row(s)
        assert np.allclose(row, dijkstra(clone_rne.graph, s))

    def test_stale_hot_rows_purged_and_unreachable(self, updated):
        engine, _, _, _, _, _, stats = updated
        purge = stats.engine_invalidations[0]
        assert purge["hot_rows_purged"] > 0
        # Every surviving/new hot-row key carries the current version: a
        # stale hit is impossible by key construction.
        for key in engine.hot_rows._data:
            assert key[0] == engine.version

    def test_update_stats_surface_in_snapshot(self, updated):
        engine, oracle, _, _, _, _, stats = updated
        for snap_owner in (engine, oracle.engine):
            records = snap_owner.snapshot()["live_updates"]
            assert len(records) == 1
            assert records[0]["version_after"] == stats.version_after
            assert records[0]["published"] is True

    def test_report_mentions_versions(self, updated):
        *_, stats = updated
        text = stats.report()
        assert "version" in text
        assert "->" in text


class TestCheckpointJournal:
    def test_published_update_journals_versioned_matrix(
        self, clone_rne, tmp_path
    ):
        ckpts = CheckpointManager(str(tmp_path / "ckpts"))
        manager = LiveUpdateManager(clone_rne, checkpoints=ckpts)
        _, stats = _apply_update(manager, clone_rne)
        assert stats.published
        assert stats.checkpoint_path is not None
        arrays, meta = ckpts.load("live_update")
        restored = [np.zeros_like(clone_rne.model.matrix)]
        version = unpack_state(arrays, meta, restored)
        assert version == clone_rne.version == 1
        assert np.array_equal(restored[0], clone_rne.model.matrix)

    def test_unpublished_update_does_not_journal(self, clone_rne, tmp_path):
        ckpts = CheckpointManager(str(tmp_path / "ckpts"))
        manager = LiveUpdateManager(clone_rne, checkpoints=ckpts)
        # Same graph, no perturbation: keep-best declines to publish.
        stats = manager.update(
            clone_rne.graph,
            np.array([[0, 1]]),
            samples=500,
            rounds=1,
            validation_size=100,
            seed=0,
        )
        assert not stats.graph_changed
        if not stats.published:
            assert stats.checkpoint_path is None


class TestHistory:
    def test_sequential_updates_accumulate(self, clone_rne):
        manager = LiveUpdateManager(clone_rne)
        _apply_update(manager, clone_rne, seed=0)
        _apply_update(manager, clone_rne, seed=7)
        assert len(manager.history) == 2
        assert all(isinstance(s, UpdateStats) for s in manager.history)
        versions = [s.version_after for s in manager.history]
        assert versions == sorted(versions)
