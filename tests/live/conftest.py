"""Shared fixtures for the live-update suite: one trained serving stack."""

from __future__ import annotations

import pytest

from repro.core import RNEConfig, build_rne
from repro.graph import grid_city


@pytest.fixture(scope="module")
def live_graph():
    return grid_city(10, 10, seed=3)


@pytest.fixture(scope="module")
def base_rne(live_graph):
    """One trained hierarchy-backed RNE shared (read-only) by the module.

    Tests that publish updates must work on ``clone_rne`` copies.
    """
    config = RNEConfig(
        d=8, hier_samples_per_level=1500, hier_epochs=2,
        vertex_samples=4000, vertex_epochs=3, num_landmarks=12,
        joint_epochs=1, joint_samples=1000, active=False,
        finetune_rounds=1, finetune_samples=800, validation_size=200, seed=0,
    )
    return build_rne(live_graph, config)


@pytest.fixture()
def clone_rne(base_rne, tmp_path):
    """A fully independent copy of the trained RNE (fresh index, version 0)."""
    path = tmp_path / "model.npz"
    base_rne.save(str(path))
    from repro.core.pipeline import RNE

    return RNE.load(str(path), base_rne.graph)
