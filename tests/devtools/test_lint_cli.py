"""CLI / driver-level tests for the linter, plus the repo-wide meta-test."""

import os

import pytest

from repro.devtools.lint import iter_python_files, lint_file, lint_paths, main
from repro.devtools.rules import all_rules

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

BAD_SOURCE = "import numpy as np\nx = np.zeros(3)\n"
CLEAN_SOURCE = "import numpy as np\nx = np.zeros(3, dtype=np.float64)\n"


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return str(path)


class TestDriver:
    def test_lint_paths_finds_violations(self, tmp_path):
        _write(tmp_path, "src/repro/core/mod.py", BAD_SOURCE)
        found = lint_paths([str(tmp_path)], root=str(tmp_path))
        assert [v.code for v in found] == ["RNE002"]
        assert found[0].path == "src/repro/core/mod.py"

    def test_select_and_ignore(self, tmp_path):
        _write(tmp_path, "src/repro/core/mod.py", BAD_SOURCE)
        assert lint_paths([str(tmp_path)], select=["RNE001"], root=str(tmp_path)) == []
        assert lint_paths([str(tmp_path)], ignore=["RNE002"], root=str(tmp_path)) == []

    def test_syntax_error_reports_rne000(self, tmp_path):
        path = _write(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        found = lint_file(path, all_rules(), root=str(tmp_path))
        assert len(found) == 1
        assert found[0].code == "RNE000"
        assert "does not parse" in found[0].message

    def test_fixtures_directories_are_excluded(self, tmp_path):
        _write(tmp_path, "src/repro/core/mod.py", CLEAN_SOURCE)
        _write(tmp_path, "tests/fixtures/corpus.py", BAD_SOURCE)
        files = iter_python_files([str(tmp_path)])
        relative = [os.path.relpath(f, str(tmp_path)) for f in files]
        assert all("fixtures" not in f.split(os.sep) for f in relative)
        assert lint_paths([str(tmp_path)], root=str(tmp_path)) == []

    def test_explicit_file_argument(self, tmp_path):
        path = _write(tmp_path, "src/repro/core/mod.py", BAD_SOURCE)
        assert iter_python_files([path]) == [path]


class TestCli:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/mod.py", CLEAN_SOURCE)
        assert main([str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "clean" in captured.err

    def test_exit_one_on_violations(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/mod.py", BAD_SOURCE)
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RNE002" in captured.out
        assert "1 violation(s)" in captured.err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "no-such-dir")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_select_flag(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/mod.py", BAD_SOURCE)
        assert main(["--select", "RNE001", str(tmp_path)]) == 0
        assert main(["--select", "rne002", str(tmp_path)]) == 1
        capsys.readouterr()

    def test_quiet_suppresses_summary(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/mod.py", CLEAN_SOURCE)
        assert main(["-q", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_violation_render_format(self, tmp_path):
        _write(tmp_path, "src/repro/core/mod.py", BAD_SOURCE)
        found = lint_paths([str(tmp_path)], root=str(tmp_path))
        rendered = found[0].render()
        assert rendered.startswith("src/repro/core/mod.py:2:")
        assert "RNE002" in rendered


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_repo_lints_clean(tree):
    """Meta-test: the repository itself must satisfy its own linter."""
    target = os.path.join(REPO_ROOT, tree)
    if not os.path.isdir(target):
        pytest.skip(f"no {tree}/ directory in this checkout")
    found = lint_paths([target], root=REPO_ROOT)
    assert found == [], "repo lint violations:\n" + "\n".join(
        v.render() for v in found
    )
