"""RNE007 positive cases: float equality on computed distances."""


def same(dist_a, dist_b):
    return dist_a == dist_b


def check(pred, phi):
    if pred != phi:
        return False
    return True
