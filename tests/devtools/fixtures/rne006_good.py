"""RNE006 negative cases: core/ consuming the repo's own graph layer."""
import numpy as np

from repro.graph import Graph


def degrees(graph: Graph) -> np.ndarray:
    return graph.degrees()
