"""RNE008 positive cases: randomness without a seed parameter (pretend
src/repro path)."""
import numpy as np


def sample_pairs(n, count):
    rng = np.random.default_rng(42)  # seeded, but the caller cannot change it
    return rng.integers(n, size=(count, 2))
