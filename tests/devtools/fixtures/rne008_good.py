"""RNE008 negative cases: seed threaded through, private helpers exempt."""
import numpy as np


def sample_pairs(n, count, seed=None):
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return rng.integers(n, size=(count, 2))


def shuffled(items, rng):
    return rng.permutation(items)


def _internal(n):
    return np.random.default_rng(0).integers(n)
