"""RNE003 positive cases: hidden mutation of parameters (pretend core/)."""
import numpy as np


def update(matrix, grad):
    matrix += grad
    return matrix


def update_rows(model, rows, step):
    model.matrix[rows] -= step
    return model


def reduce_into(dist, other):
    np.minimum(dist, other, out=dist)
