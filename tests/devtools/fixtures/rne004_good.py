"""RNE004 negative cases: small bounded loops and waived batch loops."""


def train(config, pairs, batches):
    for _ in range(config.epochs):  # bounded by epochs, not n
        pass
    # perf: loop-ok (one iteration per batch, each fully vectorised)
    for batch in batches(len(pairs)):
        pass


def levels(model):
    for level in range(model.num_levels):
        pass
