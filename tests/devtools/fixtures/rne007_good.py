"""RNE007 negative cases: tolerances and exact sentinels."""
import numpy as np

INF = float("inf")


def same(dist_a, dist_b):
    return np.isclose(dist_a, dist_b, rtol=1e-9)


def unreachable(dist):
    return dist == INF  # INF propagates exactly through min/+


def trivial(dist):
    return dist == 0  # exact-zero sentinel


def hops(hop_count_a, hop_count_b):
    return hop_count_a == hop_count_b  # integers, not distances
