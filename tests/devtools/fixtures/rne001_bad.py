"""RNE001 positive cases: unseeded randomness."""
import numpy as np


def roll():
    return np.random.rand(3)  # legacy global RNG


def fresh():
    rng = np.random.default_rng()  # no seed argument
    return rng.normal(size=4)
