"""RNE006 positive cases: networkx inside core/ (pretend core/ path)."""
import networkx as nx
from networkx.algorithms import shortest_path


def convert(graph):
    return nx.Graph(graph), shortest_path
