"""RNE009 negative cases: entry points carrying @shapes (pretend
core/model.py)."""
from repro.devtools import contracts
from repro.devtools.contracts import shapes


@shapes(diff="(...,d):float")
def lp_distance(diff, p):
    return abs(diff).sum(axis=-1)


@contracts.shapes(diff="(...,d):float")
def lp_gradient(diff, p):
    return diff


class RNEModel:
    @shapes(pairs="(k,2):int")
    def query_pairs(self, pairs):
        return pairs
