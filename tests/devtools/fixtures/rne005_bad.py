"""RNE005 positive cases: assert used for runtime validation."""


def check(pairs, phi):
    assert pairs.shape[0] == phi.shape[0], "pairs and phi must align"
    assert phi.ndim == 1
