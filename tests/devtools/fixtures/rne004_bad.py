"""RNE004 positive cases: Python loops over vertex/pair data (pretend
core/training.py)."""


def slow_gather(pairs, matrix):
    acc = 0.0
    for s, t in pairs:
        acc += abs(matrix[s] - matrix[t]).sum()
    return acc


def slow_scan(graph):
    total = 0
    for v in range(graph.n):
        total += v
    return total
