"""RNE009 positive cases: undecorated entry points (pretend core/model.py).

Only ``lp_distance``/``lp_gradient``/``RNEModel.query_pairs`` are declared
entry points for that path, so the missing decorators below must all fire.
"""


def lp_distance(diff, p):
    return abs(diff).sum(axis=-1)


def lp_gradient(diff, p):
    return diff


class RNEModel:
    def query_pairs(self, pairs):
        return pairs
