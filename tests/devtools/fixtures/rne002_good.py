"""RNE002 negative cases: explicit dtypes, and converters are exempt."""
import numpy as np


def build(n, data):
    a = np.zeros(n, dtype=np.float64)
    b = np.empty((n, 2), dtype=np.int64)
    c = np.full(n, 1.5, dtype=np.float64)
    d = np.asarray(data)  # converter: dtype= not required
    return a, b, c, d
