"""RNE003 negative cases: local mutation and waived in-place contracts."""
import numpy as np


def update(matrix, grad):
    out = matrix.copy()
    out += grad  # local array: fine
    return out


def train(model, step):
    model.matrix += step  # mutation-ok (documented in-place training)
    return model


def accumulate(self, grad):
    self.total += grad  # self-mutation is the object's own business
