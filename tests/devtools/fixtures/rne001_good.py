"""RNE001 negative cases: sanctioned randomness."""
import numpy as np


def roll(seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(3)


def coerce(seed=None):
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _rng():
    # Sanctioned helper: the single place allowed to mint entropy.
    return np.random.default_rng()
