"""RNE005 negative cases: explicit raises."""


def check(pairs, phi):
    if pairs.shape[0] != phi.shape[0]:
        raise ValueError("pairs and phi must align")
    if phi.ndim != 1:
        raise ValueError(f"phi must be 1-d, got {phi.ndim}-d")
