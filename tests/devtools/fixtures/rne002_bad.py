"""RNE002 positive cases: dtype-less constructors (pretend src/repro path)."""
import numpy as np


def build(n):
    a = np.zeros(n)
    b = np.empty((n, 2))
    c = np.full(n, 1.5)
    return a, b, c
