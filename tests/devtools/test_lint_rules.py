"""Per-rule positive/negative coverage over the fixture corpus.

Each fixture file is parsed under a *pretend* repo path so path-scoped
rules (core/-only, hot-path-only, ...) fire exactly as they would on real
code.
"""

import os

import pytest

from repro.devtools.rules import FileContext, all_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: rule code -> (pretend relpath, expected minimum positive findings)
CASES = {
    "RNE001": ("src/repro/core/sampling.py", 2),
    "RNE002": ("src/repro/core/training.py", 3),
    "RNE003": ("src/repro/core/training.py", 3),
    "RNE004": ("src/repro/core/training.py", 2),
    "RNE005": ("src/repro/core/model.py", 2),
    "RNE006": ("src/repro/core/hybrid.py", 2),
    "RNE007": ("src/repro/core/metrics.py", 2),
    "RNE008": ("src/repro/core/sampling.py", 1),
    "RNE009": ("src/repro/core/model.py", 3),
}

RULES = {rule.code: rule for rule in all_rules()}


def run_rule(code: str, fixture: str, relpath: str):
    path = os.path.join(FIXTURES, fixture)
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    ctx = FileContext(path, relpath, source)
    return RULES[code].run(ctx)


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_flags_bad_fixture(code):
    relpath, minimum = CASES[code]
    fixture = f"{code.lower()}_bad.py"
    found = run_rule(code, fixture, relpath)
    assert len(found) >= minimum, f"{code} missed violations in {fixture}"
    assert all(v.code == code for v in found)
    assert all(v.line >= 1 and v.col >= 1 for v in found)


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_passes_good_fixture(code):
    relpath, _ = CASES[code]
    fixture = f"{code.lower()}_good.py"
    found = run_rule(code, fixture, relpath)
    assert found == [], f"{code} false positives: {[v.render() for v in found]}"


def test_rules_respect_scoping():
    # The same dtype-less constructor outside src/repro is not RNE002's
    # business (tests and benchmarks construct arrays freely).
    found = run_rule("RNE002", "rne002_bad.py", "tests/core/test_training.py")
    assert found == []
    # RNE003 is core/-only.
    found = run_rule("RNE003", "rne003_bad.py", "src/repro/algorithms/h2h.py")
    assert found == []
    # RNE004 only watches the declared hot-path modules; analysis.py is
    # diagnostics, not a hot path.
    found = run_rule("RNE004", "rne004_bad.py", "src/repro/core/analysis.py")
    assert found == []
    # ...while the sampling and parallel-labelling modules are in scope.
    found = run_rule("RNE004", "rne004_bad.py", "src/repro/core/sampling.py")
    assert len(found) >= 2
    found = run_rule("RNE004", "rne004_bad.py", "src/repro/parallel/pool.py")
    assert len(found) >= 2


def test_generic_waiver_suppresses_any_rule():
    source = "import numpy as np\nx = np.zeros(3)  # rne: ignore[RNE002]\n"
    ctx = FileContext("<mem>", "src/repro/core/fake.py", source)
    assert RULES["RNE002"].run(ctx) == []
    # ...but a waiver for a different code does not.
    source = "import numpy as np\nx = np.zeros(3)  # rne: ignore[RNE001]\n"
    ctx = FileContext("<mem>", "src/repro/core/fake.py", source)
    assert len(RULES["RNE002"].run(ctx)) == 1


def test_rule_catalogue_is_complete():
    codes = [rule.code for rule in all_rules()]
    assert codes == sorted(codes)
    assert len(codes) >= 8
    assert len(set(codes)) == len(codes)
    for rule in all_rules():
        assert rule.name and rule.description
