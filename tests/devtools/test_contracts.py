"""Unit tests for the @shapes runtime contract decorator."""

import subprocess
import sys

import numpy as np
import pytest

from repro.devtools import contracts
from repro.devtools.contracts import ContractError, check_array, shapes


@shapes(pairs="(k,2):int", phi="(k,):float:finite", ret="(k,):float")
def _predict(pairs, phi):
    return phi * 2.0


class TestGoodShapesPass:
    def test_basic(self):
        pairs = np.array([[0, 1], [1, 2]], dtype=np.int64)
        phi = np.array([1.0, 2.0])
        out = _predict(pairs, phi)
        assert out.shape == (2,)

    def test_kwargs_and_lists(self):
        out = _predict(pairs=[[0, 1]], phi=np.array([3.0]))
        assert float(out[0]) == 6.0

    def test_empty_is_a_valid_k(self):
        out = _predict(np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64))
        assert out.size == 0

    def test_variadic_batch_dims(self):
        @shapes(diff="(...,d):float")
        def norm(diff):
            return np.abs(diff).sum(axis=-1)

        assert norm(np.zeros(4)).shape == ()
        assert norm(np.zeros((3, 4))).shape == (3,)
        assert norm(np.zeros((2, 3, 4))).shape == (2, 3)

    def test_optional_none(self):
        @shapes(targets="?(k,):int")
        def lookup(targets=None):
            return targets

        assert lookup(None) is None
        assert lookup(np.arange(3)) is not None

    def test_scalar_spec(self):
        @shapes(alpha="():float")
        def scale(alpha):
            return alpha

        assert scale(1.5) == 1.5
        with pytest.raises(ContractError, match="scalar"):
            scale(np.ones(3))


class TestBadShapesRaise:
    def test_wrong_rank(self):
        with pytest.raises(ContractError, match="rank"):
            _predict(np.array([0, 1], dtype=np.int64), np.array([1.0]))

    def test_wrong_literal_dim(self):
        with pytest.raises(ContractError, match="dimension"):
            _predict(np.zeros((2, 3), dtype=np.int64), np.array([1.0, 2.0]))

    def test_dim_unification_across_args(self):
        with pytest.raises(ContractError, match="'k'"):
            _predict(np.zeros((2, 2), dtype=np.int64), np.array([1.0, 2.0, 3.0]))

    def test_dtype_kind(self):
        with pytest.raises(ContractError, match="dtype"):
            _predict(np.zeros((2, 2), dtype=np.float64), np.array([1.0, 2.0]))

    def test_finiteness(self):
        with pytest.raises(ContractError, match="finite"):
            _predict(np.zeros((2, 2), dtype=np.int64), np.array([1.0, np.inf]))

    def test_none_for_required(self):
        with pytest.raises(ContractError, match="None"):
            _predict(None, np.array([1.0]))

    def test_return_contract(self):
        @shapes(x="(k,):float", ret="(k,):int")
        def bad_ret(x):
            return x  # float out, int promised

        with pytest.raises(ContractError, match="return"):
            bad_ret(np.ones(3))

    def test_contract_error_is_value_error(self):
        assert issubclass(ContractError, ValueError)


class TestDecoratorHygiene:
    def test_unknown_argument_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="no such argument"):
            @shapes(nope="(k,):float")
            def fn(x):
                return x

    def test_specs_recorded_for_introspection(self):
        assert _predict.__contract_specs__["pairs"] == "(k,2):int"

    def test_bad_spec_string_rejected(self):
        with pytest.raises(ValueError, match="bad contract spec"):
            shapes(x="k,2")

    def test_check_array_imperative(self):
        check_array("phi", np.ones(3), "(k,):float")
        with pytest.raises(ContractError):
            check_array("phi", np.ones((3, 1)), "(k,):float")


class TestEnableSwitch:
    def test_runtime_toggle_disables_checks(self):
        previous = contracts.set_contracts_enabled(False)
        try:
            # Violating call passes straight through while disabled.
            out = _predict(np.zeros((2, 5), dtype=np.float32), np.array([1.0]))
            assert out.shape == (1,)
        finally:
            contracts.set_contracts_enabled(previous)
        with pytest.raises(ContractError):
            _predict(np.zeros((2, 5), dtype=np.float32), np.array([1.0]))

    def test_env_off_makes_decorator_a_noop(self):
        # REPRO_CONTRACTS=off at import time must leave functions unwrapped.
        code = (
            "import numpy as np\n"
            "from repro.devtools.contracts import shapes\n"
            "@shapes(x='(k,2):int')\n"
            "def fn(x):\n"
            "    return x\n"
            "assert not hasattr(fn, '__wrapped__')\n"
            "fn(np.zeros(7))  # violates the spec: must NOT raise\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_CONTRACTS": "off"},
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_core_entry_points_are_wrapped(self):
        from repro.core.model import lp_distance
        from repro.core.training import train_flat

        assert hasattr(lp_distance, "__contract_specs__")
        assert hasattr(train_flat, "__contract_specs__")
