"""Tests for serving observability: histograms, op counters, snapshots."""

import pytest

from repro.serving import LatencyHistogram, LRUCache, OpStats, ServingStats


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        assert h.count == 0
        assert h.min is None and h.max is None

    def test_percentile_is_conservative(self):
        """Reported percentiles never understate the recorded sample."""
        h = LatencyHistogram()
        for value in (1e-4, 2e-4, 3e-4, 5e-3):
            h.record(value)
        assert h.percentile(50) >= 2e-4
        assert h.percentile(99) >= 5e-3
        # ...but stays within one log-bin (factor 10^(1/8)) of the truth.
        assert h.percentile(99) <= 5e-3 * 10 ** (1 / 8)

    def test_min_max_mean_exact(self):
        h = LatencyHistogram()
        h.record(0.001)
        h.record(0.003)
        assert h.min == 0.001
        assert h.max == 0.003
        assert h.mean == pytest.approx(0.002)

    def test_overflow_reports_exact_max(self):
        h = LatencyHistogram(hi=1.0)
        h.record(50.0)  # beyond the top edge
        assert h.percentile(99) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(lo=1.0, hi=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(bins_per_decade=0)
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestOpStats:
    def test_counters_and_throughput(self):
        op = OpStats()
        op.record(0.5, 100)
        op.record(0.5, 300)
        assert op.calls == 2
        assert op.items == 400
        assert op.queries_per_second == pytest.approx(400.0)

    def test_snapshot_keys(self):
        op = OpStats()
        op.record(0.001, 10)
        snap = op.snapshot()
        assert set(snap) == {
            "calls", "items", "seconds", "p50_us", "p99_us",
            "mean_us", "max_us", "queries_per_second",
        }
        assert snap["p50_us"] >= 1000.0  # conservative upper edge
        assert snap["max_us"] == pytest.approx(1000.0)

    def test_zero_time_throughput(self):
        assert OpStats().queries_per_second == 0.0


class TestServingStats:
    def test_timed_records_against_op(self):
        stats = ServingStats()
        with stats.timed("knn", 7):
            pass
        assert stats.op("knn").calls == 1
        assert stats.op("knn").items == 7

    def test_timed_records_on_exception(self):
        stats = ServingStats()
        with pytest.raises(RuntimeError):
            with stats.timed("boom", 1):
                raise RuntimeError("x")
        assert stats.op("boom").calls == 1

    def test_snapshot_includes_caches(self):
        stats = ServingStats()
        cache = stats.register_cache(LRUCache(4, name="hot_rows"))
        cache.put("a", 1)
        cache.get("a")
        with stats.timed("distances", 3):
            pass
        snap = stats.snapshot()
        assert snap["ops"]["distances"]["items"] == 3
        assert snap["caches"]["hot_rows"]["hits"] == 1

    def test_report_mentions_ops_and_caches(self):
        stats = ServingStats()
        stats.register_cache(LRUCache(4, name="hot_rows"))
        with stats.timed("range", 2):
            pass
        text = stats.report()
        assert "range" in text
        assert "hot_rows" in text
        assert "hit_rate" in text
