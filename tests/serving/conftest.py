"""Shared fixtures for the serving suite: one small embedding stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmbeddingTreeIndex, RNEModel
from repro.graph import PartitionHierarchy
from repro.serving import BatchQueryEngine


@pytest.fixture(scope="module")
def stack(small_grid):
    """(model, index) over the 8x8 grid — session graph, module embedding."""
    hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
    rng = np.random.default_rng(1)
    matrix = rng.normal(size=(small_grid.n, 6))
    model = RNEModel(matrix, p=1.0)
    index = EmbeddingTreeIndex(hierarchy, matrix, p=1.0)
    return model, index


@pytest.fixture()
def engine(stack, small_grid):
    """A fresh engine per test: caches and stats are mutable state."""
    model, index = stack
    return BatchQueryEngine(model=model, index=index, graph=small_grid)
