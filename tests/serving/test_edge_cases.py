"""Satellite edge-case matrix: every kNN/range implementation must agree.

The same degenerate inputs — empty target sets, ``tau == 0``, the source
being a target, ``k > #targets``, duplicated target ids — are pushed
through every implementation pair that shares a metric:

* embedding metric: ``EmbeddingTreeIndex`` one-shot and prepared paths,
  ``BatchQueryEngine.knn``/``range_query``, healthy ``ResilientOracle``;
* network metric: ``knn_true``/``range_true``, ``BatchQueryEngine.exact_*``,
  degraded ``ResilientOracle``.

Results must be identical arrays (same ids, same order, same dtype).
"""

import numpy as np
import pytest

from repro.algorithms.knn import knn_true, range_true
from repro.core import RNEModel
from repro.core.pipeline import RNE, BuildHistory
from repro.reliability import ResilientOracle
from repro.reliability.faults import truncate_file
from repro.serving import BatchQueryEngine

EMPTY = np.array([], dtype=np.int64)


@pytest.fixture(scope="module")
def rne(stack, small_grid):
    model, index = stack
    return RNE(small_grid, model, index.hierarchy, BuildHistory())


@pytest.fixture(scope="module")
def healthy_oracle(small_grid, rne):
    return ResilientOracle(small_grid, rne=rne)


@pytest.fixture(scope="module")
def degraded_oracle(small_grid, rne, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "rne.npz"
    rne.save(str(path))
    truncate_file(path, fraction=0.5)
    oracle = ResilientOracle(small_grid, str(path))
    assert not oracle.healthy
    return oracle


def _target_cases(source, n):
    return {
        "empty": EMPTY,
        "duplicates": np.array([9, 3, 9, 9, 3, 17], dtype=np.int64),
        "source_in_targets": np.array([source, 5, 11], dtype=np.int64),
        "all_vertices": np.arange(n, dtype=np.int64),
    }


class TestEmbeddingImplementationsAgree:
    SOURCE = 7

    @pytest.mark.parametrize("case", ["empty", "duplicates", "source_in_targets", "all_vertices"])
    @pytest.mark.parametrize("k", [1, 2, 99])  # 99 > every target set
    def test_knn(self, case, k, stack, engine, healthy_oracle, small_grid):
        _, index = stack
        targets = _target_cases(self.SOURCE, small_grid.n)[case]
        reference = index.knn_query(self.SOURCE, targets, k)
        assert reference.size == min(k, np.unique(targets).size)
        batch = engine.knn(np.array([self.SOURCE], dtype=np.int64), targets, k)[0]
        np.testing.assert_array_equal(batch, reference)
        oracle_out = healthy_oracle.knn(self.SOURCE, targets, k)
        np.testing.assert_array_equal(oracle_out, reference)

    @pytest.mark.parametrize("case", ["empty", "duplicates", "source_in_targets", "all_vertices"])
    @pytest.mark.parametrize("tau", [0.0, 3.0])
    def test_range(self, case, tau, stack, engine, healthy_oracle, small_grid):
        _, index = stack
        targets = _target_cases(self.SOURCE, small_grid.n)[case]
        reference = index.range_query(self.SOURCE, targets, tau)
        assert np.array_equal(reference, np.sort(reference))  # sorted-ids
        batch = engine.range_query(
            np.array([self.SOURCE], dtype=np.int64), targets, tau
        )[0]
        np.testing.assert_array_equal(batch, reference)
        oracle_out = healthy_oracle.range_query(self.SOURCE, targets, tau)
        np.testing.assert_array_equal(oracle_out, reference)

    def test_tau_zero_with_source_in_targets(self, stack, engine, small_grid):
        """Embedding distance to itself is exactly 0 -> always within tau=0."""
        _, index = stack
        targets = np.array([self.SOURCE, 5, 11], dtype=np.int64)
        out = engine.range_query(
            np.array([self.SOURCE], dtype=np.int64), targets, 0.0
        )[0]
        assert self.SOURCE in out
        np.testing.assert_array_equal(
            out, index.range_query(self.SOURCE, targets, 0.0)
        )


class TestExactImplementationsAgree:
    SOURCE = 12

    @pytest.mark.parametrize("case", ["empty", "duplicates", "source_in_targets", "all_vertices"])
    @pytest.mark.parametrize("k", [1, 2, 99])
    def test_knn(self, case, k, engine, degraded_oracle, small_grid):
        targets = _target_cases(self.SOURCE, small_grid.n)[case]
        reference = knn_true(small_grid, self.SOURCE, targets, k)
        batch = engine.exact_knn(
            np.array([self.SOURCE], dtype=np.int64), targets, k
        )[0]
        np.testing.assert_array_equal(batch, reference)
        oracle_out = degraded_oracle.knn(self.SOURCE, targets, k)
        np.testing.assert_array_equal(oracle_out, reference)

    @pytest.mark.parametrize("case", ["empty", "duplicates", "source_in_targets", "all_vertices"])
    @pytest.mark.parametrize("tau", [0.0, 4.0])
    def test_range(self, case, tau, engine, degraded_oracle, small_grid):
        targets = _target_cases(self.SOURCE, small_grid.n)[case]
        reference = range_true(small_grid, self.SOURCE, targets, tau)
        batch = engine.exact_range(
            np.array([self.SOURCE], dtype=np.int64), targets, tau
        )[0]
        np.testing.assert_array_equal(batch, reference)
        oracle_out = degraded_oracle.range_query(self.SOURCE, targets, tau)
        np.testing.assert_array_equal(oracle_out, reference)

    def test_tau_zero_returns_only_the_source(self, engine, small_grid):
        """Positive edge weights: nothing but the source is at distance 0."""
        targets = np.array([self.SOURCE, 5, 11], dtype=np.int64)
        out = engine.exact_range(
            np.array([self.SOURCE], dtype=np.int64), targets, 0.0
        )[0]
        np.testing.assert_array_equal(out, [self.SOURCE])

    def test_k_exceeds_targets_returns_all(self, engine, small_grid):
        targets = np.array([9, 3, 9, 9, 3, 17], dtype=np.int64)  # 3 unique
        out = engine.exact_knn(
            np.array([self.SOURCE], dtype=np.int64), targets, 99
        )[0]
        assert out.size == 3
        assert set(out.tolist()) == {3, 9, 17}
