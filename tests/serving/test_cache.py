"""Tests for the counting LRU cache behind the serving engine."""

import pytest

from repro.serving import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(2, name="c")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_contains_does_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert cache.hits == 0
        assert cache.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_update_existing_key_keeps_size(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2


class TestEviction:
    def test_least_recent_evicted(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # "b" is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10


class TestDisabledAndClear:
    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None  # put stored nothing
        assert cache.misses == 1
        assert cache.evictions == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.get("a") is None

    def test_snapshot_fields(self):
        cache = LRUCache(4, name="hot")
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        snap = cache.snapshot()
        assert snap == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "invalidations": 0,
            "hit_rate": 0.5,
            "size": 1,
            "capacity": 4,
        }


class TestPurgeAndInvalidations:
    def test_purge_removes_matching_and_counts(self):
        cache = LRUCache(8)
        for v in range(4):
            cache.put((v % 2, v), v)
        dropped = cache.purge(lambda key: key[0] == 0)
        assert dropped == 2
        assert cache.invalidations == 2
        assert len(cache) == 2
        assert cache.get((1, 1)) == 1
        assert cache.get((0, 0)) is None

    def test_purge_nothing_matches(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.purge(lambda key: False) == 0
        assert cache.invalidations == 0
        assert "a" in cache

    def test_clear_counts_invalidations(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert cache.invalidations == 2
        cache.clear()  # idempotent: nothing left to drop
        assert cache.invalidations == 2

    def test_purge_preserves_recency_of_survivors(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.purge(lambda key: key == "a")
        cache.put("c", 3)  # room for both: "a" was purged, not evicted
        assert "b" in cache
        assert "c" in cache
        assert cache.evictions == 0
