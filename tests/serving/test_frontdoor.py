"""Tests for the micro-batching text front door."""

import numpy as np
import pytest

from repro.algorithms.knn import knn_true, range_true
from repro.serving import BatchQueryEngine, MicroBatcher, parse_query, serve_lines


class TestParseQuery:
    def test_blank_and_comment_lines(self):
        assert parse_query("") is None
        assert parse_query("   ") is None
        assert parse_query("# a comment") is None

    def test_valid_queries(self):
        q = parse_query("dist 3 9")
        assert (q.op, q.source, q.param) == ("dist", 3, 9.0)
        q = parse_query("KNN 2 5")  # case-insensitive op
        assert (q.op, q.source, q.param) == ("knn", 2, 5.0)
        q = parse_query("range 0 2.5")
        assert (q.op, q.source, q.param) == ("range", 0, 2.5)

    @pytest.mark.parametrize(
        "line, reason",
        [
            ("bogus 1 2", "unknown operation"),
            ("dist 1", "takes 2 arguments"),
            ("dist 1 2 3", "takes 2 arguments"),
            ("dist x 2", "bad vertex id"),
            ("knn 1 x", "bad knn parameter"),
            ("knn 1 0", "k must be >= 1"),
            ("range 1 -2", "tau must be >= 0"),
        ],
    )
    def test_malformed(self, line, reason):
        with pytest.raises(ValueError, match=reason):
            parse_query(line)

    def test_range_tau_zero_is_legal(self):
        assert parse_query("range 1 0").param == 0.0


class TestMicroBatcher:
    def test_bad_batch_size(self, engine):
        with pytest.raises(ValueError):
            MicroBatcher(engine, batch_size=0)

    def test_grouping_one_engine_call_per_group(self, engine):
        batcher = MicroBatcher(engine, batch_size=100)
        tickets = [batcher.submit(f"dist {s} 7") for s in (0, 1, 2, 3)]
        batcher.flush()
        # Four same-target dist queries collapse into ONE distances call.
        assert engine.stats.op("distances").calls == 1
        assert engine.stats.op("distances").items == 4
        answers = [batcher.take(t) for t in tickets]
        assert all(float(a) >= 0 for a in answers)

    def test_auto_flush_at_batch_size(self, engine):
        batcher = MicroBatcher(engine, batch_size=2)
        batcher.submit("dist 0 1")
        assert engine.stats.op("distances").calls == 0
        batcher.submit("dist 2 1")
        assert engine.stats.op("distances").calls == 1

    def test_malformed_line_answers_in_place(self, engine):
        batcher = MicroBatcher(engine)
        ticket = batcher.submit("bogus 1 2")
        assert batcher.take(ticket).startswith("error: unknown operation")
        assert batcher.errors == 1

    def test_blank_line_has_no_ticket(self, engine):
        batcher = MicroBatcher(engine)
        assert batcher.submit("# hi") is None
        assert batcher.submit("") is None

    def test_knn_without_targets_errors(self, engine):
        batcher = MicroBatcher(engine)  # no target set configured
        ticket = batcher.submit("knn 0 3")
        assert batcher.take(ticket) == "error: no target set configured"

    def test_out_of_range_vertex_becomes_error_line(self, engine, small_grid):
        batcher = MicroBatcher(engine)
        good = batcher.submit("dist 0 1")
        bad = batcher.submit(f"dist 0 {small_grid.n + 5}")
        assert batcher.take(bad).startswith("error:")
        assert float(batcher.take(good)) >= 0  # batch not poisoned


class TestServeLines:
    def test_answers_in_input_order(self, engine, stack, small_grid):
        model, index = stack
        targets = np.arange(0, small_grid.n, 3, dtype=np.int64)
        lines = [
            "# warmup comment",
            "dist 0 9",
            "knn 4 3",
            "",
            "range 2 2.5",
            "dist 1 9",
        ]
        answers = list(
            serve_lines(lines, engine, targets=targets, batch_size=4)
        )
        assert len(answers) == 4  # comments/blanks get no answer line
        assert float(answers[0]) == pytest.approx(model.query(0, 9))
        expect_knn = index.knn_query(4, targets, 3)
        assert answers[1] == " ".join(str(int(v)) for v in expect_knn)
        expect_range = index.range_query(2, targets, 2.5)
        assert answers[2] == " ".join(str(int(v)) for v in expect_range)
        assert float(answers[3]) == pytest.approx(model.query(1, 9))

    def test_exact_only_engine_serves_exact_answers(self, small_grid):
        engine = BatchQueryEngine(graph=small_grid)
        targets = np.arange(0, small_grid.n, 4, dtype=np.int64)
        lines = ["dist 0 5", "knn 3 2", "range 6 2.0"]
        answers = list(serve_lines(lines, engine, targets=targets))
        from repro.algorithms.dijkstra import pair_distances

        true_d = pair_distances(
            small_grid, np.array([[0, 5]], dtype=np.int64)
        )[0]
        assert float(answers[0]) == pytest.approx(true_d)
        expect_knn = knn_true(small_grid, 3, targets, 2)
        assert answers[1] == " ".join(str(int(v)) for v in expect_knn)
        expect_range = range_true(small_grid, 6, targets, 2.0)
        assert answers[2] == " ".join(str(int(v)) for v in expect_range)

    def test_multi_window_streaming(self, engine, small_grid):
        lines = [f"dist {i} 0" for i in range(10)]
        answers = list(serve_lines(lines, engine, batch_size=3))
        assert len(answers) == 10
        # Windows of 3 -> at least 4 distances calls (grouped per window).
        assert engine.stats.op("distances").calls >= 4
