"""Tests for the batched query engine: bit-identity, caching, fallbacks."""

import time

import numpy as np
import pytest

from repro.algorithms.dijkstra import pair_distances
from repro.algorithms.knn import knn_true, range_true
from repro.core.index import PreparedTargets
from repro.serving import BatchQueryEngine


def _random_targets(rng, n, size, with_duplicates=True):
    targets = rng.integers(0, n, size=size).astype(np.int64)
    if with_duplicates and size >= 2:
        targets[0] = targets[-1]  # force at least one duplicate id
    return targets


class TestConstruction:
    def test_needs_model_or_graph(self):
        with pytest.raises(ValueError):
            BatchQueryEngine()

    def test_mismatched_index_rejected(self, stack, small_grid):
        from repro.core import RNEModel

        _, index = stack
        other = RNEModel(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            BatchQueryEngine(model=other, index=index)

    def test_prepare_passes_through_prepared(self, engine, rng):
        prepared = engine.prepare(np.arange(10, dtype=np.int64))
        assert engine.prepare(prepared) is prepared

    def test_invalid_args(self, engine, rng):
        targets = np.arange(8, dtype=np.int64)
        sources = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError):
            engine.knn(sources, targets, 0)
        with pytest.raises(ValueError):
            engine.range_query(sources, targets, -1.0)
        with pytest.raises(ValueError):
            engine.exact_knn(sources, targets, 0)
        with pytest.raises(ValueError):
            engine.exact_range(sources, targets, -0.5)


class TestDistances:
    def test_matches_per_pair_loop(self, engine, stack, rng, small_grid):
        model, _ = stack
        pairs = rng.integers(0, small_grid.n, size=(50, 2)).astype(np.int64)
        batch = engine.distances(pairs)
        # perf: loop-ok (the per-pair baseline the batch path must match)
        loop = np.array([model.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_array_equal(batch, loop)

    def test_exact_matches_dijkstra(self, engine, rng, small_grid):
        pairs = rng.integers(0, small_grid.n, size=(30, 2)).astype(np.int64)
        np.testing.assert_allclose(
            engine.exact_distances(pairs), pair_distances(small_grid, pairs)
        )

    def test_no_model_raises(self, small_grid):
        exact_only = BatchQueryEngine(graph=small_grid)
        with pytest.raises(ValueError):
            exact_only.distances(np.zeros((1, 2), dtype=np.int64))

    def test_no_graph_raises(self, stack):
        model, index = stack
        learned_only = BatchQueryEngine(model=model, index=index)
        with pytest.raises(ValueError):
            learned_only.exact_distances(np.zeros((1, 2), dtype=np.int64))


class TestBatchedBitIdentity:
    """Batched kNN/range must be bit-identical to the per-query index walk."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_knn_matches_per_query(self, engine, stack, small_grid, seed):
        _, index = stack
        rng = np.random.default_rng(seed)
        targets = _random_targets(rng, small_grid.n, 20)
        sources = rng.integers(0, small_grid.n, size=12).astype(np.int64)
        prepared = engine.prepare(targets)
        for k in (1, 3, 7, 100):
            batch = engine.knn(sources, prepared, k)
            for s, ids in zip(sources, batch):
                np.testing.assert_array_equal(
                    ids, index.knn_prepared(int(s), prepared, k)
                )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_range_matches_per_query(self, engine, stack, small_grid, seed):
        _, index = stack
        rng = np.random.default_rng(seed)
        targets = _random_targets(rng, small_grid.n, 20)
        sources = rng.integers(0, small_grid.n, size=12).astype(np.int64)
        prepared = engine.prepare(targets)
        for tau in (0.0, 1.0, 5.0, 50.0):
            batch = engine.range_query(sources, prepared, tau)
            for s, ids in zip(sources, batch):
                np.testing.assert_array_equal(
                    ids, index.range_prepared(int(s), prepared, tau)
                )

    def test_identity_survives_cache_promotion(self, engine, stack, small_grid):
        """Hot sources answered from cached rows give the same bits."""
        _, index = stack
        rng = np.random.default_rng(7)
        targets = _random_targets(rng, small_grid.n, 25)
        sources = rng.integers(0, small_grid.n, size=10).astype(np.int64)
        prepared = engine.prepare(targets)
        for _ in range(3):  # 1st touch, promotion, hit
            knn_out = engine.knn(sources, prepared, 5)
            range_out = engine.range_query(sources, prepared, 4.0)
            for s, k_ids, r_ids in zip(sources, knn_out, range_out):
                np.testing.assert_array_equal(
                    k_ids, index.knn_prepared(int(s), prepared, 5)
                )
                np.testing.assert_array_equal(
                    r_ids, index.range_prepared(int(s), prepared, 4.0)
                )
        assert engine.hot_rows.hits > 0

    def test_flat_engine_matches_brute(self, stack, small_grid):
        """Without an index the engine still honours the ordering contract."""
        model, _ = stack
        flat = BatchQueryEngine(model=model, graph=small_grid)
        rng = np.random.default_rng(11)
        targets = _random_targets(rng, small_grid.n, 15)
        sources = rng.integers(0, small_grid.n, size=6).astype(np.int64)
        for s, ids in zip(sources, flat.knn(sources, targets, 4)):
            np.testing.assert_array_equal(
                ids, model.knn_brute(int(s), targets, 4)
            )
        unique = np.unique(targets)
        for s, ids in zip(sources, flat.range_query(sources, targets, 3.0)):
            d = model.query_pairs(
                np.stack([np.full_like(unique, s), unique], axis=1)
            )
            np.testing.assert_array_equal(ids, unique[d <= 3.0])


class TestExactServing:
    def test_exact_knn_matches_knn_true(self, engine, rng, small_grid):
        targets = _random_targets(rng, small_grid.n, 18)
        sources = np.array([0, 17, 33], dtype=np.int64)
        for k in (1, 4, 50):
            for s, ids in zip(sources, engine.exact_knn(sources, targets, k)):
                np.testing.assert_array_equal(
                    ids, knn_true(small_grid, int(s), targets, k)
                )

    def test_exact_range_matches_range_true(self, engine, rng, small_grid):
        targets = _random_targets(rng, small_grid.n, 18)
        sources = np.array([2, 40], dtype=np.int64)
        for tau in (0.0, 2.5, 100.0):
            for s, ids in zip(
                sources, engine.exact_range(sources, targets, tau)
            ):
                np.testing.assert_array_equal(
                    ids, range_true(small_grid, int(s), targets, tau)
                )

    def test_sssp_row_cached(self, engine, small_grid):
        row1 = engine.sssp_row(5)
        row2 = engine.sssp_row(5)
        assert row1 is row2  # second call served from the LRU
        assert engine.sssp.hits == 1
        assert row1.shape == (small_grid.n,)


class TestCachingBehaviour:
    def test_promote_on_second_touch(self, engine, small_grid):
        targets = np.arange(16, dtype=np.int64)
        prepared = engine.prepare(targets)
        sources = np.array([3], dtype=np.int64)
        engine.knn(sources, prepared, 2)  # first touch: not admitted
        assert len(engine.hot_rows) == 0
        engine.knn(sources, prepared, 2)  # second touch: promoted
        assert len(engine.hot_rows) == 1
        engine.knn(sources, prepared, 2)  # third: cache hit
        assert engine.hot_rows.hits >= 1

    def test_cache_disabled(self, stack, small_grid):
        model, index = stack
        engine = BatchQueryEngine(
            model=model, index=index, graph=small_grid, row_cache_size=0
        )
        targets = np.arange(16, dtype=np.int64)
        sources = np.array([3], dtype=np.int64)
        for _ in range(4):
            engine.knn(sources, targets, 2)
        assert len(engine.hot_rows) == 0
        assert engine.hot_rows.hits == 0

    def test_prepared_sets_do_not_alias(self, engine, small_grid):
        """Same ids prepared twice -> distinct cache keys (token-based)."""
        targets = np.arange(10, dtype=np.int64)
        p1 = engine.prepare(targets)
        p2 = engine.prepare(targets)
        assert p1.token != p2.token

    def test_snapshot_and_report(self, engine, rng, small_grid):
        pairs = rng.integers(0, small_grid.n, size=(10, 2)).astype(np.int64)
        engine.distances(pairs)
        snap = engine.snapshot()
        assert snap["ops"]["distances"]["items"] == 10
        assert "hot_rows" in snap["caches"]
        assert "sssp" in snap["caches"]
        assert "distances" in engine.report()


class TestEmptyAndDegenerate:
    def test_empty_sources(self, engine):
        targets = np.arange(8, dtype=np.int64)
        assert engine.knn(np.array([], dtype=np.int64), targets, 3) == []
        assert engine.range_query(np.array([], dtype=np.int64), targets, 1.0) == []

    def test_empty_targets(self, engine):
        empty = np.array([], dtype=np.int64)
        sources = np.array([0, 1], dtype=np.int64)
        for out in (
            engine.knn(sources, empty, 3),
            engine.range_query(sources, empty, 1.0),
            engine.exact_knn(sources, empty, 3),
            engine.exact_range(sources, empty, 1.0),
        ):
            assert len(out) == 2
            for ids in out:
                assert ids.size == 0
                assert ids.dtype == np.int64


class TestThroughput:
    def test_batch_beats_per_pair_loop(self, engine, stack, rng, small_grid):
        """The vectorised pair path is far faster than the Python loop.

        The acceptance-grade >=10x measurement runs on a >=50k-vertex
        network in ``rne serving``; this guards the mechanism with a
        deliberately loose threshold so it cannot flake on slow CI.
        """
        model, _ = stack
        pairs = rng.integers(0, small_grid.n, size=(4000, 2)).astype(np.int64)

        def loop():
            # perf: loop-ok (the baseline under test)
            for s, t in pairs:
                model.query(int(s), int(t))

        t0 = time.perf_counter()
        loop()
        loop_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.distances(pairs)
        batch_seconds = time.perf_counter() - t0
        assert loop_seconds / max(batch_seconds, 1e-9) > 3.0


class TestPreparedTargets:
    def test_flat_validates_range(self, small_grid):
        with pytest.raises(ValueError):
            PreparedTargets.flat(
                small_grid.n, np.array([small_grid.n], dtype=np.int64)
            )

    def test_flat_dedupes_and_masks(self, small_grid):
        prepared = PreparedTargets.flat(
            small_grid.n, np.array([5, 3, 5, 9], dtype=np.int64)
        )
        np.testing.assert_array_equal(prepared.ids, [3, 5, 9])
        assert prepared.m == 3
        assert prepared.mask.sum() == 3
        assert not prepared.has_tree


class TestVersionContract:
    def test_negative_version_rejected(self, stack, small_grid):
        model, index = stack
        with pytest.raises(ValueError):
            BatchQueryEngine(model=model, index=index, version=-1)

    def test_set_version_monotonic(self, engine):
        engine.set_version(3)
        assert engine.version == 3
        with pytest.raises(ValueError, match="regress"):
            engine.set_version(2)
        # Same version is a legal no-op adoption.
        counts = engine.set_version(3)
        assert counts["hot_rows_purged"] == 0

    def test_hot_row_keys_carry_version(self, engine, small_grid):
        targets = np.arange(16, dtype=np.int64)
        prepared = engine.prepare(targets)
        sources = np.array([1, 2], dtype=np.int64)
        for _ in range(3):  # promote-on-second-touch needs repeats
            engine.knn(sources, prepared, 3)
        assert len(engine.hot_rows) > 0
        assert all(key[0] == engine.version for key in engine.hot_rows._data)

    def test_bump_purges_stale_rows_keeps_sssp(self, engine, small_grid):
        targets = np.arange(16, dtype=np.int64)
        prepared = engine.prepare(targets)
        sources = np.array([1, 2], dtype=np.int64)
        for _ in range(3):
            engine.knn(sources, prepared, 3)
        engine.sssp_row(0)
        cached_rows = len(engine.hot_rows)
        assert cached_rows > 0
        counts = engine.set_version(engine.version + 1)
        assert counts["hot_rows_purged"] == cached_rows
        assert len(engine.hot_rows) == 0
        assert len(engine.sssp) == 1  # embedding moved, graph did not
        assert counts["sssp_dropped"] == 0

    def test_bump_with_graph_drops_sssp(self, engine, small_grid):
        engine.sssp_row(0)
        counts = engine.set_version(engine.version + 1, graph=small_grid)
        assert counts["sssp_dropped"] == 1
        assert len(engine.sssp) == 0

    def test_results_identical_after_version_bump(self, engine, small_grid, rng):
        targets = _random_targets(rng, small_grid.n, 20)
        sources = rng.integers(0, small_grid.n, size=8).astype(np.int64)
        before = engine.knn(sources, targets, 4)
        engine.set_version(engine.version + 1)
        after = engine.knn(sources, targets, 4)
        for b, a in zip(before, after):
            np.testing.assert_array_equal(b, a)
