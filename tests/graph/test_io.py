"""Tests for DIMACS / edge-list / embedding serialisation."""

import numpy as np
import pytest

from repro.graph import Graph, GraphError
from repro.graph.io import (
    load_dimacs,
    load_edge_list,
    load_embedding,
    save_dimacs,
    save_edge_list,
    save_embedding,
)
from repro.reliability import ArtifactError
from repro.reliability.faults import corrupt_file, truncate_file


class TestDimacs:
    def test_roundtrip(self, tiny_graph, tmp_path):
        gr = tmp_path / "g.gr"
        co = tmp_path / "g.co"
        save_dimacs(tiny_graph, gr, co)
        back = load_dimacs(gr, co)
        assert back.n == tiny_graph.n
        assert back.m == tiny_graph.m
        np.testing.assert_allclose(back.coords, tiny_graph.coords, atol=1e-5)
        for e in tiny_graph.edges():
            assert back.edge_weight(e.u, e.v) == pytest.approx(e.weight, abs=1e-5)

    def test_roundtrip_without_coords(self, tiny_graph, tmp_path):
        gr = tmp_path / "g.gr"
        save_dimacs(tiny_graph, gr)
        back = load_dimacs(gr)
        assert back.coords is None
        assert back.m == tiny_graph.m

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c comment\n\np sp 2 2\na 1 2 5.0\na 2 1 5.0\n")
        g = load_dimacs(path)
        assert g.n == 2
        assert g.edge_weight(0, 1) == 5.0

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5.0\n")
        with pytest.raises(GraphError):
            load_dimacs(path)

    def test_bad_arc_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(GraphError):
            load_dimacs(path)

    def test_unknown_line_tag(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\nx 1 2 3\n")
        with pytest.raises(GraphError):
            load_dimacs(path)

    def test_save_coords_requires_coords(self, tmp_path):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            save_dimacs(g, tmp_path / "g.gr", tmp_path / "g.co")

    def test_arc_vertex_id_above_n(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 1 3 5.0\n")
        with pytest.raises(GraphError, match=r"out of range \[1, 2\] at line 2"):
            load_dimacs(path)

    def test_arc_vertex_id_zero(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 0 1 5.0\n")
        with pytest.raises(GraphError, match="out of range"):
            load_dimacs(path)

    def test_coordinate_vertex_id_out_of_range(self, tmp_path):
        gr = tmp_path / "g.gr"
        gr.write_text("p sp 2 2\na 1 2 5.0\na 2 1 5.0\n")
        co = tmp_path / "g.co"
        co.write_text("v 3 0.0 0.0\n")
        with pytest.raises(GraphError, match="out of range"):
            load_dimacs(gr, co)

    def test_nonpositive_n_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 0 0\n")
        with pytest.raises(GraphError, match="n=0"):
            load_dimacs(path)

    def test_arc_before_problem_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5.0\np sp 2 1\n")
        with pytest.raises(GraphError, match="before"):
            load_dimacs(path)


class TestEdgeList:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "edges.txt"
        save_edge_list(tiny_graph, path)
        back = load_edge_list(path)
        assert back.n == tiny_graph.n
        assert back.m == tiny_graph.m

    def test_explicit_n(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 2.5\n")
        g = load_edge_list(path, n=5)
        assert g.n == 5

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n0 1 2.5\n\n1 2 1.5\n")
        g = load_edge_list(path)
        assert g.m == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            load_edge_list(path)


class TestEmbeddingIO:
    def test_roundtrip(self, tmp_path):
        matrix = np.random.default_rng(0).normal(size=(10, 4))
        path = tmp_path / "emb.npz"
        save_embedding(path, matrix, p=1.0)
        back, p = load_embedding(path)
        np.testing.assert_allclose(back, matrix)
        assert p == 1.0

    def test_p_persisted(self, tmp_path):
        path = tmp_path / "emb.npz"
        save_embedding(path, np.ones((2, 2)), p=2.0)
        _, p = load_embedding(path)
        assert p == 2.0

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        save_embedding(path, np.random.default_rng(0).normal(size=(10, 4)))
        corrupt_file(path, seed=2, nbytes=8)
        with pytest.raises(ArtifactError):
            load_embedding(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        save_embedding(path, np.ones((10, 4)))
        truncate_file(path, fraction=0.4)
        with pytest.raises(ArtifactError):
            load_embedding(path)

    def test_legacy_npz_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        np.savez(path, matrix=np.ones((2, 2)), p=1.0)
        with pytest.raises(ArtifactError, match="manifest"):
            load_embedding(path)

    def test_expect_n_mismatch(self, tmp_path):
        path = tmp_path / "emb.npz"
        save_embedding(path, np.ones((10, 4)))
        load_embedding(path, expect_n=10)  # matching n passes
        with pytest.raises(ArtifactError, match="rows"):
            load_embedding(path, expect_n=11)

    def test_fractional_p_rejected_at_load(self, tmp_path):
        path = tmp_path / "emb.npz"
        save_embedding(path, np.ones((2, 2)), p=0.5)
        with pytest.raises(ArtifactError, match="p"):
            load_embedding(path)

    def test_nonfinite_matrix_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        matrix = np.ones((3, 2))
        matrix[1, 1] = np.nan
        save_embedding(path, matrix)
        with pytest.raises(ArtifactError, match="NaN"):
            load_embedding(path)
