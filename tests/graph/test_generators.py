"""Tests for the synthetic road-network generators."""

import numpy as np
import pytest

from repro.graph import (
    dataset,
    delaunay_country,
    grid_city,
    multi_city,
    radial_city,
)


class TestGridCity:
    def test_connected_with_coords(self):
        g = grid_city(10, 10, seed=0)
        assert g.is_connected()
        assert g.coords is not None
        assert g.coords.shape == (g.n, 2)

    def test_deterministic_with_seed(self):
        a = grid_city(6, 6, seed=3)
        b = grid_city(6, 6, seed=3)
        assert a.n == b.n and a.m == b.m
        np.testing.assert_allclose(a.coords, b.coords)

    def test_different_seeds_differ(self):
        a = grid_city(6, 6, seed=3)
        b = grid_city(6, 6, seed=4)
        assert not np.allclose(a.coords, b.coords)

    def test_weights_at_least_geometric(self):
        # Curvature noise only lengthens streets relative to straight line.
        g = grid_city(6, 6, seed=1, jitter=0.0)
        for e in g.edges():
            geo = np.linalg.norm(g.coords[e.u] - g.coords[e.v])
            assert e.weight >= geo - 1e-9

    def test_rejects_degenerate_size(self):
        with pytest.raises(ValueError):
            grid_city(1, 5)

    def test_sparse_degree(self):
        g = grid_city(12, 12, seed=0)
        assert g.degrees().mean() < 5  # road networks are locally sparse


class TestRadialCity:
    def test_connected(self):
        g = radial_city(5, 16, seed=0)
        assert g.is_connected()

    def test_vertex_count(self):
        g = radial_city(3, 8, seed=0, removal=0.0)
        assert g.n == 3 * 8 + 1  # rings*spokes + centre

    def test_rejects_too_few_spokes(self):
        with pytest.raises(ValueError):
            radial_city(3, 2)


class TestDelaunayCountry:
    def test_connected_and_planar_sparse(self):
        g = delaunay_country(300, seed=0)
        assert g.is_connected()
        assert g.m < 3 * g.n  # planar bound

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            delaunay_country(3)

    def test_thinning_reduces_edges(self):
        dense = delaunay_country(200, seed=1, thinning=0.0)
        thin = delaunay_country(200, seed=1, thinning=0.4)
        assert thin.m < dense.m


class TestMultiCity:
    def test_connected(self):
        g = multi_city(3, 6, 6, seed=0)
        assert g.is_connected()

    def test_rejects_single_city(self):
        with pytest.raises(ValueError):
            multi_city(1)

    def test_bimodal_distances(self):
        # Inter-city pairs should be much farther than intra-city pairs.
        from repro.algorithms import dijkstra

        g = multi_city(3, 5, 5, seed=2, spacing=50_000.0)
        dist = dijkstra(g, 0)
        intra = dist[1:25]  # city grids are laid out contiguously
        intra = intra[np.isfinite(intra)]
        assert dist[np.isfinite(dist)].max() > 10 * np.median(intra)


class TestDatasetRegistry:
    @pytest.mark.parametrize("name", ["BJ-S", "FLA-S", "USW-S"])
    def test_named_datasets(self, name):
        g = dataset(name, scale=0.1)
        assert g.is_connected()
        assert g.coords is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dataset("nope")
