"""Tests for the partition hierarchy (the hierarchical RNE's backbone)."""

import numpy as np
import pytest

from repro.graph import Graph, PartitionHierarchy, grid_city


class TestConstruction:
    def test_validate_passes(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        h.validate()

    def test_level_count(self):
        g = grid_city(16, 16, seed=0)  # ~256 vertices
        h = PartitionHierarchy(g, fanout=4, leaf_size=16, seed=0)
        # ceil(log4(256/16)) = 2 sub-graph levels + vertex level.
        assert h.num_subgraph_levels == 2
        assert h.num_levels == 3

    def test_vertex_level_rows_are_ids(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        last = h.num_subgraph_levels
        np.testing.assert_array_equal(
            h.anc_rows[:, last], np.arange(small_grid.n)
        )

    def test_anc_rows_shape(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        assert h.anc_rows.shape == (small_grid.n, h.num_levels)

    def test_levels_cover_all_vertices(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        for level in range(h.num_levels):
            total = sum(len(c) for c in h.cells(level))
            assert total == small_grid.n

    def test_fanout_bounds_children(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=3, leaf_size=8, seed=0)
        for node in h.nodes:
            if node.level < h.num_subgraph_levels - 1:
                assert len(node.children) <= 3

    def test_max_levels_cap(self, small_grid):
        h = PartitionHierarchy(
            small_grid, fanout=2, leaf_size=2, max_levels=2, seed=0
        )
        assert h.num_subgraph_levels == 2

    def test_tiny_graph_single_level(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        h = PartitionHierarchy(g, fanout=4, leaf_size=8, seed=0)
        h.validate()
        assert h.num_subgraph_levels == 1

    def test_invalid_fanout(self, small_grid):
        with pytest.raises(ValueError):
            PartitionHierarchy(small_grid, fanout=1)

    def test_invalid_leaf_size(self, small_grid):
        with pytest.raises(ValueError):
            PartitionHierarchy(small_grid, leaf_size=0)


class TestStructure:
    def test_parent_child_consistency(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        for node in h.nodes:
            for child_id in node.children:
                assert h.nodes[child_id].parent == node.id

    def test_ancestor_chain_matches_anc_rows(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        depth = h.num_subgraph_levels
        for v in range(0, small_grid.n, 7):
            node = h.nodes[h.levels[depth][v]]
            level = depth
            while node is not None:
                assert h.anc_rows[v, level] == node.row
                node = h.nodes[node.parent] if node.parent is not None else None
                level -= 1

    def test_vertex_labels_match_cells(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        labels = h.vertex_labels(0)
        for row, cell in enumerate(h.cells(0)):
            assert (labels[cell] == row).all()

    def test_deterministic(self, small_grid):
        a = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=5)
        b = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=5)
        np.testing.assert_array_equal(a.anc_rows, b.anc_rows)

    def test_cells_shrink_down_levels(self):
        g = grid_city(16, 16, seed=1)
        h = PartitionHierarchy(g, fanout=4, leaf_size=16, seed=0)
        for level in range(h.num_subgraph_levels - 1):
            mean_upper = np.mean([c.size for c in h.cells(level)])
            mean_lower = np.mean([c.size for c in h.cells(level + 1)])
            assert mean_lower < mean_upper

    def test_root_ids_are_level0(self, small_grid):
        h = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        assert h.root_ids() == h.levels[0]
        for node_id in h.root_ids():
            assert h.nodes[node_id].parent is None
