"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.graph import Edge, Graph, GraphError


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.n == 13
        assert tiny_graph.m == 15

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-3, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2, 1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(1, 1, 1.0)])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, 0.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, -2.0)])

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, float("nan"))])

    def test_inf_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, float("inf"))])

    def test_parallel_edges_collapse_to_min(self):
        g = Graph(2, [(0, 1, 5.0), (1, 0, 3.0), (0, 1, 7.0)])
        assert g.m == 1
        assert g.edge_weight(0, 1) == 3.0

    def test_coords_shape_validated(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1, 1.0)], coords=np.zeros((2, 2)))

    def test_isolated_vertices_allowed(self):
        g = Graph(4, [(0, 1, 1.0)])
        assert g.degree(2) == 0
        assert g.degree(3) == 0


class TestAccessors:
    def test_neighbors_symmetric(self, tiny_graph):
        for e in tiny_graph.edges():
            assert e.v in tiny_graph.neighbors(e.u)
            assert e.u in tiny_graph.neighbors(e.v)

    def test_neighbor_weights_aligned(self, tiny_graph):
        nbrs = tiny_graph.neighbors(7)
        wgts = tiny_graph.neighbor_weights(7)
        assert len(nbrs) == len(wgts)
        lookup = dict(zip(nbrs.tolist(), wgts.tolist()))
        assert lookup[8] == 2.0
        assert lookup[9] == 4.0

    def test_degree_matches_neighbors(self, tiny_graph):
        for v in range(tiny_graph.n):
            assert tiny_graph.degree(v) == len(tiny_graph.neighbors(v))

    def test_degrees_array(self, tiny_graph):
        degs = tiny_graph.degrees()
        assert degs.sum() == 2 * tiny_graph.m
        assert degs[7] == 4  # v8 in the paper's figure has four roads

    def test_edges_iterates_once_per_edge(self, tiny_graph):
        edges = list(tiny_graph.edges())
        assert len(edges) == tiny_graph.m
        assert all(isinstance(e, Edge) for e in edges)

    def test_edge_array_shapes(self, tiny_graph):
        us, vs, ws = tiny_graph.edge_array()
        assert len(us) == len(vs) == len(ws) == tiny_graph.m
        assert (ws > 0).all()

    def test_edge_array_empty_graph(self):
        g = Graph(3, [])
        us, vs, ws = g.edge_array()
        assert us.size == vs.size == ws.size == 0

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 12)

    def test_edge_weight_missing_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.edge_weight(0, 12)

    def test_total_weight(self, line_graph):
        assert line_graph.total_weight() == pytest.approx(4.0)


class TestConversions:
    def test_csr_matrix_symmetric(self, tiny_graph):
        m = tiny_graph.to_csr_matrix()
        assert (m != m.T).nnz == 0

    def test_csr_matrix_weights(self, tiny_graph):
        m = tiny_graph.to_csr_matrix()
        assert m[0, 1] == 3.0
        assert m[1, 0] == 3.0

    def test_networkx_roundtrip(self, tiny_graph):
        nx_g = tiny_graph.to_networkx()
        back = Graph.from_networkx(nx_g)
        assert back.n == tiny_graph.n
        assert back.m == tiny_graph.m
        assert back.edge_weight(0, 2) == tiny_graph.edge_weight(0, 2)
        np.testing.assert_allclose(back.coords, tiny_graph.coords)

    def test_subgraph_relabels(self, tiny_graph):
        sub, mapping = tiny_graph.subgraph([0, 1, 2, 3])
        assert sub.n == 4
        # Edges among {0,1,2,3}: (0,1), (0,2), (1,3), (2,3).
        assert sub.m == 4
        np.testing.assert_array_equal(mapping, [0, 1, 2, 3])

    def test_subgraph_keeps_coords(self, tiny_graph):
        sub, mapping = tiny_graph.subgraph([5, 7, 9])
        np.testing.assert_allclose(sub.coords, tiny_graph.coords[[5, 7, 9]])

    def test_subgraph_duplicate_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.subgraph([1, 1])

    def test_subgraph_empty_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.subgraph([])


class TestStructure:
    def test_connected(self, tiny_graph):
        assert tiny_graph.is_connected()

    def test_disconnected_components(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        labels = g.connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert not g.is_connected()

    def test_largest_component(self):
        g = Graph(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        sub, mapping = g.largest_component()
        assert sub.n == 3
        np.testing.assert_array_equal(mapping, [0, 1, 2])
