"""Tests for coordinate-to-vertex snapping."""

import numpy as np
import pytest

from repro.graph import Graph, VertexLocator


class TestLocator:
    def test_requires_coords(self):
        with pytest.raises(ValueError):
            VertexLocator(Graph(2, [(0, 1, 1.0)]))

    def test_exact_position(self, small_grid):
        loc = VertexLocator(small_grid)
        for v in (0, 7, 33):
            x, y = small_grid.coords[v]
            assert loc.locate(float(x), float(y)) == v

    def test_nearest_vertex(self, line_graph):
        loc = VertexLocator(line_graph)
        assert loc.locate(1.4, 0.2) == 1
        assert loc.locate(3.6, -0.1) == 4

    def test_locate_many_matches_scalar(self, small_grid, rng):
        loc = VertexLocator(small_grid)
        points = rng.uniform(
            small_grid.coords.min(), small_grid.coords.max(), size=(20, 2)
        )
        batch = loc.locate_many(points)
        singles = [loc.locate(float(x), float(y)) for x, y in points]
        np.testing.assert_array_equal(batch, singles)

    def test_locate_many_bad_shape(self, small_grid):
        loc = VertexLocator(small_grid)
        with pytest.raises(ValueError):
            loc.locate_many(np.zeros(3))

    def test_snap_error(self, line_graph):
        loc = VertexLocator(line_graph)
        assert loc.snap_error(2.0, 0.0) == pytest.approx(0.0)
        assert loc.snap_error(2.0, 1.0) == pytest.approx(1.0)


class TestTravelTimes:
    def test_weights_are_times(self, small_grid):
        from repro.graph import with_travel_times

        timed = with_travel_times(
            small_grid, arterial_fraction=0.0, local_speed=30.0, seed=0
        )
        for before, after in zip(small_grid.edges(), timed.edges()):
            assert after.weight == pytest.approx(before.weight / 30.0)

    def test_arterials_faster(self, small_grid):
        from repro.graph import with_travel_times

        timed = with_travel_times(
            small_grid, arterial_fraction=0.5, arterial_speed=60.0,
            local_speed=30.0, seed=0,
        )
        ratios = [
            after.weight / before.weight
            for before, after in zip(small_grid.edges(), timed.edges())
        ]
        assert min(ratios) == pytest.approx(1 / 60)
        assert max(ratios) == pytest.approx(1 / 30)

    def test_invalid_fraction(self, small_grid):
        from repro.graph import with_travel_times

        with pytest.raises(ValueError):
            with_travel_times(small_grid, arterial_fraction=1.5)

    def test_invalid_speed(self, small_grid):
        from repro.graph import with_travel_times

        with pytest.raises(ValueError):
            with_travel_times(small_grid, local_speed=0.0)

    def test_preserves_structure(self, small_grid):
        from repro.graph import with_travel_times

        timed = with_travel_times(small_grid, seed=0)
        assert timed.n == small_grid.n
        assert timed.m == small_grid.m
        np.testing.assert_allclose(timed.coords, small_grid.coords)
