"""Tests for the multilevel partitioner."""

import numpy as np
import pytest

from repro.graph import Graph, balance, bisect, cut_weight, grid_city, partition_kway


class TestBisect:
    def test_two_sides_present(self, small_grid):
        side = bisect(small_grid, seed=0)
        assert set(np.unique(side)) == {0, 1}

    def test_roughly_balanced(self, small_grid):
        side = bisect(small_grid, seed=0)
        frac = side.mean()
        assert 0.3 <= frac <= 0.7

    def test_target_frac_respected(self):
        g = grid_city(12, 12, seed=1)
        side = bisect(g, target_frac=0.25, seed=0)
        frac0 = (side == 0).mean()
        assert 0.13 <= frac0 <= 0.38

    def test_single_vertex(self):
        g = Graph(1, [])
        side = bisect(g)
        assert side.tolist() == [0]

    def test_cut_is_small_on_grid(self):
        # A 12x12 grid has a ~12-edge minimum bisection; the multilevel
        # partitioner should land within a small factor of it.
        g = grid_city(12, 12, seed=5, removal=0.0, diagonal=0.0, jitter=0.0,
                      weight_noise=0.0)
        side = bisect(g, seed=0)
        us, vs, _ = g.edge_array()
        cut_edges = int((side[us] != side[vs]).sum())
        assert cut_edges <= 40

    def test_deterministic(self, small_grid):
        a = bisect(small_grid, seed=3)
        b = bisect(small_grid, seed=3)
        np.testing.assert_array_equal(a, b)


class TestKway:
    @pytest.mark.parametrize("k", [2, 3, 4, 7])
    def test_all_parts_nonempty(self, small_grid, k):
        labels = partition_kway(small_grid, k, seed=0)
        assert set(np.unique(labels)) == set(range(k))

    def test_k1_trivial(self, small_grid):
        labels = partition_kway(small_grid, 1)
        assert (labels == 0).all()

    def test_k_invalid(self, small_grid):
        with pytest.raises(ValueError):
            partition_kway(small_grid, 0)

    def test_balance_reasonable(self):
        g = grid_city(16, 16, seed=2)
        labels = partition_kway(g, 4, seed=0)
        assert balance(labels, 4) <= 1.5

    def test_k_exceeding_n(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        labels = partition_kway(g, 3, seed=0)
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_cut_weight_matches_manual(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0)])
        labels = np.array([0, 0, 1, 1])
        assert cut_weight(g, labels) == pytest.approx(5.0)

    def test_partition_beats_random_cut(self):
        g = grid_city(14, 14, seed=9)
        rng = np.random.default_rng(1)
        smart = cut_weight(g, partition_kway(g, 4, seed=0))
        random_cut = cut_weight(g, rng.integers(4, size=g.n))
        assert smart < 0.5 * random_cut

    def test_disconnected_graph_handled(self):
        g = Graph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
        labels = partition_kway(g, 2, seed=0)
        assert set(np.unique(labels)) == {0, 1}
