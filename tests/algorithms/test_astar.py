"""Tests for A* and ALT."""

import numpy as np
import pytest

from repro.algorithms import (
    INF,
    LTEstimator,
    astar,
    astar_alt,
    astar_euclidean,
    pair_distances,
)
from repro.graph import Graph


class TestAStar:
    def test_zero_heuristic_is_dijkstra(self, small_grid, rng):
        pairs = rng.integers(small_grid.n, size=(15, 2))
        truth = pair_distances(small_grid, pairs)
        for (s, t), d in zip(pairs, truth):
            assert astar(small_grid, int(s), int(t), lambda v: 0.0) == pytest.approx(d)

    def test_same_vertex(self, small_grid):
        assert astar(small_grid, 2, 2, lambda v: 0.0) == 0.0

    def test_unreachable(self):
        g = Graph(3, [(0, 1, 1.0)])
        assert astar(g, 0, 2, lambda v: 0.0) == INF


class TestEuclideanAStar:
    def test_exact_on_metric_graph(self, small_grid, rng):
        # grid_city weights are >= straight-line length -> admissible.
        pairs = rng.integers(small_grid.n, size=(20, 2))
        truth = pair_distances(small_grid, pairs)
        for (s, t), d in zip(pairs, truth):
            assert astar_euclidean(small_grid, int(s), int(t)) == pytest.approx(d)

    def test_requires_coords(self):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            astar_euclidean(g, 0, 1)


class TestALT:
    def test_exact(self, small_grid, rng):
        lt = LTEstimator(small_grid, 8, seed=0)
        pairs = rng.integers(small_grid.n, size=(20, 2))
        truth = pair_distances(small_grid, pairs)
        for (s, t), d in zip(pairs, truth):
            assert astar_alt(small_grid, lt, int(s), int(t)) == pytest.approx(d)

    def test_settles_fewer_than_dijkstra(self, medium_grid):
        """ALT's tighter heuristic should reduce the explored set.

        Measured indirectly: count heuristic evaluations as a proxy by
        wrapping astar with instrumented heuristics.
        """
        lt = LTEstimator(medium_grid, 12, seed=0)
        s, t = 0, medium_grid.n - 1

        calls = {"zero": 0, "alt": 0}

        def zero_h(v):
            calls["zero"] += 1
            return 0.0

        h_table = lt.heuristic_to(t)

        def alt_h(v):
            calls["alt"] += 1
            return float(h_table[v])

        d0 = astar(medium_grid, s, t, zero_h)
        d1 = astar(medium_grid, s, t, alt_h)
        assert d0 == pytest.approx(d1)
        assert calls["alt"] < calls["zero"]
