"""Tests for landmark selection and the LT estimator."""

import numpy as np
import pytest

from repro.algorithms import LTEstimator, pair_distances, select_landmarks
from repro.graph import Graph


class TestSelection:
    @pytest.mark.parametrize("strategy", ["farthest", "random", "degree"])
    def test_count_and_uniqueness(self, small_grid, strategy):
        lm = select_landmarks(small_grid, 8, strategy=strategy, seed=0)
        assert lm.size == 8
        assert np.unique(lm).size == 8

    def test_invalid_k(self, small_grid):
        with pytest.raises(ValueError):
            select_landmarks(small_grid, 0)
        with pytest.raises(ValueError):
            select_landmarks(small_grid, small_grid.n + 1)

    def test_unknown_strategy(self, small_grid):
        with pytest.raises(ValueError):
            select_landmarks(small_grid, 4, strategy="nope")

    def test_degree_picks_high_degree(self, small_grid):
        lm = select_landmarks(small_grid, 4, strategy="degree")
        degs = small_grid.degrees()
        assert degs[lm].min() >= np.sort(degs)[-8]

    def test_farthest_spreads(self, line_graph):
        lm = select_landmarks(line_graph, 2, strategy="farthest", seed=0)
        # On a path, the second landmark must be an endpoint far from first.
        assert abs(int(lm[0]) - int(lm[1])) >= 2

    def test_farthest_all_vertices(self, line_graph):
        lm = select_landmarks(line_graph, 5, strategy="farthest", seed=0)
        assert sorted(lm.tolist()) == [0, 1, 2, 3, 4]

    def test_deterministic(self, small_grid):
        a = select_landmarks(small_grid, 6, seed=9)
        b = select_landmarks(small_grid, 6, seed=9)
        np.testing.assert_array_equal(a, b)


class TestLTEstimator:
    @pytest.fixture(scope="class")
    def lt(self, small_grid):
        return LTEstimator(small_grid, 12, seed=0)

    def test_table_shape(self, lt, small_grid):
        assert lt.table.shape == (12, small_grid.n)
        assert lt.num_landmarks == 12

    def test_lower_bound_admissible(self, lt, small_grid, rng):
        pairs = rng.integers(small_grid.n, size=(40, 2))
        truth = pair_distances(small_grid, pairs)
        est = lt.estimate_pairs(pairs)
        assert (est <= truth + 1e-9).all()

    def test_upper_bound_valid(self, lt, small_grid, rng):
        pairs = rng.integers(small_grid.n, size=(40, 2))
        truth = pair_distances(small_grid, pairs)
        for (s, t), d in zip(pairs, truth):
            assert lt.upper_bound(int(s), int(t)) >= d - 1e-9

    def test_landmark_pairs_exact(self, lt, small_grid):
        # For a pair (landmark, v) the triangle bound is tight.
        lm = int(lt.landmarks[0])
        for v in range(0, small_grid.n, 5):
            assert lt.estimate(lm, v) == pytest.approx(float(lt.table[0, v]))

    def test_scalar_matches_batch(self, lt, rng, small_grid):
        pairs = rng.integers(small_grid.n, size=(10, 2))
        batch = lt.estimate_pairs(pairs)
        singles = [lt.estimate(int(s), int(t)) for s, t in pairs]
        np.testing.assert_allclose(batch, singles)

    def test_heuristic_admissible(self, lt, small_grid):
        t = 7
        h = lt.heuristic_to(t)
        dist = pair_distances(
            small_grid, np.column_stack([np.arange(small_grid.n), np.full(small_grid.n, t)])
        )
        assert (h <= dist + 1e-9).all()

    def test_index_bytes_positive(self, lt):
        assert lt.index_bytes() == lt.table.nbytes

    def test_more_landmarks_tighter(self, small_grid, rng):
        pairs = rng.integers(small_grid.n, size=(60, 2))
        lt4 = LTEstimator(small_grid, 4, seed=1)
        lt16 = LTEstimator(small_grid, 16, seed=1)
        # Lower bounds only tighten with extra landmarks (on average).
        assert lt16.estimate_pairs(pairs).mean() >= lt4.estimate_pairs(pairs).mean() - 1e-9

    def test_disconnected_graph(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        lt = LTEstimator(g, 2, strategy="random", seed=0)
        assert lt.table.shape == (2, 4)
