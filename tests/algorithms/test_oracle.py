"""Tests for the WSPD distance oracle."""

import numpy as np
import pytest

from repro.algorithms import DistanceOracle, pair_distances
from repro.graph import Graph, grid_city


@pytest.fixture(scope="module")
def grid():
    return grid_city(9, 9, seed=6)


@pytest.fixture(scope="module")
def oracle(grid):
    return DistanceOracle(grid, epsilon=0.5)


class TestConstruction:
    def test_requires_coords(self):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            DistanceOracle(g)

    def test_invalid_epsilon(self, grid):
        with pytest.raises(ValueError):
            DistanceOracle(grid, epsilon=0.0)

    def test_pair_cap_enforced(self, grid):
        with pytest.raises(MemoryError):
            DistanceOracle(grid, epsilon=0.25, max_pairs=10)

    def test_pair_count_grows_with_precision(self, grid, oracle):
        finer = DistanceOracle(grid, epsilon=0.25)
        assert finer.num_pairs > oracle.num_pairs

    def test_index_bytes(self, oracle):
        assert oracle.index_bytes() > oracle.num_pairs * 24


class TestQueries:
    def test_same_vertex(self, oracle):
        assert oracle.query(4, 4) == 0.0

    def test_all_pairs_answerable(self, grid, oracle):
        rng = np.random.default_rng(0)
        pairs = rng.integers(grid.n, size=(100, 2))
        for s, t in pairs:
            d = oracle.query(int(s), int(t))
            assert np.isfinite(d) and d >= 0.0

    def test_error_reasonable(self, grid, oracle):
        rng = np.random.default_rng(1)
        pairs = rng.integers(grid.n, size=(100, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        truth = pair_distances(grid, pairs)
        got = np.array([oracle.query(int(s), int(t)) for s, t in pairs])
        rel = np.abs(got - truth) / np.maximum(truth, 1e-12)
        # Mean error should be well inside epsilon; tails can exceed it
        # because the separation test uses geometric diameters.
        assert rel.mean() < 0.5

    def test_precision_improves_error(self, grid):
        rng = np.random.default_rng(2)
        pairs = rng.integers(grid.n, size=(150, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        truth = pair_distances(grid, pairs)

        def mean_rel(eps):
            o = DistanceOracle(grid, epsilon=eps)
            got = np.array([o.query(int(s), int(t)) for s, t in pairs])
            return (np.abs(got - truth) / np.maximum(truth, 1e-12)).mean()

        assert mean_rel(0.25) < mean_rel(1.0)

    def test_symmetric_queries(self, grid, oracle):
        rng = np.random.default_rng(3)
        for _ in range(20):
            s, t = (int(x) for x in rng.integers(grid.n, size=2))
            # Representative distances are symmetric on undirected graphs.
            assert oracle.query(s, t) == pytest.approx(oracle.query(t, s))

    def test_knn_matches_bruteforce(self, grid, oracle):
        rng = np.random.default_rng(4)
        targets = rng.choice(grid.n, size=20, replace=False)
        got = oracle.knn(0, targets, 5)
        dists = np.array([oracle.query(0, int(t)) for t in targets])
        expected = targets[np.argsort(dists, kind="stable")[:5]]
        np.testing.assert_array_equal(got, expected)
