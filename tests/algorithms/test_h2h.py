"""Tests for the tree-decomposition H2H index."""

import numpy as np
import pytest

from repro.algorithms import H2HIndex, INF, pair_distances
from repro.graph import Graph, grid_city


@pytest.fixture(scope="module")
def grid():
    return grid_city(10, 10, seed=5)


@pytest.fixture(scope="module")
def index(grid):
    return H2HIndex(grid)


class TestExactness:
    def test_random_pairs_exact(self, grid, index):
        rng = np.random.default_rng(0)
        pairs = rng.integers(grid.n, size=(120, 2))
        truth = pair_distances(grid, pairs)
        got = np.array([index.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_same_vertex(self, index):
        assert index.query(7, 7) == 0.0

    def test_symmetry(self, grid, index):
        rng = np.random.default_rng(1)
        for _ in range(15):
            s, t = (int(x) for x in rng.integers(grid.n, size=2))
            assert index.query(s, t) == pytest.approx(index.query(t, s))

    def test_paper_example(self, tiny_graph):
        h = H2HIndex(tiny_graph)
        assert h.query(3, 7) == pytest.approx(8.0)  # d(v4, v8) = 8

    def test_line_graph(self, line_graph):
        h = H2HIndex(line_graph)
        for i in range(5):
            for j in range(5):
                assert h.query(i, j) == pytest.approx(abs(i - j))

    def test_disconnected(self):
        g = Graph(5, [(0, 1, 1.0), (2, 3, 2.0), (3, 4, 1.0)])
        h = H2HIndex(g)
        assert h.query(0, 2) == INF
        assert h.query(2, 4) == pytest.approx(3.0)

    def test_ancestor_descendant_queries(self, grid, index):
        """Pairs where one endpoint is an elimination-tree ancestor of the
        other exercise the degenerate-LCA branch."""
        v = 0
        p = int(index.parent[v])
        while p != -1:
            expected = pair_distances(grid, np.array([[v, p]]))[0]
            assert index.query(v, p) == pytest.approx(expected)
            v, p = p, int(index.parent[p])


class TestStructure:
    def test_parent_eliminated_later(self, grid, index):
        for v in range(grid.n):
            p = index.parent[v]
            if p != -1:
                assert index._order[p] > index._order[v]

    def test_depths_consistent(self, grid, index):
        for v in range(grid.n):
            p = index.parent[v]
            if p != -1:
                assert index.depth[v] == index.depth[p] + 1

    def test_label_length_is_depth(self, grid, index):
        for v in range(grid.n):
            assert index._anc_dist[v].size == index.depth[v] + 1

    def test_treewidth_small_on_grid(self, grid, index):
        # A 10x10 grid has treewidth ~10; min-degree should stay near it.
        assert index.treewidth_bound() <= 30

    def test_index_bytes_positive(self, index):
        assert index.index_bytes() > 0

    def test_bag_members_are_ancestors(self, grid, index):
        """The tree-decomposition invariant the query relies on."""
        for v in range(0, grid.n, 7):
            ancestors = set()
            cursor = int(index.parent[v])
            while cursor != -1:
                ancestors.add(cursor)
                cursor = int(index.parent[cursor])
            for u in index._bags[v]:
                assert int(u) in ancestors
