"""Tests for contraction hierarchies (exact CH and approximate ACH)."""

import numpy as np
import pytest

from repro.algorithms import (
    ApproximateCH,
    ContractionHierarchy,
    INF,
    pair_distances,
)
from repro.graph import Graph, grid_city


@pytest.fixture(scope="module")
def grid():
    return grid_city(10, 10, seed=3)


@pytest.fixture(scope="module")
def ch(grid):
    return ContractionHierarchy(grid, seed=0)


class TestExactCH:
    def test_all_pairs_exact(self, grid, ch):
        rng = np.random.default_rng(1)
        pairs = rng.integers(grid.n, size=(60, 2))
        truth = pair_distances(grid, pairs)
        got = np.array([ch.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_same_vertex(self, ch):
        assert ch.query(5, 5) == 0.0

    def test_symmetry(self, grid, ch):
        rng = np.random.default_rng(2)
        for _ in range(10):
            s, t = rng.integers(grid.n, size=2)
            assert ch.query(int(s), int(t)) == pytest.approx(ch.query(int(t), int(s)))

    def test_rank_is_permutation(self, grid, ch):
        assert sorted(ch.rank.tolist()) == list(range(grid.n))

    def test_upward_edges_point_up(self, grid, ch):
        for u in range(grid.n):
            for v, _ in ch._up_adj[u]:
                assert ch.rank[v] > ch.rank[u]

    def test_unreachable(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        ch = ContractionHierarchy(g, seed=0)
        assert ch.query(0, 3) == INF

    def test_line_graph(self, line_graph):
        ch = ContractionHierarchy(line_graph, seed=0)
        assert ch.query(0, 4) == pytest.approx(4.0)

    def test_paper_example(self, tiny_graph):
        ch = ContractionHierarchy(tiny_graph, seed=0)
        assert ch.query(3, 7) == pytest.approx(8.0)  # d(v4, v8) = 8

    def test_search_space_contains_self(self, grid, ch):
        space = ch.search_space(7)
        assert space[7] == 0.0

    def test_index_bytes_positive(self, ch):
        assert ch.index_bytes() > 0

    def test_invalid_epsilon(self, grid):
        with pytest.raises(ValueError):
            ContractionHierarchy(grid, epsilon=-0.1)


class TestACH:
    def test_error_bounded_one_sided(self, grid):
        """ACH never underestimates, and typically lands near the truth."""
        ach = ApproximateCH(grid, epsilon=0.1, seed=0)
        rng = np.random.default_rng(3)
        pairs = rng.integers(grid.n, size=(60, 2))
        truth = pair_distances(grid, pairs)
        got = np.array([ach.query(int(s), int(t)) for s, t in pairs])
        assert (got >= truth - 1e-9).all()
        rel = (got - truth) / np.maximum(truth, 1e-12)
        assert rel.mean() < 0.10  # loose sanity bound for epsilon=0.1

    def test_fewer_shortcuts_than_exact(self, grid, ch):
        ach = ApproximateCH(grid, epsilon=0.5, seed=0)
        assert ach.num_shortcuts <= ch.num_shortcuts

    def test_epsilon_zero_rejected(self, grid):
        with pytest.raises(ValueError):
            ApproximateCH(grid, epsilon=0.0)

    def test_larger_epsilon_larger_error(self, grid):
        rng = np.random.default_rng(4)
        pairs = rng.integers(grid.n, size=(80, 2))
        truth = pair_distances(grid, pairs)

        def mean_rel(eps):
            ach = ApproximateCH(grid, epsilon=eps, seed=0)
            got = np.array([ach.query(int(s), int(t)) for s, t in pairs])
            return ((got - truth) / np.maximum(truth, 1e-12)).mean()

        assert mean_rel(0.05) <= mean_rel(0.8) + 1e-9
