"""Tests for the SILC-style all-pairs index."""

import numpy as np
import pytest

from repro.algorithms import AllPairsIndex, pair_distances
from repro.algorithms.knn import knn_true, range_true


class TestAllPairs:
    @pytest.fixture(scope="class")
    def index(self, small_grid):
        return AllPairsIndex(small_grid)

    def test_exact(self, small_grid, index, rng):
        pairs = rng.integers(small_grid.n, size=(50, 2))
        np.testing.assert_allclose(
            index.query_pairs(pairs), pair_distances(small_grid, pairs)
        )

    def test_scalar_query(self, index):
        assert index.query(0, 0) == 0.0

    def test_memory_wall(self, small_grid):
        with pytest.raises(MemoryError):
            AllPairsIndex(small_grid, memory_limit=100)

    def test_knn_matches_truth(self, small_grid, index, rng):
        targets = rng.choice(small_grid.n, size=20, replace=False)
        got = index.knn(0, targets, 5)
        expected = knn_true(small_grid, 0, targets, 5)
        got_d = index.query_pairs(np.column_stack([np.zeros(5, int), got]))
        exp_d = index.query_pairs(np.column_stack([np.zeros(5, int), expected]))
        np.testing.assert_allclose(np.sort(got_d), np.sort(exp_d))

    def test_range_matches_truth(self, small_grid, index, rng):
        targets = rng.choice(small_grid.n, size=25, replace=False)
        tau = float(np.median(index.matrix[0, targets]))
        got = index.range_query(0, targets, tau)
        np.testing.assert_array_equal(
            got, range_true(small_grid, 0, targets, tau)
        )

    def test_index_bytes_quadratic(self, small_grid, index):
        assert index.index_bytes() == 8 * small_grid.n**2
