"""Tests for exact network kNN / range ground truth."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.algorithms.knn import knn_true, range_true
from repro.graph import Graph


class TestKnnTrue:
    def test_line_graph(self, line_graph):
        got = knn_true(line_graph, 0, np.array([1, 3, 4]), 2)
        np.testing.assert_array_equal(got, [1, 3])

    def test_k_larger_than_targets(self, line_graph):
        got = knn_true(line_graph, 0, np.array([2, 4]), 10)
        np.testing.assert_array_equal(got, [2, 4])

    def test_source_in_targets(self, line_graph):
        got = knn_true(line_graph, 2, np.array([0, 2, 4]), 1)
        np.testing.assert_array_equal(got, [2])

    def test_invalid_k(self, line_graph):
        with pytest.raises(ValueError):
            knn_true(line_graph, 0, np.array([1]), 0)

    def test_matches_bruteforce(self, small_grid, rng):
        targets = rng.choice(small_grid.n, size=15, replace=False)
        source = 0
        dists = pair_distances(
            small_grid,
            np.column_stack([np.full(targets.size, source), targets]),
        )
        expected = set(targets[np.argsort(dists, kind="stable")[:4]].tolist())
        got = knn_true(small_grid, source, targets, 4)
        # Sets compared because equal distances may tie-break differently.
        got_dists = pair_distances(
            small_grid, np.column_stack([np.full(4, source), got])
        )
        exp_dists = np.sort(dists)[:4]
        np.testing.assert_allclose(np.sort(got_dists), exp_dists)
        assert len(got) == 4

    def test_unreachable_targets_omitted(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        got = knn_true(g, 0, np.array([1, 3]), 2)
        np.testing.assert_array_equal(got, [1])


class TestRangeTrue:
    def test_line_graph(self, line_graph):
        got = range_true(line_graph, 0, np.array([1, 2, 3, 4]), 2.5)
        np.testing.assert_array_equal(got, [1, 2])

    def test_zero_tau(self, line_graph):
        got = range_true(line_graph, 2, np.array([0, 2, 4]), 0.0)
        np.testing.assert_array_equal(got, [2])

    def test_negative_tau(self, line_graph):
        with pytest.raises(ValueError):
            range_true(line_graph, 0, np.array([1]), -1.0)

    def test_matches_bruteforce(self, small_grid, rng):
        targets = rng.choice(small_grid.n, size=20, replace=False)
        dists = pair_distances(
            small_grid, np.column_stack([np.zeros(20, dtype=int), targets])
        )
        tau = float(np.median(dists))
        expected = np.sort(targets[dists <= tau])
        got = range_true(small_grid, 0, targets, tau)
        np.testing.assert_array_equal(got, expected)

    def test_everything_in_huge_range(self, small_grid):
        targets = np.arange(small_grid.n)
        got = range_true(small_grid, 0, targets, 1e12)
        np.testing.assert_array_equal(got, targets)
