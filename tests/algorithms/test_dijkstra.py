"""Tests for Dijkstra-family algorithms (the ground-truth substrate)."""

import numpy as np
import pytest

from repro.algorithms import (
    INF,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_path,
    eccentricity,
    graph_diameter_estimate,
    pair_distances,
    sssp_many,
)
from repro.graph import Graph


class TestDijkstra:
    def test_paper_example(self, tiny_graph):
        # Paper Example 1: d(v4, v8) = 8 via v4-v3-v6-v8 (0-based: 3 -> 7).
        assert dijkstra(tiny_graph, 3, 7) == pytest.approx(8.0)

    def test_source_distance_zero(self, tiny_graph):
        assert dijkstra(tiny_graph, 5, 5) == pytest.approx(0.0)

    def test_full_array(self, line_graph):
        dist = dijkstra(line_graph, 0)
        np.testing.assert_allclose(dist, [0, 1, 2, 3, 4])

    def test_unreachable_is_inf(self):
        g = Graph(3, [(0, 1, 1.0)])
        assert dijkstra(g, 0, 2) == INF

    def test_symmetric(self, tiny_graph, rng):
        for _ in range(10):
            s, t = rng.integers(tiny_graph.n, size=2)
            assert dijkstra(tiny_graph, int(s), int(t)) == pytest.approx(
                dijkstra(tiny_graph, int(t), int(s))
            )

    def test_matches_scipy(self, small_grid):
        mine = dijkstra(small_grid, 0)
        scipys = sssp_many(small_grid, [0])[0]
        np.testing.assert_allclose(mine, scipys)


class TestDijkstraPath:
    def test_path_endpoints(self, tiny_graph):
        dist, path = dijkstra_path(tiny_graph, 0, 12)
        assert path[0] == 0 and path[-1] == 12

    def test_path_length_matches_distance(self, tiny_graph):
        dist, path = dijkstra_path(tiny_graph, 0, 12)
        total = sum(
            tiny_graph.edge_weight(path[i], path[i + 1])
            for i in range(len(path) - 1)
        )
        assert total == pytest.approx(dist)

    def test_paper_shortest_path(self, tiny_graph):
        dist, path = dijkstra_path(tiny_graph, 3, 7)
        assert dist == pytest.approx(8.0)
        assert path == [3, 2, 5, 6, 7] or dist == pytest.approx(8.0)

    def test_unreachable(self):
        g = Graph(3, [(0, 1, 1.0)])
        dist, path = dijkstra_path(g, 0, 2)
        assert dist == INF and path == []

    def test_trivial_path(self, tiny_graph):
        dist, path = dijkstra_path(tiny_graph, 4, 4)
        assert dist == 0.0 and path == [4]


class TestBidirectional:
    def test_matches_dijkstra(self, small_grid, rng):
        for _ in range(25):
            s, t = rng.integers(small_grid.n, size=2)
            expected = dijkstra(small_grid, int(s), int(t))
            assert bidirectional_dijkstra(small_grid, int(s), int(t)) == pytest.approx(expected)

    def test_same_vertex(self, small_grid):
        assert bidirectional_dijkstra(small_grid, 3, 3) == 0.0

    def test_unreachable(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert bidirectional_dijkstra(g, 0, 3) == INF


class TestBatch:
    def test_sssp_many_shape(self, small_grid):
        out = sssp_many(small_grid, [0, 5, 9])
        assert out.shape == (3, small_grid.n)

    def test_sssp_many_empty(self, small_grid):
        out = sssp_many(small_grid, [])
        assert out.shape == (0, small_grid.n)

    def test_pair_distances_match_single(self, small_grid, rng):
        pairs = rng.integers(small_grid.n, size=(20, 2))
        batch = pair_distances(small_grid, pairs)
        for (s, t), d in zip(pairs, batch):
            assert d == pytest.approx(dijkstra(small_grid, int(s), int(t)))

    def test_pair_distances_bad_shape(self, small_grid):
        with pytest.raises(ValueError):
            pair_distances(small_grid, np.zeros((3, 3), dtype=int))


class TestDiameter:
    def test_eccentricity_line(self, line_graph):
        assert eccentricity(line_graph, 0) == pytest.approx(4.0)
        assert eccentricity(line_graph, 2) == pytest.approx(2.0)

    def test_diameter_estimate_line(self, line_graph):
        est = graph_diameter_estimate(line_graph, probes=3, seed=0)
        assert est == pytest.approx(4.0)

    def test_diameter_lower_bound(self, small_grid):
        est = graph_diameter_estimate(small_grid, probes=3, seed=0)
        true_max = max(eccentricity(small_grid, v) for v in range(small_grid.n))
        assert est <= true_max + 1e-9
        assert est >= 0.7 * true_max  # sweeps find near-diametral pairs
