"""Tests for hub labelling (the H2H stand-in)."""

import numpy as np
import pytest

from repro.algorithms import ContractionHierarchy, HubLabels, INF, pair_distances
from repro.graph import Graph, grid_city


@pytest.fixture(scope="module")
def grid():
    return grid_city(9, 9, seed=4)


@pytest.fixture(scope="module")
def labels(grid):
    return HubLabels(grid, seed=0)


class TestExactness:
    def test_all_queries_exact(self, grid, labels):
        rng = np.random.default_rng(0)
        pairs = rng.integers(grid.n, size=(60, 2))
        truth = pair_distances(grid, pairs)
        got = np.array([labels.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_same_vertex(self, labels):
        assert labels.query(3, 3) == 0.0

    def test_unreachable_is_inf(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        hl = HubLabels(g, seed=0)
        assert hl.query(0, 2) == INF

    def test_paper_example(self, tiny_graph):
        hl = HubLabels(tiny_graph, seed=0)
        assert hl.query(3, 7) == pytest.approx(8.0)

    def test_requires_exact_ch(self, grid):
        from repro.algorithms import ApproximateCH

        ach = ApproximateCH(grid, epsilon=0.1, seed=0)
        with pytest.raises(ValueError):
            HubLabels(grid, ch=ach)


class TestLabelStructure:
    def test_every_label_contains_self(self, grid, labels):
        for v in range(grid.n):
            hubs = labels._hubs[v]
            assert v in hubs

    def test_hubs_sorted(self, grid, labels):
        for v in range(grid.n):
            hubs = labels._hubs[v]
            assert (np.diff(hubs) > 0).all()

    def test_pruning_shrinks_labels(self, grid):
        pruned = HubLabels(grid, prune=True, seed=0)
        unpruned = HubLabels(grid, prune=False, seed=0)
        assert pruned.average_label_size() <= unpruned.average_label_size()
        # and stays exact
        rng = np.random.default_rng(1)
        pairs = rng.integers(grid.n, size=(30, 2))
        truth = pair_distances(grid, pairs)
        got = np.array([pruned.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_label_sizes_small(self, grid, labels):
        # Hub labels on road-like graphs should be far below |V|.
        assert labels.average_label_size() < grid.n / 2

    def test_index_bytes_counts_labels(self, grid, labels):
        total = sum(labels.label_size(v) for v in range(grid.n))
        assert labels.index_bytes() == total * 16  # int64 + float64

    def test_shared_ch_consistency(self, grid):
        ch = ContractionHierarchy(grid, seed=5)
        hl = HubLabels(grid, ch=ch)
        rng = np.random.default_rng(2)
        for _ in range(20):
            s, t = (int(x) for x in rng.integers(grid.n, size=2))
            assert hl.query(s, t) == pytest.approx(ch.query(s, t))
