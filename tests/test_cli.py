"""Tests for the experiment CLI."""

import pytest

from repro.cli import main
from repro.bench.experiments import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_argument(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.slow
    def test_fig9_fast_runs(self, capsys):
        assert main(["fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 9" in out
