"""Tests for the experiment CLI."""

import pytest

from repro.cli import main
from repro.bench.experiments import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_argument(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.slow
    def test_fig9_fast_runs(self, capsys):
        assert main(["fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 9" in out


class TestFailureIsolation:
    @pytest.fixture
    def experiments(self, monkeypatch):
        calls = []

        def ok(fast=False):
            calls.append("ok")
            return "fine"

        def boom(fast=False):
            calls.append("boom")
            raise RuntimeError("synthetic failure")

        fakes = {"good": ok, "bad": boom, "also_good": ok}
        monkeypatch.setattr("repro.cli.EXPERIMENTS", fakes)
        return calls

    def test_all_continues_past_failures(self, experiments, capsys):
        assert main(["all"]) == 1
        # The failing experiment did not stop the ones after it.
        assert experiments == ["ok", "boom", "ok"]
        err = capsys.readouterr().err
        assert "experiment 'bad' failed" in err
        assert "RuntimeError: synthetic failure" in err
        assert "1/3 experiment(s) failed: bad" in err

    def test_single_failure_reported(self, experiments, capsys):
        assert main(["bad"]) == 1
        err = capsys.readouterr().err
        assert "1/1 experiment(s) failed: bad" in err

    def test_all_green_exits_zero(self, experiments, capsys):
        assert main(["good"]) == 0
        assert capsys.readouterr().err == ""


class TestTrainCommand:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["train", "--out", "x.npz", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_out_is_required(self):
        with pytest.raises(SystemExit):
            main(["train"])

    @pytest.mark.slow
    def test_train_and_resume_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "model.npz"
        ckpts = tmp_path / "ckpts"
        args = ["train", "--out", str(out), "--checkpoint-dir", str(ckpts),
                "--size", "6", "--seed", "1"]
        assert main(args) == 0
        assert out.exists()
        first = capsys.readouterr().out
        assert "final mean relative error" in first
        # Re-running with --resume skips straight to the end.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint" in second


class TestServingCli:
    def test_query_inline_exact_only(self, capsys):
        assert main(["query", "--size", "6", "dist 0 5"]) == 0
        captured = capsys.readouterr()
        assert float(captured.out.strip()) > 0
        assert "distances" in captured.err  # stats table on stderr

    def test_query_with_target_set(self, capsys):
        rc = main(["query", "--size", "6", "--targets", "0,5,9", "knn 0 2"])
        assert rc == 0
        out = capsys.readouterr().out.strip()
        assert len(out.split()) == 2

    def test_query_malformed_line_is_error_answer(self, capsys):
        assert main(["query", "--size", "6", "bogus 1 2"]) == 0
        assert capsys.readouterr().out.startswith("error: unknown operation")

    def test_query_requires_input(self, capsys):
        assert main(["query", "--size", "6"]) == 2
        assert "inline queries or --batch" in capsys.readouterr().err

    def test_query_batch_file(self, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("# header\ndist 0 1\nrange 0 0\n")
        assert main(["query", "--size", "6", "--batch", str(batch)]) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 2

    def test_serve_reads_stdin_and_writes_stats(
        self, tmp_path, capsys, monkeypatch
    ):
        import io
        import json

        stats_path = tmp_path / "stats.json"
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("dist 0 5\ndist 1 5\n")
        )
        rc = main(
            ["serve", "--size", "6", "--stats-out", str(stats_path)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 2
        snap = json.loads(stats_path.read_text())
        assert snap["ops"]["exact_distances"]["items"] == 2

    def test_serving_experiment_registered(self):
        assert "serving" in EXPERIMENTS


class TestUpdateCommand:
    def test_model_is_required(self):
        with pytest.raises(SystemExit):
            main(["update"])

    def test_missing_artifact_is_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.npz"
        rc = main(["update", "--model", str(missing), "--size", "6"])
        assert rc == 1
        assert "cannot update" in capsys.readouterr().err

    @pytest.mark.slow
    def test_train_then_update_roundtrip(self, tmp_path, capsys):
        import json

        model = tmp_path / "model.npz"
        updated = tmp_path / "updated.npz"
        stats_path = tmp_path / "stats.json"
        assert main(
            ["train", "--out", str(model), "--size", "8", "--seed", "1"]
        ) == 0
        capsys.readouterr()
        rc = main(
            [
                "update", "--model", str(model), "--out", str(updated),
                "--size", "8", "--seed", "1", "--samples", "1500",
                "--rounds", "2", "--validation-size", "200",
                "--stats-out", str(stats_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "version" in out
        assert updated.exists()
        record = json.loads(stats_path.read_text())
        assert record["version_after"] >= record["version_before"]
        # The saved artifact carries the (possibly bumped) version.
        from repro.core.pipeline import RNE
        from repro.graph import grid_city
        from repro.live import perturb_weights

        graph = grid_city(8, 8, seed=1)
        new_graph, _ = perturb_weights(graph, factor=2.0, count=10, seed=2)
        load_graph = new_graph if record["graph_changed"] else graph
        loaded = RNE.load(str(updated), load_graph)
        assert loaded.version == record["version_after"]

    def test_updates_experiment_registered(self):
        assert "updates" in EXPERIMENTS
