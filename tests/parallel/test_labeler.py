"""Cross-implementation tests: parallel labeler vs serial DistanceLabeler.

The core guarantee of ``repro.parallel`` is that parallelism is a pure
speed knob — same labels, same accounting, for any worker count.  These
tests check it property-style over random graphs, seeds and worker counts,
including the cache-hit paths.
"""

import numpy as np
import pytest

import repro.parallel.labeler as labeler_mod
from repro.core import DistanceLabeler
from repro.graph import Graph, delaunay_country, grid_city, radial_city
from repro.parallel import ParallelDistanceLabeler, make_labeler


def _random_workload(graph, seed, num_batches=3, batch=120):
    """Pair batches with repeated sources so caches actually hit."""
    rng = np.random.default_rng(seed)
    pool = rng.choice(graph.n, size=min(24, graph.n), replace=False)
    batches = []
    for _ in range(num_batches):
        s = pool[rng.integers(pool.size, size=batch)]
        t = rng.integers(graph.n, size=batch)
        batches.append(np.column_stack([s, t]).astype(np.int64))
    return batches


GRAPHS = [
    lambda: grid_city(7, 7, seed=1),
    lambda: radial_city(5, 24, seed=2),
    lambda: delaunay_country(80, seed=3),
    # Disconnected: exercises inf labels through both paths.
    lambda: Graph(30, [(i, i + 1, 1.0) for i in range(14)]
                  + [(i, i + 1, 2.0) for i in range(15, 29)]),
]


class TestParallelSerialParity:
    @pytest.mark.parametrize("graph_fn", GRAPHS)
    @pytest.mark.parametrize("workers", [2, 3])
    def test_bit_identical_over_graphs_and_workers(self, graph_fn, workers):
        graph = graph_fn()
        serial = DistanceLabeler(graph, cache_size=8)
        with ParallelDistanceLabeler(graph, workers=workers, cache_size=8) as par:
            for batch in _random_workload(graph, seed=workers):
                np.testing.assert_array_equal(
                    serial.label(batch), par.label(batch)
                )
            assert par.sssp_runs == serial.sssp_runs
            assert par.cache_hits == serial.cache_hits
            assert par.pairs_labelled == serial.pairs_labelled

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_seed_sweep(self, small_grid, seed):
        serial = DistanceLabeler(small_grid)
        with ParallelDistanceLabeler(small_grid, workers=2) as par:
            for batch in _random_workload(small_grid, seed=seed):
                np.testing.assert_array_equal(serial.label(batch), par.label(batch))
            assert par.sssp_runs == serial.sssp_runs

    def test_cache_hit_path(self, small_grid):
        with ParallelDistanceLabeler(small_grid, workers=2) as par:
            pairs = np.array([[0, 1], [0, 2], [5, 3]])
            par.label(pairs)
            runs = par.sssp_runs
            par.label(pairs)  # fully cached second pass
            assert par.sssp_runs == runs
            assert par.cache_hits >= 2

    def test_row_matches_serial(self, small_grid):
        serial = DistanceLabeler(small_grid)
        with ParallelDistanceLabeler(small_grid, workers=2) as par:
            np.testing.assert_array_equal(serial.row(3), par.row(3))

    def test_label_after_close_still_correct(self, small_grid):
        par = ParallelDistanceLabeler(small_grid, workers=2)
        pairs = np.array([[0, 5], [9, 2]])
        expected = DistanceLabeler(small_grid).label(pairs)
        np.testing.assert_array_equal(par.label(pairs), expected)
        par.close()
        more = np.array([[11, 4]])
        np.testing.assert_array_equal(
            par.label(more), DistanceLabeler(small_grid).label(more)
        )
        par.close()


class TestFallback:
    def test_pool_failure_degrades_to_serial(self, small_grid, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no multiprocessing here")

        monkeypatch.setattr(labeler_mod, "SSSPWorkerPool", broken_pool)
        serial = DistanceLabeler(small_grid)
        with ParallelDistanceLabeler(small_grid, workers=4) as par:
            pairs = np.array([[0, 1], [7, 3], [0, 9]])
            np.testing.assert_array_equal(serial.label(pairs), par.label(pairs))
            snap = par.snapshot()
        assert snap["mode"] == "serial-fallback"
        assert "no multiprocessing here" in snap["fallback_reason"]

    def test_snapshot_reports_pool(self, small_grid):
        with ParallelDistanceLabeler(small_grid, workers=2) as par:
            par.label(np.array([[0, 1]]))
            snap = par.snapshot()
        assert snap["mode"] == "parallel"
        assert snap["workers"] == 2
        assert snap["pool"]["sssp_runs"] == 1


class TestMakeLabeler:
    def test_serial_for_one_worker(self, small_grid, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert type(make_labeler(small_grid)) is DistanceLabeler
        assert type(make_labeler(small_grid, workers=1)) is DistanceLabeler

    def test_parallel_for_many(self, small_grid):
        labeler = make_labeler(small_grid, workers=2)
        assert isinstance(labeler, ParallelDistanceLabeler)
        labeler.close()

    def test_env_variable_honoured(self, small_grid, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        labeler = make_labeler(small_grid)
        assert isinstance(labeler, ParallelDistanceLabeler)
        assert labeler.workers == 2
        labeler.close()
