"""Tests for the prefetching sample pipeline."""

import threading
import time

import pytest

from repro.parallel import PrefetchPipeline


class TestPrefetchPipeline:
    def test_results_in_order(self):
        with PrefetchPipeline() as p:
            for i in range(5):
                p.add(f"job{i}", lambda _i=i: _i * 10)
            p.start()
            assert [p.get(f"job{i}") for i in range(5)] == [0, 10, 20, 30, 40]

    def test_disabled_mode_is_lazy_and_identical(self):
        ran = []

        def job(i):
            ran.append(i)
            return i

        p = PrefetchPipeline(enabled=False)
        p.add("a", lambda: job(1))
        p.add("b", lambda: job(2))
        p.start()
        assert ran == []  # nothing runs until consumption
        assert p.get("a") == 1
        assert ran == [1]
        assert p.get("b") == 2

    def test_background_thread_overlaps(self):
        first_done = threading.Event()
        with PrefetchPipeline(lookahead=1) as p:
            p.add("a", lambda: first_done.set() or "a")
            p.add("b", lambda: "b")
            p.start()
            assert first_done.wait(timeout=10.0)  # ran before any get()
            assert p.get("a") == "a"
            assert p.get("b") == "b"

    def test_out_of_order_get_rejected(self):
        with PrefetchPipeline() as p:
            p.add("a", lambda: 1)
            p.add("b", lambda: 2)
            p.start()
            with pytest.raises(RuntimeError, match="in order"):
                p.get("b")

    def test_get_before_start(self):
        p = PrefetchPipeline()
        p.add("a", lambda: 1)
        with pytest.raises(RuntimeError):
            p.get("a")

    def test_unknown_name(self):
        with PrefetchPipeline() as p:
            p.add("a", lambda: 1)
            p.start()
            with pytest.raises(KeyError):
                p.get("nope")

    def test_duplicate_name_rejected(self):
        p = PrefetchPipeline()
        p.add("a", lambda: 1)
        with pytest.raises(ValueError):
            p.add("a", lambda: 2)

    def test_add_after_start_rejected(self):
        with PrefetchPipeline() as p:
            p.add("a", lambda: 1)
            p.start()
            with pytest.raises(RuntimeError):
                p.add("b", lambda: 2)

    def test_double_start_rejected(self):
        with PrefetchPipeline() as p:
            p.start()
            with pytest.raises(RuntimeError):
                p.start()

    def test_job_error_surfaces_at_get(self):
        def boom():
            raise ValueError("bad samples")

        with PrefetchPipeline() as p:
            p.add("bad", boom)
            p.add("after", lambda: 3)
            p.start()
            with pytest.raises(ValueError, match="bad samples"):
                p.get("bad")
            # Jobs after a failure do not hang; they re-raise the abort cause.
            with pytest.raises(ValueError, match="bad samples"):
                p.get("after")

    def test_sync_mode_error(self):
        def boom():
            raise RuntimeError("sync fail")

        p = PrefetchPipeline(enabled=False)
        p.add("bad", boom)
        p.start()
        with pytest.raises(RuntimeError, match="sync fail"):
            p.get("bad")

    def test_close_without_consuming(self):
        p = PrefetchPipeline(lookahead=1)
        for i in range(4):
            p.add(f"job{i}", lambda _i=i: time.sleep(0.01) or _i)
        p.start()
        p.close()  # abandons queued jobs, does not hang

    def test_invalid_lookahead(self):
        with pytest.raises(ValueError):
            PrefetchPipeline(lookahead=0)
