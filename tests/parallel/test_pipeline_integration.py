"""End-to-end determinism of build_rne under workers / prefetch settings."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.pipeline import RNEConfig, build_rne
from repro.reliability.checkpoint import CheckpointManager


@pytest.fixture(scope="module")
def fast_config():
    return RNEConfig(
        d=8,
        hier_samples_per_level=400,
        hier_epochs=2,
        vertex_samples=800,
        vertex_epochs=2,
        num_landmarks=12,
        joint_epochs=1,
        joint_samples=500,
        finetune_rounds=1,
        finetune_samples=300,
        validation_size=200,
        seed=11,
    )


@pytest.fixture(scope="module")
def serial_rne(small_grid, fast_config):
    return build_rne(small_grid, fast_config)


class TestWorkerDeterminism:
    def test_workers_bit_identical(self, small_grid, fast_config, serial_rne):
        parallel = build_rne(small_grid, replace(fast_config, workers=2))
        np.testing.assert_array_equal(
            serial_rne.model.matrix, parallel.model.matrix
        )
        assert parallel.history.labeling["mode"] == "parallel"
        assert (
            parallel.history.labeling["sssp_runs"]
            == serial_rne.history.labeling["sssp_runs"]
        )

    def test_prefetch_off_bit_identical(self, small_grid, fast_config, serial_rne):
        sync = build_rne(small_grid, replace(fast_config, prefetch=False))
        np.testing.assert_array_equal(serial_rne.model.matrix, sync.model.matrix)

    def test_flat_arm_workers_bit_identical(self, small_grid, fast_config):
        base = replace(fast_config, hierarchical=False)
        a = build_rne(small_grid, base)
        b = build_rne(small_grid, replace(base, workers=2, prefetch=False))
        np.testing.assert_array_equal(a.model.matrix, b.model.matrix)

    def test_env_workers_used(self, small_grid, fast_config, monkeypatch, serial_rne):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        rne = build_rne(small_grid, fast_config)
        assert rne.history.labeling["mode"] == "parallel"
        np.testing.assert_array_equal(serial_rne.model.matrix, rne.model.matrix)

    def test_labeling_observability(self, serial_rne):
        labeling = serial_rne.history.labeling
        assert labeling["sssp_runs"] > 0
        assert labeling["pairs_labelled"] > 0
        assert serial_rne.history.phase_seconds.keys() >= {"vertex", "joint"}


class TestCheckpointWorkerConfig:
    def test_worker_config_recorded(self, small_grid, fast_config, tmp_path):
        ckpt = str(tmp_path / "ckpts")
        build_rne(
            small_grid,
            replace(fast_config, workers=2, prefetch=False),
            checkpoint_dir=ckpt,
        )
        manager = CheckpointManager(ckpt, graph=small_grid)
        found = manager.latest()
        assert found is not None
        _, _, meta = found
        assert meta["worker_config"] == {"workers": 2, "prefetch": False}

    def test_resume_bit_identical_across_worker_change(
        self, small_grid, fast_config, tmp_path, serial_rne
    ):
        """A run checkpointed with workers=2 resumes bit-identically serial:
        worker config is a speed knob, not part of the trained state."""
        ckpt = str(tmp_path / "ckpts")
        build_rne(small_grid, replace(fast_config, workers=2), checkpoint_dir=ckpt)
        resumed = build_rne(
            small_grid, fast_config, checkpoint_dir=ckpt, resume=True
        )
        np.testing.assert_array_equal(
            serial_rne.model.matrix, resumed.model.matrix
        )
