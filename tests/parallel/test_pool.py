"""Tests for the multiprocessing SSSP worker pool."""

import numpy as np
import pytest

from repro.algorithms import sssp_many
from repro.graph import Graph
from repro.parallel import SSSPWorkerPool, resolve_workers


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4
        assert resolve_workers(0) == 4

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSSSPWorkerPool:
    def test_rejects_single_worker(self, small_grid):
        with pytest.raises(ValueError):
            SSSPWorkerPool(small_grid, 1)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_bit_identical_to_serial(self, small_grid, workers):
        sources = np.arange(0, small_grid.n, 3, dtype=np.int64)
        expected = sssp_many(small_grid, sources)
        with SSSPWorkerPool(small_grid, workers) as pool:
            got = pool.sssp_many(sources)
        np.testing.assert_array_equal(got, expected)

    def test_order_stable_with_shuffled_duplicate_sources(self, small_grid, rng):
        sources = rng.integers(small_grid.n, size=37).astype(np.int64)
        expected = sssp_many(small_grid, sources)
        with SSSPWorkerPool(small_grid, 2, chunk_size=3) as pool:
            got = pool.sssp_many(sources)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("chunk_size", [1, 4, 100])
    def test_chunking_never_changes_results(self, small_grid, chunk_size):
        sources = np.arange(20, dtype=np.int64)
        expected = sssp_many(small_grid, sources)
        with SSSPWorkerPool(small_grid, 2, chunk_size=chunk_size) as pool:
            np.testing.assert_array_equal(pool.sssp_many(sources), expected)

    def test_disconnected_graph_inf_rows(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with SSSPWorkerPool(g, 2) as pool:
            rows = pool.sssp_many(np.array([0, 2]))
        assert rows[0, 1] == 1.0 and np.isinf(rows[0, 2])
        assert rows[1, 3] == 1.0 and np.isinf(rows[1, 0])

    def test_empty_sources(self, small_grid):
        with SSSPWorkerPool(small_grid, 2) as pool:
            rows = pool.sssp_many(np.array([], dtype=np.int64))
        assert rows.shape == (0, small_grid.n)

    def test_stats_accounting(self, small_grid):
        with SSSPWorkerPool(small_grid, 2, chunk_size=2) as pool:
            pool.sssp_many(np.arange(6))
            pool.sssp_many(np.arange(4))
            snap = pool.stats.snapshot()
        assert snap["sssp_runs"] == 10
        assert snap["calls"] == 2
        assert snap["tasks"] == 5  # 3 chunks + 2 chunks
        assert snap["workers"] == 2
        assert snap["wall_seconds"] > 0
        assert 0.0 <= snap["utilization"] <= 1.0
        assert 1 <= snap["workers_seen"] <= 2

    def test_closed_pool_raises(self, small_grid):
        pool = SSSPWorkerPool(small_grid, 2)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.sssp_many(np.array([0]))
