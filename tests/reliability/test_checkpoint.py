"""Tests for checkpoint state packing, the manager, and divergence recovery."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.reliability import (
    ArtifactError,
    CheckpointManager,
    RetryPolicy,
    TrainingDiverged,
    diverged,
    run_with_recovery,
)
from repro.reliability.checkpoint import (
    abort_on_nonfinite,
    pack_state,
    restore_rng,
    rng_state,
    unpack_state,
)
from repro.reliability.faults import corrupt_file


class FakeAdam:
    """Duck-typed optimiser state (.m / .v / .t), like training._Adam."""

    def __init__(self, shape, t=0):
        self.m = np.zeros(shape, dtype=np.float64)
        self.v = np.zeros(shape, dtype=np.float64)
        self.t = t


class TestStatePacking:
    def test_roundtrip_with_adam(self, rng):
        matrices = [rng.normal(size=(4, 2)), rng.normal(size=(3, 2))]
        adam = [FakeAdam((4, 2), t=7), FakeAdam((3, 2), t=7)]
        adam[0].m[:] = 0.5
        arrays, meta = pack_state(matrices, adam)

        fresh_m = [np.zeros((4, 2)), np.zeros((3, 2))]
        fresh_a = [FakeAdam((4, 2)), FakeAdam((3, 2))]
        unpack_state(arrays, meta, fresh_m, fresh_a)
        for got, want in zip(fresh_m, matrices):
            np.testing.assert_array_equal(got, want)
        assert fresh_a[0].t == 7
        np.testing.assert_array_equal(fresh_a[0].m, adam[0].m)

    def test_level_count_mismatch(self, rng):
        arrays, meta = pack_state([rng.normal(size=(4, 2))])
        with pytest.raises(ArtifactError, match="levels"):
            unpack_state(arrays, meta, [np.zeros((4, 2)), np.zeros((3, 2))])

    def test_shape_mismatch(self, rng):
        arrays, meta = pack_state([rng.normal(size=(4, 2))])
        with pytest.raises(ArtifactError, match="shape"):
            unpack_state(arrays, meta, [np.zeros((5, 2))])

    def test_missing_adam_counters(self, rng):
        arrays, meta = pack_state([rng.normal(size=(4, 2))])  # no adam saved
        with pytest.raises(ArtifactError, match="Adam"):
            unpack_state(arrays, meta, [np.zeros((4, 2))], [FakeAdam((4, 2))])

    def test_rng_state_roundtrip_is_json_safe(self):
        import json

        rng = np.random.default_rng(42)
        rng.normal(size=10)
        state = json.loads(json.dumps(rng_state(rng)))
        expected = rng.normal(size=5)
        replay = np.random.default_rng(0)
        restore_rng(replay, state)
        np.testing.assert_array_equal(replay.normal(size=5), expected)


class TestCheckpointManager:
    def test_save_load_roundtrip(self, tmp_path, rng):
        mgr = CheckpointManager(tmp_path)
        arrays, meta = pack_state([rng.normal(size=(4, 2))])
        meta["extra"] = [1, 2]
        mgr.save("vertex", arrays, meta, step=3)
        back, back_meta = mgr.load("vertex")
        np.testing.assert_array_equal(back["local_0"], arrays["local_0"])
        assert back_meta["step"] == 3
        assert back_meta["stage"] == "vertex"
        assert back_meta["extra"] == [1, 2]

    @pytest.mark.parametrize("stage", ["", ".hidden", "a/b"])
    def test_bad_stage_names_rejected(self, tmp_path, stage):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path).path_for(stage)

    def test_latest_picks_highest_step(self, tmp_path, rng):
        mgr = CheckpointManager(tmp_path)
        arrays, meta = pack_state([rng.normal(size=(2, 2))])
        mgr.save("early", arrays, meta, step=0)
        mgr.save("late", arrays, meta, step=1)
        stage, _, got_meta = mgr.latest()
        assert stage == "late"
        assert got_meta["step"] == 1

    def test_latest_skips_corrupt_and_falls_back(self, tmp_path, rng):
        mgr = CheckpointManager(tmp_path)
        arrays, meta = pack_state([rng.normal(size=(2, 2))])
        mgr.save("early", arrays, meta, step=0)
        mgr.save("late", arrays, meta, step=1)
        corrupt_file(mgr.path_for("late"), seed=1, nbytes=8)
        stage, _, _ = mgr.latest()
        assert stage == "early"
        assert len(mgr.skipped) == 1
        assert "late" in mgr.skipped[0][0]

    def test_latest_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_graph_binding(self, tmp_path, rng):
        g1 = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        g2 = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        arrays, meta = pack_state([rng.normal(size=(2, 2))])
        CheckpointManager(tmp_path, graph=g1).save("s", arrays, meta, step=0)
        other = CheckpointManager(tmp_path, graph=g2)
        assert other.latest() is None  # wrong-graph checkpoint is skipped
        assert len(other.skipped) == 1

    def test_clear(self, tmp_path, rng):
        mgr = CheckpointManager(tmp_path)
        arrays, meta = pack_state([rng.normal(size=(2, 2))])
        mgr.save("s", arrays, meta, step=0)
        mgr.clear()
        assert mgr.stages_on_disk() == []


class TestDivergenceDetection:
    def test_empty_and_short_histories_pass(self):
        assert not diverged([])
        assert not diverged([1.0])

    def test_nonfinite_always_diverges(self):
        assert diverged([1.0, float("nan")])
        assert diverged([float("inf")])

    def test_regression_beyond_factor(self):
        assert not diverged([1.0, 0.9, 0.8, 1.2])  # noise passes
        assert diverged([1.0, 0.5, 0.4, 10.0], regression_factor=5.0)

    def test_window_limits_lookback(self):
        # The ancient low value must fall outside the window.
        history = [0.01] + [1.0] * 6 + [3.0]
        assert not diverged(history, regression_factor=5.0, window=5)

    def test_abort_on_nonfinite_hook(self):
        hook = abort_on_nonfinite("stage-x")
        hook(0, 1.0, 0.5)  # fine
        with pytest.raises(TrainingDiverged, match="stage-x"):
            hook(1, float("nan"), 0.5)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"lr_backoff": 0.0},
            {"lr_backoff": 1.0},
            {"regression_factor": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRunWithRecovery:
    def test_clean_run_passes_through(self):
        state = {"value": 0}

        def attempt(scale):
            state["value"] = 10
            return type("R", (), {"mse": [1.0, 0.5]})()

        outcome = run_with_recovery(
            attempt, lambda: dict(state), lambda s: state.update(s)
        )
        assert outcome.attempts == 1
        assert outcome.lr_scale == 1.0
        assert outcome.notes == []
        assert state["value"] == 10

    def test_rollback_and_backoff_then_success(self):
        state = {"value": 0}
        calls = []

        def attempt(scale):
            calls.append((scale, state["value"]))
            state["value"] += 1
            if len(calls) == 1:
                raise TrainingDiverged("boom")
            return type("R", (), {"mse": [1.0, 0.5]})()

        outcome = run_with_recovery(
            attempt,
            lambda: dict(state),
            lambda s: (state.clear(), state.update(s)),
            policy=RetryPolicy(max_retries=2, lr_backoff=0.5),
            stage="unit",
        )
        # Second attempt starts from the restored snapshot at half the rate.
        assert calls == [(1.0, 0), (0.5, 0)]
        assert outcome.attempts == 2
        assert outcome.lr_scale == 0.5
        assert len(outcome.notes) == 1 and "unit" in outcome.notes[0]

    def test_history_divergence_triggers_retry(self):
        histories = [[1.0, 50.0], [1.0, 0.5]]

        def attempt(scale):
            return type("R", (), {"mse": histories.pop(0)})()

        outcome = run_with_recovery(
            attempt, lambda: None, lambda s: None,
            policy=RetryPolicy(regression_factor=5.0),
        )
        assert outcome.attempts == 2

    def test_exhausted_budget_raises_and_restores(self):
        state = {"value": 0}

        def attempt(scale):
            state["value"] += 1
            raise TrainingDiverged("always")

        with pytest.raises(TrainingDiverged, match="attempts"):
            run_with_recovery(
                attempt,
                lambda: dict(state),
                lambda s: (state.clear(), state.update(s)),
                policy=RetryPolicy(max_retries=1),
            )
        assert state["value"] == 0  # restored to the pre-stage snapshot

    def test_history_of_override(self):
        def attempt(scale):
            return type(
                "R", (), {"mse": [1.0], "mean_rel_errors": [1.0, 99.0]}
            )()

        with pytest.raises(TrainingDiverged):
            run_with_recovery(
                attempt, lambda: None, lambda s: None,
                policy=RetryPolicy(max_retries=0),
                history_of=lambda r: r.mean_rel_errors,
            )
