"""Tests for the graceful-degradation serving oracle."""

import numpy as np
import pytest

from repro.algorithms.dijkstra import bidirectional_dijkstra, dijkstra, pair_distances
from repro.reliability import OracleStats, ResilientOracle
from repro.reliability.faults import corrupt_file, truncate_file


@pytest.fixture
def artifact(rel_rne, tmp_path):
    path = tmp_path / "rne.npz"
    rel_rne.save(str(path))
    return path


class TestConstruction:
    def test_requires_exactly_one_source(self, rel_graph, rel_rne):
        with pytest.raises(ValueError):
            ResilientOracle(rel_graph)
        with pytest.raises(ValueError):
            ResilientOracle(rel_graph, "x.npz", rne=rel_rne)

    def test_bad_error_bound(self, rel_graph, rel_rne):
        with pytest.raises(ValueError):
            ResilientOracle(rel_graph, rne=rel_rne, error_bound=0.0)


class TestHealthyServing:
    def test_serves_model_answers(self, rel_graph, artifact, rel_rne, rng):
        oracle = ResilientOracle(rel_graph, str(artifact))
        assert oracle.healthy
        pairs = rng.integers(rel_graph.n, size=(20, 2))
        np.testing.assert_allclose(
            oracle.query_pairs(pairs), rel_rne.query_pairs(pairs)
        )
        assert oracle.query(0, 5) == pytest.approx(rel_rne.query(0, 5))
        assert oracle.stats.model_queries == 21
        assert oracle.stats.fallback_queries == 0
        assert oracle.stats.fallback_rate == 0.0

    def test_probe_records_error_and_keeps_health(self, rel_graph, artifact):
        oracle = ResilientOracle(rel_graph, str(artifact), error_bound=10.0)
        assert oracle.healthy
        assert oracle.stats.probe_mean_rel_error is not None
        assert oracle.stats.probe_mean_rel_error < 10.0


class TestDegradedServing:
    @pytest.fixture
    def degraded(self, rel_graph, artifact):
        corrupt_file(artifact, seed=11, nbytes=8)
        oracle = ResilientOracle(rel_graph, str(artifact))
        assert not oracle.healthy
        assert oracle.stats.degraded
        assert "artifact rejected" in oracle.stats.degraded_reason
        return oracle

    def test_corrupt_artifact_serves_exact(self, degraded, rel_graph, rng):
        pairs = rng.integers(rel_graph.n, size=(10, 2))
        np.testing.assert_allclose(
            degraded.query_pairs(pairs), pair_distances(rel_graph, pairs)
        )
        assert degraded.query(0, 7) == pytest.approx(
            bidirectional_dijkstra(rel_graph, 0, 7)
        )
        assert degraded.stats.fallback_queries == 11
        assert degraded.stats.model_queries == 0
        assert degraded.stats.fallback_rate == 1.0

    def test_degraded_range_query_is_exact(self, degraded, rel_graph, rng):
        targets = rng.choice(rel_graph.n, size=15, replace=False)
        dist = np.asarray(dijkstra(rel_graph, 3), dtype=np.float64)
        tau = float(np.median(dist[targets]))
        got = degraded.range_query(3, targets, tau)
        np.testing.assert_array_equal(
            got, np.sort(targets[dist[targets] <= tau])
        )

    def test_degraded_knn_is_exact(self, degraded, rel_graph, rng):
        targets = rng.choice(rel_graph.n, size=15, replace=False)
        got = degraded.knn(2, targets, 4)
        dist = np.asarray(dijkstra(rel_graph, 2), dtype=np.float64)
        np.testing.assert_allclose(
            np.sort(dist[got]), np.sort(dist[targets])[:4]
        )

    def test_degraded_knn_join_is_exact(self, degraded, rel_graph, rng):
        sources = rng.choice(rel_graph.n, size=3, replace=False)
        targets = rng.choice(rel_graph.n, size=10, replace=False)
        got = degraded.knn_join(sources, targets, 3)
        assert got.shape == (3, 3)
        for row, s in zip(got, sources):
            dist = np.asarray(dijkstra(rel_graph, int(s)), dtype=np.float64)
            np.testing.assert_allclose(
                np.sort(dist[row]), np.sort(dist[targets])[:3]
            )

    def test_degraded_validates_query_args(self, degraded, rel_graph):
        with pytest.raises(ValueError):
            degraded.knn(0, np.arange(5), 0)
        with pytest.raises(ValueError):
            degraded.range_query(0, np.arange(5), -1.0)

    def test_truncated_artifact_degrades(self, rel_graph, artifact):
        truncate_file(artifact, fraction=0.3)
        oracle = ResilientOracle(rel_graph, str(artifact))
        assert not oracle.healthy

    def test_wrong_graph_degrades(self, artifact):
        from repro.graph.generators import grid_city

        other = grid_city(6, 6, seed=4)
        oracle = ResilientOracle(other, str(artifact))
        assert not oracle.healthy
        assert "different graph" in oracle.stats.degraded_reason

    def test_probe_failure_degrades(self, rel_graph, artifact):
        oracle = ResilientOracle(rel_graph, str(artifact), error_bound=1e-9)
        assert not oracle.healthy
        assert "exceeds" in oracle.stats.degraded_reason
        # Degradation via probe still serves exact answers.
        assert oracle.query(0, 1) == pytest.approx(
            bidirectional_dijkstra(rel_graph, 0, 1)
        )


class TestStats:
    def test_empty_stats(self):
        stats = OracleStats()
        assert stats.total_queries == 0
        assert stats.fallback_rate == 0.0


class TestBatchedServing:
    def test_healthy_batches_match_single_queries(self, rel_graph, artifact, rng):
        oracle = ResilientOracle(rel_graph, str(artifact))
        targets = rng.choice(rel_graph.n, size=12, replace=False)
        sources = rng.integers(rel_graph.n, size=5)
        for s, ids in zip(sources, oracle.knn_batch(sources, targets, 4)):
            np.testing.assert_array_equal(ids, oracle.knn(int(s), targets, 4))
        for s, ids in zip(sources, oracle.range_batch(sources, targets, 3.0)):
            np.testing.assert_array_equal(
                ids, oracle.range_query(int(s), targets, 3.0)
            )

    def test_degraded_batches_are_exact(self, rel_graph, artifact, rng):
        from repro.algorithms.knn import knn_true, range_true

        corrupt_file(artifact, seed=11, nbytes=8)
        oracle = ResilientOracle(rel_graph, str(artifact))
        assert not oracle.healthy
        targets = rng.choice(rel_graph.n, size=10, replace=False)
        sources = rng.integers(rel_graph.n, size=4)
        for s, ids in zip(sources, oracle.knn_batch(sources, targets, 3)):
            np.testing.assert_array_equal(
                ids, knn_true(rel_graph, int(s), targets, 3)
            )
        for s, ids in zip(sources, oracle.range_batch(sources, targets, 4.0)):
            np.testing.assert_array_equal(
                ids, range_true(rel_graph, int(s), targets, 4.0)
            )

    def test_prepared_targets_flow_through(self, rel_graph, artifact, rng):
        oracle = ResilientOracle(rel_graph, str(artifact))
        targets = rng.choice(rel_graph.n, size=8, replace=False)
        prepared = oracle.prepare(targets)
        np.testing.assert_array_equal(
            oracle.knn(2, prepared, 3), oracle.knn(2, targets, 3)
        )

    def test_serving_snapshot_and_report(self, rel_graph, artifact):
        oracle = ResilientOracle(rel_graph, str(artifact))
        oracle.query_pairs(np.array([[0, 1], [2, 3]]))
        snap = oracle.serving_snapshot()
        assert snap["ops"]["distances"]["items"] == 2
        assert "hot_rows" in snap["caches"]
        assert "sssp" in snap["caches"]
        assert "distances" in oracle.serving_report()

    def test_degraded_serving_uses_sssp_cache(self, rel_graph, artifact):
        corrupt_file(artifact, seed=11, nbytes=8)
        oracle = ResilientOracle(rel_graph, str(artifact))
        pairs = np.array([[3, 1], [3, 2], [3, 4]])
        oracle.query_pairs(pairs)
        oracle.query_pairs(pairs)
        assert oracle.serving_snapshot()["caches"]["sssp"]["hits"] >= 1
