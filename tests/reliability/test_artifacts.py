"""Tests for the crash-safe, self-validating artifact layer."""

import os

import numpy as np
import pytest

from repro.graph import Graph
from repro.reliability import (
    ArtifactError,
    FaultInjector,
    InjectedFault,
    graph_fingerprint,
    installed,
    load_artifact,
    save_artifact,
)
from repro.reliability.artifacts import SCHEMA_VERSION, validate_embedding_payload
from repro.reliability.faults import corrupt_file, truncate_file


@pytest.fixture
def arrays(rng):
    return {
        "matrix": rng.normal(size=(6, 3)),
        "p": np.float64(1.0),
        "ids": np.arange(4, dtype=np.int64),
    }


class TestRoundtrip:
    def test_arrays_and_manifest(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, arrays, kind="embedding", meta={"note": "hi"})
        back, manifest = load_artifact(path, expect_kind="embedding")
        assert set(back) == set(arrays)
        for name in arrays:
            np.testing.assert_array_equal(back[name], np.asarray(arrays[name]))
            assert back[name].dtype == np.asarray(arrays[name]).dtype
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["meta"] == {"note": "hi"}

    def test_scalar_roundtrips_as_0d(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, {"p": np.float64(2.5)}, kind="embedding")
        back, _ = load_artifact(path)
        assert back["p"].ndim == 0
        assert float(back["p"]) == 2.5

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_artifact(
                tmp_path / "a.npz", {"__manifest__": np.zeros(1)}, kind="x"
            )


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "nope.npz")

    def test_kind_mismatch(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, arrays, kind="embedding")
        with pytest.raises(ArtifactError, match="kind"):
            load_artifact(path, expect_kind="rne")

    def test_legacy_npz_without_manifest(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez(path, matrix=np.zeros((2, 2)))
        with pytest.raises(ArtifactError, match="manifest"):
            load_artifact(path)

    def test_truncated(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, arrays, kind="embedding")
        truncate_file(path, fraction=0.5)
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_bit_flipped(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, arrays, kind="embedding")
        corrupt_file(path, seed=5, nbytes=8)
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "a.npz"
        path.write_bytes(b"this is not an archive")
        with pytest.raises(ArtifactError):
            load_artifact(path)


class TestGraphBinding:
    def test_fingerprint_changes_with_weight(self):
        g1 = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        g2 = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        f1, f2 = graph_fingerprint(g1), graph_fingerprint(g2)
        assert f1["n"] == f2["n"] and f1["m"] == f2["m"]
        assert f1["weight_hash"] != f2["weight_hash"]

    def test_wrong_graph_rejected(self, arrays, tmp_path):
        g1 = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        g2 = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        path = tmp_path / "a.npz"
        save_artifact(path, arrays, kind="rne", graph=g1)
        load_artifact(path, graph=g1)  # same graph passes
        with pytest.raises(ArtifactError, match="different graph"):
            load_artifact(path, graph=g2)

    def test_unbound_artifact_rejected_when_binding_requested(
        self, arrays, tmp_path
    ):
        g = Graph(2, [(0, 1, 1.0)])
        path = tmp_path / "a.npz"
        save_artifact(path, arrays, kind="rne")
        with pytest.raises(ArtifactError, match="fingerprint"):
            load_artifact(path, graph=g)


class TestAtomicity:
    def test_crash_before_replace_leaves_no_file(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        with installed(FaultInjector.crash_on("artifact.pre_replace")):
            with pytest.raises(InjectedFault):
                save_artifact(path, arrays, kind="embedding")
        assert not path.exists()
        assert os.listdir(tmp_path) == []  # temp file cleaned up too

    def test_crash_before_write_leaves_no_file(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        with installed(FaultInjector.crash_on("artifact.pre_write")):
            with pytest.raises(InjectedFault):
                save_artifact(path, arrays, kind="embedding")
        assert os.listdir(tmp_path) == []

    def test_crash_during_overwrite_keeps_old_artifact(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(path, {"v": np.arange(3)}, kind="embedding")
        with installed(FaultInjector.crash_on("artifact.pre_replace")):
            with pytest.raises(InjectedFault):
                save_artifact(path, arrays, kind="embedding")
        back, _ = load_artifact(path, expect_kind="embedding")
        np.testing.assert_array_equal(back["v"], np.arange(3))

    def test_crash_after_replace_leaves_new_artifact(self, arrays, tmp_path):
        path = tmp_path / "a.npz"
        with installed(FaultInjector.crash_on("artifact.post_replace")):
            with pytest.raises(InjectedFault):
                save_artifact(path, arrays, kind="embedding")
        back, _ = load_artifact(path, expect_kind="embedding")
        assert set(back) == set(arrays)


class TestEmbeddingPayload:
    def test_valid_payload(self):
        matrix, p = validate_embedding_payload(
            "x.npz", np.ones((4, 2)), np.float64(2.0), expect_n=4
        )
        assert matrix.dtype == np.float64
        assert p == 2.0

    @pytest.mark.parametrize(
        "matrix, p",
        [
            (np.ones(4), 1.0),  # not 2-d
            (np.array([[np.nan, 1.0]]), 1.0),  # non-finite matrix
            (np.ones((4, 2)), 0.5),  # p < 1
            (np.ones((4, 2)), np.inf),  # non-finite p
            (np.ones((4, 2)), np.array([1.0, 2.0])),  # non-scalar p
        ],
    )
    def test_bad_payloads(self, matrix, p):
        with pytest.raises(ArtifactError):
            validate_embedding_payload("x.npz", matrix, p)

    def test_row_count_mismatch(self):
        with pytest.raises(ArtifactError, match="rows"):
            validate_embedding_payload("x.npz", np.ones((4, 2)), 1.0, expect_n=5)
