"""Shared fixtures for the reliability suite: a fast build on a small grid."""

import pytest

from repro.core import RNEConfig, build_rne
from repro.graph.generators import grid_city


@pytest.fixture(scope="session")
def rel_graph():
    return grid_city(6, 6, seed=3)


@pytest.fixture(scope="session")
def rel_config():
    return RNEConfig(
        d=8, hier_samples_per_level=800, hier_epochs=2,
        vertex_samples=1500, vertex_epochs=2, num_landmarks=12,
        joint_epochs=1, joint_samples=800,
        finetune_rounds=1, finetune_samples=500,
        validation_size=200, seed=0,
    )


@pytest.fixture(scope="session")
def rel_rne(rel_graph, rel_config):
    """One uninterrupted reference build, shared across the suite."""
    return build_rne(rel_graph, rel_config)
