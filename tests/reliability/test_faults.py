"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.reliability import FaultInjector, InjectedFault, installed
from repro.reliability import faults
from repro.reliability.faults import corrupt_file, truncate_file


class TestFaultInjector:
    def test_recorder_logs_events_in_order(self):
        inj = FaultInjector.recorder()
        with installed(inj):
            faults.fire("a", "one")
            faults.fire("b", "two")
            faults.fire("a", "three")
        assert inj.log == [("a", "one"), ("b", "two"), ("a", "three")]
        assert inj.events() == ["a", "b", "a"]

    def test_crash_on_nth_occurrence(self):
        inj = FaultInjector.crash_on("boom", occurrence=2)
        with installed(inj):
            faults.fire("boom")  # first occurrence passes
            faults.fire("other")
            with pytest.raises(InjectedFault):
                faults.fire("boom")

    def test_fire_is_noop_without_injector(self):
        faults.fire("anything")  # must not raise

    def test_injected_fault_is_not_oserror(self):
        # The crash must not be swallowed by IO error handling.
        assert not issubclass(InjectedFault, OSError)

    def test_installed_restores_previous(self):
        outer = FaultInjector.recorder()
        inner = FaultInjector.recorder()
        with installed(outer):
            with installed(inner):
                faults.fire("x")
            faults.fire("y")
        assert inner.events() == ["x"]
        assert outer.events() == ["y"]


class TestFileCorruption:
    def test_corrupt_file_changes_bytes_deterministically(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        payload = bytes(range(256))
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_file(a, seed=7, nbytes=3)
        corrupt_file(b, seed=7, nbytes=3)
        assert a.read_bytes() != payload
        assert a.read_bytes() == b.read_bytes()

    def test_corrupt_file_different_seed_differs(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        payload = bytes(1000)
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_file(a, seed=1, nbytes=4)
        corrupt_file(b, seed=2, nbytes=4)
        assert a.read_bytes() != b.read_bytes()

    def test_truncate_file(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(bytes(100))
        truncate_file(path, fraction=0.5)
        assert path.stat().st_size == 50
