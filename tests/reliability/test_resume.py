"""End-to-end crash/resume tests for the checkpointed build pipeline."""

import os

import numpy as np
import pytest

from repro.core import RNE, build_rne
from repro.reliability import (
    ArtifactError,
    FaultInjector,
    InjectedFault,
    installed,
    load_artifact,
)
from repro.reliability.faults import corrupt_file


def _checkpoints(directory):
    return sorted(f for f in os.listdir(directory) if f.endswith(".ckpt.npz"))


@pytest.fixture(scope="module")
def boundary_count(rel_graph, rel_config, tmp_path_factory):
    """How many checkpoint saves a full build performs (recorded, no crash)."""
    ckpt = tmp_path_factory.mktemp("record")
    with installed(FaultInjector.recorder()) as inj:
        build_rne(rel_graph, rel_config, checkpoint_dir=str(ckpt))
    saves = inj.events().count("checkpoint.saved")
    assert saves >= 3  # at least one hierarchy level + vertex + joint
    return saves


class TestCheckpointedBuild:
    def test_checkpointing_does_not_change_the_result(
        self, rel_graph, rel_config, rel_rne, tmp_path
    ):
        with_ckpt = build_rne(rel_graph, rel_config, checkpoint_dir=str(tmp_path))
        np.testing.assert_array_equal(
            with_ckpt.model.matrix, rel_rne.model.matrix
        )
        assert _checkpoints(tmp_path)  # checkpoints were actually written

    def test_resume_with_empty_directory_is_a_fresh_build(
        self, rel_graph, rel_config, rel_rne, tmp_path
    ):
        rne = build_rne(
            rel_graph, rel_config, checkpoint_dir=str(tmp_path), resume=True
        )
        np.testing.assert_array_equal(rne.model.matrix, rel_rne.model.matrix)

    def test_crash_at_every_boundary_then_resume_is_bit_identical(
        self, rel_graph, rel_config, rel_rne, boundary_count, tmp_path
    ):
        """The acceptance criterion: kill the build at each checkpoint
        boundary in turn; on-disk artifacts must all stay valid and the
        resumed run must reproduce the uninterrupted result exactly."""
        for occurrence in range(1, boundary_count + 1):
            ckpt = tmp_path / f"crash_{occurrence}"
            inj = FaultInjector.crash_on("checkpoint.saved", occurrence)
            with installed(inj):
                with pytest.raises(InjectedFault):
                    build_rne(rel_graph, rel_config, checkpoint_dir=str(ckpt))
            # Every artifact the crashed run left behind is fully valid.
            for name in _checkpoints(ckpt):
                load_artifact(ckpt / name, expect_kind="checkpoint")
            resumed = build_rne(
                rel_graph, rel_config, checkpoint_dir=str(ckpt), resume=True
            )
            assert any("resumed from checkpoint" in n for n in resumed.history.notes)
            np.testing.assert_array_equal(
                resumed.model.matrix, rel_rne.model.matrix
            )
            assert resumed.history.phase_errors == rel_rne.history.phase_errors

    def test_crash_mid_artifact_write_leaves_no_torn_checkpoint(
        self, rel_graph, rel_config, rel_rne, tmp_path
    ):
        inj = FaultInjector.crash_on("artifact.pre_replace", 1)
        with installed(inj):
            with pytest.raises(InjectedFault):
                build_rne(rel_graph, rel_config, checkpoint_dir=str(tmp_path))
        assert _checkpoints(tmp_path) == []  # nothing half-written
        resumed = build_rne(
            rel_graph, rel_config, checkpoint_dir=str(tmp_path), resume=True
        )
        np.testing.assert_array_equal(resumed.model.matrix, rel_rne.model.matrix)

    def test_corrupt_latest_checkpoint_degrades_to_previous(
        self, rel_graph, rel_config, rel_rne, tmp_path
    ):
        build_rne(rel_graph, rel_config, checkpoint_dir=str(tmp_path))
        names = _checkpoints(tmp_path)
        assert len(names) >= 2
        # Find the highest-step checkpoint and corrupt it.
        steps = {
            name: load_artifact(tmp_path / name)[1]["meta"]["step"]
            for name in names
        }
        latest = max(steps, key=lambda name: steps[name])
        corrupt_file(tmp_path / latest, seed=3, nbytes=8)
        resumed = build_rne(
            rel_graph, rel_config, checkpoint_dir=str(tmp_path), resume=True
        )
        assert any("skipped corrupt checkpoint" in n for n in resumed.history.notes)
        np.testing.assert_array_equal(resumed.model.matrix, rel_rne.model.matrix)


class TestFlatResume:
    def test_crash_and_resume_flat_build(self, rel_graph, rel_config, tmp_path):
        from dataclasses import replace

        config = replace(rel_config, hierarchical=False)
        baseline = build_rne(rel_graph, config)
        ckpt = tmp_path / "flat"
        with installed(FaultInjector.crash_on("checkpoint.saved", 1)):
            with pytest.raises(InjectedFault):
                build_rne(rel_graph, config, checkpoint_dir=str(ckpt))
        resumed = build_rne(
            rel_graph, config, checkpoint_dir=str(ckpt), resume=True
        )
        np.testing.assert_array_equal(
            resumed.model.matrix, baseline.model.matrix
        )


class TestSavedRneValidation:
    def test_corrupt_rne_artifact_raises(self, rel_rne, rel_graph, tmp_path):
        path = tmp_path / "rne.npz"
        rel_rne.save(str(path))
        corrupt_file(path, seed=9, nbytes=8)
        with pytest.raises(ArtifactError):
            RNE.load(str(path), rel_graph)

    def test_wrong_graph_raises(self, rel_rne, tmp_path):
        from repro.graph.generators import grid_city

        path = tmp_path / "rne.npz"
        rel_rne.save(str(path))
        other = grid_city(6, 6, seed=4)  # same size, different weights
        with pytest.raises(ArtifactError, match="different graph"):
            RNE.load(str(path), other)
