"""Tests for the live-update vs rebuild benchmark."""

import json

import pytest

from repro.bench.updates import _default_out_path, updates_benchmark


def test_default_out_path_prefers_results_dir():
    assert _default_out_path().endswith("BENCH_updates.json")


@pytest.mark.slow
def test_fast_benchmark_schema_and_invariants(tmp_path):
    out = tmp_path / "BENCH_updates.json"
    results = updates_benchmark(fast=True, out_path=str(out))

    assert results["fast"] is True
    assert results["perturbed_edges"] > 0
    inc = results["incremental"]
    assert inc["total_seconds"] > 0
    assert inc["swap_seconds"] < inc["total_seconds"]
    assert 0 < inc["index_nodes_refreshed"] <= inc["index_nodes_total"]
    assert inc["engine_invalidations"], "engine must have been invalidated"
    assert results["rebuild"]["total_seconds"] > 0
    assert results["speedup"] == pytest.approx(
        results["rebuild"]["total_seconds"] / inc["total_seconds"]
    )
    assert "report" in results

    on_disk = json.loads(out.read_text())
    assert on_disk["graph"]["vertices"] == results["graph"]["vertices"]
    assert on_disk["incremental"]["published"] == inc["published"]
