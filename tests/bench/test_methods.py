"""Tests for the uniform method registry."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.bench import build_method
from repro.graph import grid_city


@pytest.fixture(scope="module")
def grid():
    return grid_city(8, 8, seed=2)


@pytest.fixture(scope="module")
def workload(grid):
    rng = np.random.default_rng(0)
    pairs = rng.integers(grid.n, size=(40, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    return pairs, pair_distances(grid, pairs)


EXACT = ["dijkstra", "ch", "h2h", "hl", "gtree", "silc"]
APPROX = ["euclidean", "manhattan", "ach", "oracle", "lt"]


class TestRegistry:
    @pytest.mark.parametrize("name", EXACT)
    def test_exact_methods(self, grid, workload, name):
        pairs, truth = workload
        built = build_method(name, grid, seed=0)
        assert built.exact
        np.testing.assert_allclose(built.query_pairs(pairs), truth)

    @pytest.mark.parametrize("name", APPROX)
    def test_approximate_methods_reasonable(self, grid, workload, name):
        pairs, truth = workload
        built = build_method(name, grid, seed=0)
        assert not built.exact
        pred = built.query_pairs(pairs)
        rel = np.abs(pred - truth) / np.maximum(truth, 1e-12)
        assert rel.mean() < 0.5  # loose: even geometry is ~15% here

    def test_unknown_method(self, grid):
        with pytest.raises(KeyError):
            build_method("nope", grid)

    def test_query_matches_query_pairs(self, grid, workload):
        pairs, _ = workload
        built = build_method("lt", grid, seed=0)
        s, t = int(pairs[0, 0]), int(pairs[0, 1])
        assert built.query(s, t) == pytest.approx(
            float(built.query_pairs(pairs[:1])[0])
        )

    def test_index_bytes_nonnegative(self, grid):
        for name in ("euclidean", "ch", "lt"):
            built = build_method(name, grid, seed=0)
            assert built.index_bytes() >= 0

    def test_rne_fast_quality(self, grid, workload):
        pairs, truth = workload
        built = build_method("rne", grid, seed=0, quality="fast")
        pred = built.query_pairs(pairs)
        rel = np.abs(pred - truth) / np.maximum(truth, 1e-12)
        assert rel.mean() < 0.25
        assert built.build_seconds > 0

    def test_rne_naive_builds(self, grid):
        built = build_method("rne-naive", grid, seed=0, quality="fast")
        assert built.impl.hierarchy is None

    def test_dr_builds(self, grid, workload):
        pairs, truth = workload
        built = build_method("dr-1k", grid, seed=0, train_samples=2000)
        pred = built.query_pairs(pairs)
        assert np.isfinite(pred).all()
