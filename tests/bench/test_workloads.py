"""Tests for benchmark workload generators."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.bench import distance_scale_groups, random_queries, spatial_workload


class TestRandomQueries:
    def test_truth_is_exact(self, small_grid):
        w = random_queries(small_grid, 100, seed=0)
        np.testing.assert_allclose(w.truth, pair_distances(small_grid, w.pairs))

    def test_len(self, small_grid):
        w = random_queries(small_grid, 80, seed=0)
        assert len(w) == len(w.pairs) == len(w.truth)

    def test_deterministic(self, small_grid):
        a = random_queries(small_grid, 50, seed=3)
        b = random_queries(small_grid, 50, seed=3)
        np.testing.assert_array_equal(a.pairs, b.pairs)


class TestScaleGroups:
    def test_groups_ordered_and_bounded(self, medium_grid):
        groups = distance_scale_groups(
            medium_grid, num_groups=4, per_group=50, seed=0
        )
        assert len(groups) >= 2
        bounds = [g.upper_bound for g in groups]
        assert bounds == sorted(bounds)
        for g in groups:
            assert (g.truth <= g.upper_bound + 1e-9).all()

    def test_group_sizes_capped(self, medium_grid):
        groups = distance_scale_groups(
            medium_grid, num_groups=3, per_group=40, seed=0
        )
        for g in groups:
            assert len(g.pairs) <= 40

    def test_truth_exact(self, medium_grid):
        groups = distance_scale_groups(
            medium_grid, num_groups=3, per_group=30, seed=1
        )
        for g in groups:
            np.testing.assert_allclose(
                g.truth, pair_distances(medium_grid, g.pairs)
            )


class TestSpatialWorkload:
    def test_shapes(self, small_grid):
        w = spatial_workload(small_grid, num_sources=10, num_targets=20, seed=0)
        assert w.sources.shape == (10,)
        assert w.targets.shape == (20,)

    def test_unique(self, small_grid):
        w = spatial_workload(small_grid, num_sources=10, num_targets=20, seed=0)
        assert np.unique(w.sources).size == 10
        assert np.unique(w.targets).size == 20

    def test_capped_at_n(self, small_grid):
        w = spatial_workload(
            small_grid, num_sources=10_000, num_targets=10_000, seed=0
        )
        assert w.sources.size == small_grid.n
        assert w.targets.size == small_grid.n
