"""Tests for the serving throughput/latency benchmark."""

import json

import pytest

from repro.bench.serving import _best_seconds, serving_benchmark


def test_best_seconds_returns_minimum_positive():
    assert _best_seconds(lambda: None, repeats=2) > 0


@pytest.mark.slow
def test_fast_benchmark_schema_and_invariants(tmp_path):
    out = tmp_path / "BENCH_serving.json"
    results = serving_benchmark(fast=True, out_path=str(out))

    assert results["fast"] is True
    dist = results["distances"]
    assert dist["speedup"] > 1.0
    assert set(dist) >= {
        "pairs", "loop_queries_per_second", "batch_queries_per_second",
        "speedup", "meets_10x",
    }
    for op in ("knn", "range"):
        assert results[op]["bit_identical"] is True
        assert results[op]["sources"] > 0
    assert 0.0 <= results["hot_row_hit_rate"] <= 1.0
    assert "distances" in results["ops"]
    assert "hot_rows" in results["caches"]
    assert "report" in results

    on_disk = json.loads(out.read_text())
    assert on_disk["graph"]["vertices"] == results["graph"]["vertices"]
