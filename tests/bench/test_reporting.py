"""Tests for text reporting helpers."""

from repro.bench import format_series, format_table, human_bytes


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["bbbb", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "bbbb" in out and "1.5" in out

    def test_column_widths_consistent(self):
        out = format_table(["x"], [["looooong"], ["s"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[0])  # header pads to widest cell

    def test_no_title(self):
        out = format_table(["a"], [[1]])
        assert not out.startswith("\n")


class TestFormatSeries:
    def test_arrows(self):
        out = format_series("s", [1, 2], [0.5, 0.25])
        assert "->" in out
        assert out.splitlines()[0].startswith("s")

    def test_labels(self):
        out = format_series("s", [1], [2], x_label="d", y_label="err")
        assert "(d -> err)" in out


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512.0 B"

    def test_kb(self):
        assert human_bytes(2048) == "2.0 KB"

    def test_mb(self):
        assert human_bytes(3 * 1024**2) == "3.0 MB"

    def test_gb(self):
        assert human_bytes(5 * 1024**3) == "5.0 GB"
