"""Fast-mode integration tests for the design-choice ablations."""

import pytest

from repro.bench import ablations


class TestAblations:
    def test_joint_pass_structure(self):
        out = ablations.ablate_joint_pass(fast=True)
        assert set(out["results"]) == {"with joint pass", "without joint pass"}
        for rec in out["results"].values():
            assert 0 <= rec["mean_rel"] < 1.0
            assert rec["build_s"] > 0
        assert "joint polish" in out["report"]

    def test_optimizer_structure(self):
        out = ablations.ablate_optimizer(fast=True)
        assert set(out["results"]) == {"lazy adam", "sgd (paper)"}
        assert all(v > 0 for v in out["results"].values())

    def test_landmark_strategy_structure(self):
        out = ablations.ablate_landmark_strategy(fast=True)
        assert set(out["results"]) == {"farthest", "random", "degree"}

    def test_scaling_structure(self):
        out = ablations.scaling_experiment(fast=True)
        assert len(out["rows"]) == 2  # fast mode trims to two sizes
        sizes = [r[0] for r in out["rows"]]
        assert sizes == sorted(sizes)
        assert len(out["oracle"]) == len(out["rows"])

    @pytest.mark.parametrize(
        "name",
        ["ablate-joint", "ablate-optimizer", "ablate-landmarks", "scaling"],
    )
    def test_cli_registry_exposes_ablations(self, name):
        from repro.bench.experiments import EXPERIMENTS

        assert name in EXPERIMENTS
