"""Integration tests for the experiment runners (fast mode).

These verify that each table/figure runner executes end to end, returns the
documented structure, and — where cheap enough — that the paper's *shape*
holds (e.g. RNE beats raw geometry on error).
"""

import numpy as np
import pytest

from repro.bench import experiments as ex


@pytest.fixture(scope="module")
def comparison_data():
    return ex.comparison(
        datasets=("BJ-S",),
        methods=("euclidean", "manhattan", "lt", "rne"),
        fast=True,
    )


class TestComparison:
    def test_records_complete(self, comparison_data):
        recs = comparison_data["records"]
        for m in comparison_data["methods"]:
            assert ("BJ-S", m) in recs
            rec = recs[("BJ-S", m)]
            assert rec["query_us"] > 0
            assert rec["index_bytes"] >= 0

    def test_rne_beats_geometry_on_error(self, comparison_data):
        recs = comparison_data["records"]
        assert (
            recs[("BJ-S", "rne")]["mean_rel"]
            < recs[("BJ-S", "euclidean")]["mean_rel"]
        )
        assert (
            recs[("BJ-S", "rne")]["mean_rel"]
            < recs[("BJ-S", "manhattan")]["mean_rel"]
        )

    def test_rne_query_faster_than_lt(self, comparison_data):
        recs = comparison_data["records"]
        assert recs[("BJ-S", "rne")]["query_us"] < recs[("BJ-S", "lt")]["query_us"]

    def test_tables_render(self, comparison_data):
        t3 = ex.table3(data=comparison_data)
        t4 = ex.table4(data=comparison_data)
        assert "Table III" in t3 and "rne" in t3
        assert "Table IV" in t4
        assert "euclidean" not in t4  # no index -> excluded as in the paper


class TestFigureRunners:
    def test_fig9_shape(self):
        out = ex.fig9_lp(ps=(1.0, 3.0), fast=True)
        assert set(out["errors"]) == {1.0, 3.0}
        assert "Fig 9" in out["report"]

    def test_fig10_structure(self):
        out = ex.fig10_dimension(
            dims=(8, 16), sample_multipliers=(4, 16), fast=True
        )
        assert 8 in out["table"] and 16 in out["table"]
        # More samples should not hurt much; check values are sane floats.
        for d in out["table"]:
            for v in out["table"][d].values():
                assert 0 <= v < 1.5

    def test_fig12_moderate_landmarks_best_shape(self):
        out = ex.fig12_landmarks(fast=True)
        assert "Random" in out["best"]
        assert all(len(t) > 0 for t in out["traces"].values())

    def test_fig13_structure(self):
        out = ex.fig13_time_vs_distance(
            methods=("lt", "rne"), fast=True
        )
        assert len(out["bounds"]) >= 1
        for m in ("lt", "rne"):
            assert len(out["times"][m]) == len(out["bounds"])

    def test_fig15_cdf_monotone(self):
        out = ex.fig15_error_cdf(
            methods=("rne", "euclidean"), fast=True
        )
        for curve in out["curves"].values():
            assert (np.diff(curve) >= -1e-12).all()

    def test_fig15_rne_dominates_geometry(self):
        out = ex.fig15_error_cdf(methods=("rne", "euclidean"), fast=True)
        # At every threshold RNE answers at least as many queries accurately.
        assert (out["curves"]["rne"] >= out["curves"]["euclidean"] - 0.05).all()

    def test_fig17_structure(self):
        out = ex.fig17_error_vs_distance(methods=("rne", "lt"), fast=True)
        assert len(out["rel"]["rne"]) == len(out["bounds"])
        assert all(e >= 0 for e in out["abs"]["lt"])


@pytest.mark.slow
class TestSlowRunners:
    def test_fig11(self):
        out = ex.fig11_hier_aft(fast=True)
        finals = out["final"]
        assert set(finals) == {
            "RNE-Naive", "RNE-Hier", "RNE-Naive-AFT", "RNE-Hier-AFT",
        }
        # Hierarchical training should not lose to flat at equal budget.
        assert finals["RNE-Hier"] <= finals["RNE-Naive"] * 1.5

    def test_fig14(self):
        out = ex.fig14_representation(multipliers=(1, 4), fast=True)
        assert "RNE" in out["results"]
        assert "DR-1K" in out["results"]

    def test_fig16(self):
        out = ex.fig16_range_knn(
            tau_fractions=(0.1, 0.3), k_values=(1, 5), fast=True
        )
        # The exact G-tree must score F1 = 1 everywhere.
        assert all(f == pytest.approx(1.0) for f in out["f1"]["G-tree"])
        assert all(f == pytest.approx(1.0) for f in out["knn_f1"]["G-tree"])
        # RNE should beat plain geometry on range F1 on average.
        assert np.mean(out["f1"]["RNE"]) >= np.mean(out["f1"]["Euclidean"]) - 0.05
