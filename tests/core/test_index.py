"""Tests for the embedding tree index (Sec. VI range / kNN queries)."""

import numpy as np
import pytest

from repro.core import EmbeddingTreeIndex, RNEModel
from repro.core.model import lp_distance
from repro.graph import PartitionHierarchy


@pytest.fixture(scope="module")
def setup(small_grid):
    hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(small_grid.n, 6))
    index = EmbeddingTreeIndex(hierarchy, matrix, p=1.0)
    model = RNEModel(matrix, p=1.0)
    return hierarchy, matrix, index, model


class TestConstruction:
    def test_matrix_size_checked(self, small_grid):
        hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        with pytest.raises(ValueError):
            EmbeddingTreeIndex(hierarchy, np.zeros((3, 2)))

    def test_radii_cover_members(self, setup):
        hierarchy, matrix, index, _ = setup
        for node_id, centre in index._centres.items():
            node = hierarchy.nodes[node_id]
            dists = lp_distance(matrix[node.vertices] - centre, 1.0)
            assert dists.max() <= index._radii[node_id] + 1e-9

    def test_index_bytes(self, setup):
        _, _, index, _ = setup
        assert index.index_bytes() > 0


class TestRange:
    def test_matches_bruteforce(self, setup, small_grid, rng):
        _, _, index, model = setup
        targets = rng.choice(small_grid.n, size=30, replace=False)
        for s in [0, 7, 23]:
            dists = model.distances_from(s, targets)
            for tau in [np.percentile(dists, 30), np.percentile(dists, 70)]:
                expected = np.sort(targets[dists <= tau])
                got = index.range_query(s, targets, float(tau))
                np.testing.assert_array_equal(got, expected)

    def test_zero_tau_self_only(self, setup, small_grid):
        _, _, index, _ = setup
        targets = np.arange(small_grid.n)
        got = index.range_query(5, targets, 0.0)
        assert 5 in got  # distance 0 to itself

    def test_negative_tau_rejected(self, setup):
        _, _, index, _ = setup
        with pytest.raises(ValueError):
            index.range_query(0, np.array([1]), -1.0)

    def test_targets_restricted(self, setup, small_grid):
        _, _, index, _ = setup
        got = index.range_query(0, np.array([3, 9]), 1e12)
        assert set(got.tolist()) == {3, 9}


class TestKnn:
    def test_matches_bruteforce(self, setup, small_grid, rng):
        _, _, index, model = setup
        targets = rng.choice(small_grid.n, size=25, replace=False)
        for s in [1, 13, 40]:
            for k in [1, 5, 10]:
                got = index.knn_query(s, targets, k)
                got_d = model.distances_from(s, got)
                brute_d = np.sort(model.distances_from(s, targets))[:k]
                np.testing.assert_allclose(np.sort(got_d), brute_d, atol=1e-9)

    def test_k_exceeds_targets(self, setup):
        _, _, index, _ = setup
        got = index.knn_query(0, np.array([1, 2]), 10)
        assert set(got.tolist()) == {1, 2}

    def test_invalid_k(self, setup):
        _, _, index, _ = setup
        with pytest.raises(ValueError):
            index.knn_query(0, np.array([1]), 0)

    def test_results_unique(self, setup, small_grid, rng):
        _, _, index, _ = setup
        targets = rng.choice(small_grid.n, size=20, replace=False)
        got = index.knn_query(2, targets, 8)
        assert len(set(got.tolist())) == len(got)


class TestPreparedPaths:
    def test_prepared_matches_one_shot(self, setup, small_grid, rng):
        """prepare()-then-query is identical to the one-shot wrappers."""
        _, _, index, _ = setup
        targets = rng.choice(small_grid.n, size=20, replace=False)
        prepared = index.prepare(targets)
        for s in [0, 9, 31]:
            np.testing.assert_array_equal(
                index.knn_prepared(s, prepared, 4),
                index.knn_query(s, targets, 4),
            )
            np.testing.assert_array_equal(
                index.range_prepared(s, prepared, 3.0),
                index.range_query(s, targets, 3.0),
            )

    def test_prepared_reusable_across_queries(self, setup, small_grid):
        _, _, index, _ = setup
        prepared = index.prepare(np.arange(0, small_grid.n, 2))
        first = index.knn_prepared(3, prepared, 5)
        second = index.knn_prepared(3, prepared, 5)
        np.testing.assert_array_equal(first, second)

    def test_duplicate_targets_treated_as_set(self, setup):
        _, _, index, _ = setup
        got = index.knn_query(0, np.array([7, 3, 7, 7, 3]), 10)
        assert got.size == 2  # min(k, #unique targets)
        assert len(set(got.tolist())) == 2

    def test_empty_targets(self, setup):
        _, _, index, _ = setup
        empty = np.array([], dtype=np.int64)
        assert index.knn_query(0, empty, 3).size == 0
        assert index.range_query(0, empty, 5.0).size == 0


class TestOrderingContract:
    def test_knn_sorted_by_distance_then_id(self, setup, small_grid, rng):
        _, _, index, model = setup
        targets = rng.choice(small_grid.n, size=30, replace=False)
        for s in [2, 19]:
            got = index.knn_query(s, targets, 12)
            d = model.distances_from(s, got)
            keys = list(zip(d.tolist(), got.tolist()))
            assert keys == sorted(keys)

    def test_range_returns_sorted_ids(self, setup, small_grid, rng):
        _, _, index, _ = setup
        targets = rng.choice(small_grid.n, size=30, replace=False)
        got = index.range_query(4, targets, 5.0)
        np.testing.assert_array_equal(got, np.sort(got))

    def test_exact_ties_break_by_id(self, small_grid):
        """All-equal embeddings: every distance ties, ids decide the order."""
        hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        index = EmbeddingTreeIndex(hierarchy, np.zeros((small_grid.n, 4)))
        targets = np.array([9, 3, 17, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            index.knn_query(0, targets, 3), [3, 5, 9]
        )
        np.testing.assert_array_equal(
            index.range_query(0, targets, 0.0), [3, 5, 9, 17]
        )
