"""Tests for error metrics."""

import numpy as np
import pytest

from repro.core import (
    absolute_errors,
    bucketed_errors,
    distance_scale_groups,
    error_cdf,
    error_report,
    f1_score,
    relative_errors,
)


class TestBasicErrors:
    def test_absolute(self):
        np.testing.assert_allclose(
            absolute_errors([1.0, 2.0], [1.5, 1.0]), [0.5, 1.0]
        )

    def test_relative(self):
        np.testing.assert_allclose(
            relative_errors([1.0, 3.0], [2.0, 2.0]), [0.5, 0.5]
        )

    def test_report_fields(self):
        rep = error_report([1.0, 2.2], [1.0, 2.0])
        assert rep.mean_abs == pytest.approx(0.1)
        assert rep.mean_rel == pytest.approx(0.05)
        assert rep.max_rel == pytest.approx(0.1)
        assert rep.count == 2

    def test_report_filters_bad_rows(self):
        rep = error_report([1.0, np.inf, 2.0], [1.0, 1.0, 0.0])
        assert rep.count == 1

    def test_report_empty(self):
        rep = error_report([], [])
        assert rep.count == 0
        assert rep.mean_rel == 0.0

    def test_report_str(self):
        assert "e_rel" in str(error_report([1.0], [1.0]))


class TestBuckets:
    def test_bucketed_means(self):
        pred = np.array([1.0, 2.0, 4.0])
        truth = np.array([1.0, 1.0, 2.0])
        ids = np.array([0, 0, 1])
        rel, abs_, counts = bucketed_errors(pred, truth, ids, 3)
        np.testing.assert_allclose(rel, [0.5, 1.0, 0.0])
        np.testing.assert_allclose(abs_, [0.5, 2.0, 0.0])
        np.testing.assert_array_equal(counts, [2, 1, 0])

    def test_empty_bucket_zero(self):
        rel, abs_, counts = bucketed_errors(
            np.array([1.0]), np.array([1.0]), np.array([2]), 4
        )
        assert rel[0] == 0.0 and counts[0] == 0


class TestCdf:
    def test_monotone(self):
        pred = np.array([1.0, 1.1, 1.5, 3.0])
        truth = np.ones(4)
        cdf = error_cdf(pred, truth, np.array([0.05, 0.2, 1.0, 5.0]))
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == 1.0

    def test_values(self):
        pred = np.array([1.0, 2.0])
        truth = np.array([1.0, 1.0])
        cdf = error_cdf(pred, truth, np.array([0.5]))
        assert cdf[0] == 0.5


class TestF1:
    def test_perfect(self):
        assert f1_score({1, 2}, {1, 2}) == 1.0

    def test_both_empty(self):
        assert f1_score(set(), set()) == 1.0

    def test_one_empty(self):
        assert f1_score(set(), {1}) == 0.0
        assert f1_score({1}, set()) == 0.0

    def test_partial(self):
        # precision 0.5, recall 1.0 -> F1 = 2/3
        assert f1_score({1, 2}, {1}) == pytest.approx(2 / 3)

    def test_accepts_arrays(self):
        assert f1_score(np.array([1, 2]), np.array([2, 1])) == 1.0


class TestScaleGroups:
    def test_groups_cover_and_bound(self):
        truth = np.array([1.0, 5.0, 9.0, 2.0])
        ids, edges = distance_scale_groups(truth, 3)
        assert ids.shape == truth.shape
        assert edges.shape == (3,)
        assert edges[-1] == pytest.approx(9.0)
        for d, g in zip(truth, ids):
            assert d <= edges[g] + 1e-9

    def test_ids_within_range(self):
        truth = np.linspace(0.1, 10, 50)
        ids, _ = distance_scale_groups(truth, 5)
        assert ids.min() >= 0 and ids.max() <= 4
