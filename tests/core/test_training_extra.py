"""Additional trainer tests: optimiser internals and schedules."""

import numpy as np
import pytest

from repro.core import (
    DistanceLabeler,
    HierarchicalRNE,
    TrainConfig,
    level_schedule,
    random_pair_samples,
    train_hierarchical,
)
from repro.core.model import lp_distance, lp_gradient
from repro.core.training import _Adam, _adam_lr_scale
from repro.graph import PartitionHierarchy


class TestAdamLrScale:
    def test_scale_tracks_residual(self):
        phi = np.full(100, 1000.0)
        pred = phi + 100.0  # 10% residual
        assert _adam_lr_scale(pred, phi) == pytest.approx(100.0)

    def test_floor_at_one_percent(self):
        phi = np.full(100, 1000.0)
        pred = phi + 0.001
        assert _adam_lr_scale(pred, phi) == pytest.approx(10.0)

    def test_ceiling_at_mean_label(self):
        phi = np.full(100, 1000.0)
        pred = phi * 50  # diverged model
        assert _adam_lr_scale(pred, phi) == pytest.approx(1000.0)

    def test_empty_inputs(self):
        assert _adam_lr_scale(np.empty(0), np.empty(0)) > 0


class TestLazyAdam:
    def test_untouched_rows_never_move(self):
        adam = _Adam((10, 4))
        params = np.ones((10, 4))
        rows = np.array([0, 3])
        grad = np.ones((2, 4))
        for _ in range(20):
            params[rows] += adam.step_rows(rows, grad, lr=0.1)
        untouched = np.delete(params, rows, axis=0)
        np.testing.assert_allclose(untouched, 1.0)

    def test_step_magnitude_bounded_by_lr(self):
        adam = _Adam((4, 3))
        rows = np.arange(4)
        grad = np.full((4, 3), 1000.0)
        update = adam.step_rows(rows, grad, lr=0.05)
        # Bias-corrected first step is exactly -lr * sign(grad).
        np.testing.assert_allclose(np.abs(update), 0.05, rtol=1e-5)

    def test_descends_gradient(self):
        adam = _Adam((2, 2))
        rows = np.array([0, 1])
        update = adam.step_rows(rows, np.array([[1.0, -1.0], [2.0, -0.5]]), 0.1)
        assert (update[:, 0] < 0).all()
        assert (update[:, 1] > 0).all()


class TestSchedules:
    @pytest.mark.parametrize("focus", [0, 2, 4])
    def test_decays_away_from_focus(self, focus):
        lrs = level_schedule(focus, 5)
        for l in range(5):
            assert lrs[l] == pytest.approx(1.0 / (abs(l - focus) + 1))

    def test_all_positive(self):
        assert (level_schedule(1, 6) > 0).all()


class TestFractionalP:
    def test_gradient_finite_at_half(self):
        g = lp_gradient(np.array([0.5, -2.0, 0.0]), 0.5)
        assert np.isfinite(g).all()

    def test_distance_positive(self):
        assert lp_distance(np.array([1.0, 4.0]), 0.5) > 0

    def test_training_with_p_half_does_not_blow_up(self, medium_grid):
        labeler = DistanceLabeler(medium_grid)
        rng = np.random.default_rng(0)
        pairs, phi = random_pair_samples(medium_grid, 2000, labeler, rng)
        hierarchy = PartitionHierarchy(medium_grid, fanout=4, leaf_size=16, seed=0)
        hm = HierarchicalRNE(
            hierarchy, 8, p=0.5,
            init_scale=float(np.mean(phi)) * np.sqrt(np.pi) / 16, seed=0,
        )
        result = train_hierarchical(
            hm, pairs, phi, np.ones(hm.num_levels), TrainConfig(epochs=2), rng
        )
        assert np.isfinite(result.mse).all()
        assert np.isfinite(hm.global_matrix()).all()
