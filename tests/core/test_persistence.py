"""Tests for RNE persistence and the vectorised kNN join."""

import numpy as np
import pytest

from repro.core import RNE, RNEConfig, build_rne
from repro.graph import PartitionHierarchy


@pytest.fixture(scope="module")
def rne(medium_grid):
    config = RNEConfig(
        d=16, lr=0.05, hier_samples_per_level=2000, hier_epochs=2,
        vertex_samples=6000, vertex_epochs=4, num_landmarks=16,
        joint_epochs=1, joint_samples=3000,
        finetune_rounds=1, finetune_samples=1000, validation_size=300, seed=0,
    )
    return build_rne(medium_grid, config)


class TestSaveLoad:
    def test_roundtrip_queries(self, rne, medium_grid, tmp_path, rng):
        path = tmp_path / "rne.npz"
        rne.save(path)
        back = RNE.load(path, medium_grid)
        pairs = rng.integers(medium_grid.n, size=(30, 2))
        np.testing.assert_allclose(back.query_pairs(pairs), rne.query_pairs(pairs))

    def test_roundtrip_index(self, rne, medium_grid, tmp_path, rng):
        path = tmp_path / "rne.npz"
        rne.save(path)
        back = RNE.load(path, medium_grid)
        assert back.index is not None
        targets = rng.choice(medium_grid.n, size=20, replace=False)
        got = back.knn(0, targets, 5)
        expected = rne.knn(0, targets, 5)
        got_d = np.sort(back.model.distances_from(0, got))
        exp_d = np.sort(rne.model.distances_from(0, expected))
        np.testing.assert_allclose(got_d, exp_d)

    def test_flat_model_roundtrip(self, medium_grid, tmp_path):
        config = RNEConfig(
            d=8, hier_samples_per_level=500, hier_epochs=1,
            vertex_samples=1000, vertex_epochs=1, joint_epochs=0,
            active=False, validation_size=100, hierarchical=False, seed=0,
        )
        flat = build_rne(medium_grid, config)
        path = tmp_path / "flat.npz"
        flat.save(path)
        back = RNE.load(path, medium_grid)
        assert back.hierarchy is None
        assert back.query(0, 5) == pytest.approx(flat.query(0, 5))


class TestHierarchyReconstruction:
    def test_from_ancestor_rows_roundtrip(self, medium_grid):
        original = PartitionHierarchy(medium_grid, fanout=4, leaf_size=16, seed=0)
        revived = PartitionHierarchy.from_ancestor_rows(
            medium_grid, original.anc_rows
        )
        revived.validate()
        np.testing.assert_array_equal(revived.anc_rows, original.anc_rows)
        assert revived.level_sizes() == original.level_sizes()

    def test_bad_shape_rejected(self, medium_grid):
        with pytest.raises(ValueError):
            PartitionHierarchy.from_ancestor_rows(
                medium_grid, np.zeros((3, 2), dtype=int)
            )

    def test_bad_vertex_column_rejected(self, medium_grid):
        rows = np.zeros((medium_grid.n, 2), dtype=int)
        with pytest.raises(ValueError):
            PartitionHierarchy.from_ancestor_rows(medium_grid, rows)


class TestKnnJoin:
    def test_matches_per_source_knn(self, rne, medium_grid, rng):
        sources = rng.choice(medium_grid.n, size=8, replace=False)
        targets = rng.choice(medium_grid.n, size=30, replace=False)
        joined = rne.knn_join(sources, targets, 4)
        assert joined.shape == (8, 4)
        for row, s in zip(joined, sources):
            brute = rne.model.knn_brute(int(s), targets, 4)
            row_d = np.sort(rne.model.distances_from(int(s), row))
            brute_d = np.sort(rne.model.distances_from(int(s), brute))
            np.testing.assert_allclose(row_d, brute_d)

    def test_k_capped_at_targets(self, rne, rng, medium_grid):
        targets = rng.choice(medium_grid.n, size=3, replace=False)
        joined = rne.knn_join(np.array([0, 1]), targets, 10)
        assert joined.shape == (2, 3)

    def test_invalid_k(self, rne):
        with pytest.raises(ValueError):
            rne.knn_join(np.array([0]), np.array([1]), 0)

    def test_results_sorted_by_distance(self, rne, medium_grid, rng):
        targets = rng.choice(medium_grid.n, size=25, replace=False)
        joined = rne.knn_join(np.array([0]), targets, 6)
        dists = rne.model.distances_from(0, joined[0])
        assert (np.diff(dists) >= -1e-9).all()
