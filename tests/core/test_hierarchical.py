"""Tests for the hierarchical RNE model."""

import numpy as np
import pytest

from repro.core import HierarchicalRNE
from repro.graph import PartitionHierarchy


@pytest.fixture(scope="module")
def hierarchy(small_grid):
    return PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)


@pytest.fixture()
def hmodel(hierarchy):
    return HierarchicalRNE(hierarchy, d=6, seed=0)


class TestAssembly:
    def test_global_matrix_shape(self, hmodel, small_grid):
        assert hmodel.global_matrix().shape == (small_grid.n, 6)

    def test_global_is_ancestor_sum(self, hmodel, hierarchy):
        v = 11
        expected = np.zeros(6)
        for level in range(hierarchy.num_levels):
            expected += hmodel.locals[level][hierarchy.anc_rows[v, level]]
        np.testing.assert_allclose(hmodel.global_vectors(np.array([v]))[0], expected)

    def test_node_vector_vertex_matches_global(self, hmodel, hierarchy):
        depth = hierarchy.num_subgraph_levels
        v = 5
        node_id = hierarchy.levels[depth][v]
        np.testing.assert_allclose(
            hmodel.node_vector(node_id),
            hmodel.global_vectors(np.array([v]))[0],
        )

    def test_query_consistency_with_model(self, hmodel):
        model = hmodel.to_model()
        for s, t in [(0, 1), (3, 9), (10, 10)]:
            assert hmodel.query(s, t) == pytest.approx(model.query(s, t))

    def test_query_pairs_matches_query(self, hmodel, rng, small_grid):
        pairs = rng.integers(small_grid.n, size=(12, 2))
        batch = hmodel.query_pairs(pairs)
        singles = [hmodel.query(int(s), int(t)) for s, t in pairs]
        np.testing.assert_allclose(batch, singles)

    def test_shared_coarse_shift_invariance(self, hmodel, hierarchy):
        """Shifting a level-0 local embedding must not change distances
        between vertices under that same cell (shared ancestor cancels)."""
        cell = hierarchy.cells(0)[0]
        if cell.size < 2:
            pytest.skip("need a cell with two vertices")
        s, t = int(cell[0]), int(cell[1])
        before = hmodel.query(s, t)
        hmodel.locals[0][0] += 123.0
        assert hmodel.query(s, t) == pytest.approx(before)


class TestInit:
    def test_init_scale_decays_per_level(self, hierarchy):
        hm = HierarchicalRNE(hierarchy, d=8, init_scale=4.0, seed=0)
        stds = [m.std() for m in hm.locals]
        for upper, lower in zip(stds[:-1], stds[1:]):
            assert lower < upper

    def test_deterministic(self, hierarchy):
        a = HierarchicalRNE(hierarchy, d=4, seed=3)
        b = HierarchicalRNE(hierarchy, d=4, seed=3)
        for ma, mb in zip(a.locals, b.locals):
            np.testing.assert_allclose(ma, mb)

    def test_invalid_d(self, hierarchy):
        with pytest.raises(ValueError):
            HierarchicalRNE(hierarchy, d=0)

    def test_level_matrix_shapes(self, hierarchy):
        hm = HierarchicalRNE(hierarchy, d=5, seed=0)
        for level, matrix in enumerate(hm.locals):
            assert matrix.shape == (hierarchy.level_size(level), 5)


class TestClone:
    def test_clone_independent(self, hmodel):
        clone = hmodel.clone()
        clone.locals[0][:] = 0.0
        assert not np.allclose(hmodel.locals[0], 0.0)

    def test_clone_shares_hierarchy(self, hmodel):
        clone = hmodel.clone()
        assert clone.hierarchy is hmodel.hierarchy

    def test_clone_same_queries(self, hmodel):
        clone = hmodel.clone()
        assert clone.query(1, 7) == pytest.approx(hmodel.query(1, 7))


class TestNorms:
    def test_parameter_norm_positive(self, hmodel):
        assert hmodel.parameter_norm() > 0

    def test_index_bytes_is_frozen_size(self, hmodel, small_grid):
        assert hmodel.index_bytes() == small_grid.n * 6 * 8
