"""Tests for the flat RNE model and Lp metric math."""

import numpy as np
import pytest

from repro.core import RNEModel, lp_distance, lp_gradient


class TestLpDistance:
    def test_l1(self):
        assert lp_distance(np.array([1.0, -2.0, 3.0]), 1.0) == pytest.approx(6.0)

    def test_l2(self):
        assert lp_distance(np.array([3.0, 4.0]), 2.0) == pytest.approx(5.0)

    def test_fractional_p(self):
        d = lp_distance(np.array([1.0, 1.0]), 0.5)
        assert d == pytest.approx((1 + 1) ** 2)  # (sum |x|^0.5)^(1/0.5)

    def test_batched(self):
        diffs = np.array([[1.0, 1.0], [2.0, -2.0]])
        np.testing.assert_allclose(lp_distance(diffs, 1.0), [2.0, 4.0])

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            lp_distance(np.array([1.0]), 0.0)

    def test_zero_vector(self):
        assert lp_distance(np.zeros(4), 1.0) == 0.0
        assert lp_distance(np.zeros(4), 3.0) == 0.0


class TestLpGradient:
    def test_l1_is_sign(self):
        g = lp_gradient(np.array([2.0, -3.0, 0.0]), 1.0)
        np.testing.assert_allclose(g, [1.0, -1.0, 0.0])

    @pytest.mark.parametrize("p", [1.5, 2.0, 3.0])
    def test_matches_numerical_gradient(self, p):
        rng = np.random.default_rng(0)
        x = rng.normal(size=6) + 0.5  # keep away from the singularity at 0
        analytic = lp_gradient(x, p)
        eps = 1e-6
        for i in range(6):
            xp = x.copy()
            xp[i] += eps
            xm = x.copy()
            xm[i] -= eps
            num = (lp_distance(xp, p) - lp_distance(xm, p)) / (2 * eps)
            assert analytic[i] == pytest.approx(num, rel=1e-4)

    def test_batched_shape(self):
        g = lp_gradient(np.ones((5, 3)), 2.0)
        assert g.shape == (5, 3)


class TestRNEModel:
    @pytest.fixture()
    def model(self):
        matrix = np.array([[0.0, 0.0], [1.0, 2.0], [3.0, -1.0]])
        return RNEModel(matrix, p=1.0)

    def test_query(self, model):
        assert model.query(0, 1) == pytest.approx(3.0)
        assert model.query(1, 2) == pytest.approx(5.0)

    def test_query_symmetric(self, model):
        assert model.query(0, 2) == model.query(2, 0)

    def test_query_pairs(self, model):
        got = model.query_pairs(np.array([[0, 1], [1, 2], [0, 0]]))
        np.testing.assert_allclose(got, [3.0, 5.0, 0.0])

    def test_distances_from(self, model):
        np.testing.assert_allclose(model.distances_from(0), [0.0, 3.0, 4.0])

    def test_distances_from_targets(self, model):
        np.testing.assert_allclose(
            model.distances_from(0, np.array([2])), [4.0]
        )

    def test_knn_brute(self, model):
        got = model.knn_brute(0, np.array([1, 2]), 1)
        np.testing.assert_array_equal(got, [1])

    def test_triangle_inequality_l1(self):
        rng = np.random.default_rng(1)
        model = RNEModel(rng.normal(size=(10, 5)), p=1.0)
        for _ in range(30):
            a, b, c = rng.integers(10, size=3)
            assert model.query(a, c) <= model.query(a, b) + model.query(b, c) + 1e-9

    def test_random_factory(self):
        m = RNEModel.random(20, 8, seed=0)
        assert m.matrix.shape == (20, 8)
        assert m.n == 20 and m.d == 8

    def test_random_deterministic(self):
        a = RNEModel.random(5, 3, seed=4)
        b = RNEModel.random(5, 3, seed=4)
        np.testing.assert_allclose(a.matrix, b.matrix)

    def test_copy_is_independent(self, model):
        clone = model.copy()
        clone.matrix[0, 0] = 99.0
        assert model.matrix[0, 0] == 0.0

    def test_save_load(self, model, tmp_path):
        path = tmp_path / "m.npz"
        model.save(path)
        back = RNEModel.load(path)
        np.testing.assert_allclose(back.matrix, model.matrix)
        assert back.p == model.p

    def test_index_bytes(self, model):
        assert model.index_bytes() == model.matrix.nbytes

    def test_invalid_matrix(self):
        with pytest.raises(ValueError):
            RNEModel(np.zeros(3))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            RNEModel(np.zeros((2, 2)), p=0.0)
