"""Tests for active fine-tuning."""

import numpy as np
import pytest

from repro.core import (
    DistanceLabeler,
    GridBuckets,
    HierarchicalRNE,
    RNEModel,
    TrainConfig,
    active_finetune,
    landmark_samples,
    train_hierarchical,
    validation_set,
    vertex_only_schedule,
)
from repro.algorithms import select_landmarks
from repro.graph import PartitionHierarchy


@pytest.fixture(scope="module")
def trained(medium_grid):
    """A partially trained hierarchical model plus shared eval artifacts."""
    labeler = DistanceLabeler(medium_grid)
    rng = np.random.default_rng(0)
    val_pairs, val_phi = validation_set(medium_grid, 600, labeler)
    hierarchy = PartitionHierarchy(medium_grid, fanout=4, leaf_size=16, seed=0)
    scale = float(np.mean(val_phi)) * np.sqrt(np.pi) / (2 * 16)
    hmodel = HierarchicalRNE(hierarchy, d=16, init_scale=scale, seed=0)
    landmarks = select_landmarks(medium_grid, 24, seed=0)
    pairs, phi = landmark_samples(medium_grid, landmarks, 8000, labeler, rng)
    train_hierarchical(
        hmodel, pairs, phi, np.ones(hmodel.num_levels),
        TrainConfig(epochs=4), rng,
    )
    buckets = GridBuckets(medium_grid, k=5, seed=0)
    return hmodel, buckets, labeler, val_pairs, val_phi


class TestActiveFinetune:
    def test_error_not_worse(self, trained):
        hmodel, buckets, labeler, val_pairs, val_phi = trained
        model = hmodel.clone()
        result = active_finetune(
            model, buckets, labeler, val_pairs, val_phi,
            rounds=3, samples_per_round=1500, seed=1,
        )
        # keep_best guarantees the final model is no worse than the start.
        final = min(result.mean_rel_errors[-1], min(result.mean_rel_errors))
        assert final <= result.mean_rel_errors[0] + 1e-9

    def test_error_improves(self, trained):
        hmodel, buckets, labeler, val_pairs, val_phi = trained
        model = hmodel.clone()
        result = active_finetune(
            model, buckets, labeler, val_pairs, val_phi,
            rounds=4, samples_per_round=2000, seed=1,
        )
        assert min(result.mean_rel_errors) < result.mean_rel_errors[0]

    def test_trace_lengths(self, trained):
        hmodel, buckets, labeler, val_pairs, val_phi = trained
        result = active_finetune(
            hmodel.clone(), buckets, labeler, val_pairs, val_phi,
            rounds=2, samples_per_round=500, seed=1,
        )
        assert len(result.mean_rel_errors) == 3  # rounds + final measure
        assert len(result.bucket_errors) == 3
        assert result.rounds == 2

    def test_local_mode_runs(self, trained):
        hmodel, buckets, labeler, val_pairs, val_phi = trained
        result = active_finetune(
            hmodel.clone(), buckets, labeler, val_pairs, val_phi,
            rounds=2, samples_per_round=500, mode="local", seed=1,
        )
        assert result.rounds == 2

    def test_flat_model_supported(self, trained, medium_grid):
        _, buckets, labeler, val_pairs, val_phi = trained
        scale = float(np.mean(val_phi)) / 16
        flat = RNEModel.random(medium_grid.n, 16, scale=scale, seed=0)
        result = active_finetune(
            flat, buckets, labeler, val_pairs, val_phi,
            rounds=3, samples_per_round=2000, seed=1,
        )
        assert min(result.mean_rel_errors) < result.mean_rel_errors[0]

    def test_coarse_levels_untouched(self, trained):
        hmodel, buckets, labeler, val_pairs, val_phi = trained
        model = hmodel.clone()
        frozen = [m.copy() for m in model.locals[:-1]]
        active_finetune(
            model, buckets, labeler, val_pairs, val_phi,
            rounds=2, samples_per_round=500, seed=1,
        )
        for before, after in zip(frozen, model.locals[:-1]):
            np.testing.assert_allclose(before, after)
