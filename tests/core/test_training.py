"""Tests for the SGD/Adam embedding trainers."""

import numpy as np
import pytest

from repro.core import (
    DistanceLabeler,
    HierarchicalRNE,
    RNEModel,
    TrainConfig,
    TrainResult,
    level_schedule,
    random_pair_samples,
    train_flat,
    train_hierarchical,
    vertex_only_schedule,
)
from repro.core.training import new_adam_states
from repro.graph import PartitionHierarchy


@pytest.fixture(scope="module")
def labelled(medium_grid):
    labeler = DistanceLabeler(medium_grid)
    rng = np.random.default_rng(0)
    pairs, phi = random_pair_samples(medium_grid, 6000, labeler, rng)
    return pairs, phi


class TestConfig:
    def test_defaults_valid(self):
        TrainConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"optimizer": "sgd2"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)


class TestSchedules:
    def test_level_schedule_peaks_at_focus(self):
        lrs = level_schedule(1, 4)
        assert lrs[1] == max(lrs)
        np.testing.assert_allclose(lrs, [0.5, 1.0, 0.5, 1 / 3])

    def test_vertex_only(self):
        lrs = vertex_only_schedule(4)
        np.testing.assert_allclose(lrs, [0, 0, 0, 1.0])

    def test_alpha0_scales(self):
        np.testing.assert_allclose(
            level_schedule(0, 3, alpha0=2.0), [2.0, 1.0, 2 / 3]
        )


class TestTrainFlat:
    def test_loss_decreases(self, medium_grid, labelled):
        pairs, phi = labelled
        model = RNEModel.random(
            medium_grid.n, 16, scale=float(np.mean(phi)) / 16, seed=0
        )
        result = train_flat(model, pairs, phi, TrainConfig(epochs=6), rng=0)
        assert result.mse[-1] < result.mse[0]
        assert result.mean_rel_error[-1] < result.mean_rel_error[0]

    def test_sgd_also_improves(self, medium_grid, labelled):
        pairs, phi = labelled
        model = RNEModel.random(
            medium_grid.n, 16, scale=float(np.mean(phi)) / 16, seed=0
        )
        # SGD gradient magnitude ~ residual * d, so lr must be ~1/(2d).
        config = TrainConfig(epochs=6, optimizer="sgd", lr=0.002)
        result = train_flat(model, pairs, phi, config, rng=0)
        assert result.mean_rel_error[-1] < result.mean_rel_error[0]

    def test_empty_samples_noop(self, medium_grid):
        model = RNEModel.random(medium_grid.n, 4, seed=0)
        before = model.matrix.copy()
        result = train_flat(
            model, np.empty((0, 2), dtype=int), np.empty(0), TrainConfig(), rng=0
        )
        assert result.mse == []
        np.testing.assert_allclose(model.matrix, before)

    def test_mismatched_lengths(self, medium_grid):
        model = RNEModel.random(medium_grid.n, 4, seed=0)
        with pytest.raises(ValueError):
            train_flat(model, np.zeros((3, 2), dtype=int), np.zeros(2), TrainConfig())

    def test_deterministic(self, medium_grid, labelled):
        pairs, phi = labelled
        runs = []
        for _ in range(2):
            model = RNEModel.random(medium_grid.n, 8, seed=1)
            train_flat(model, pairs, phi, TrainConfig(epochs=2), rng=7)
            runs.append(model.matrix.copy())
        np.testing.assert_allclose(runs[0], runs[1])

    def test_result_extend(self):
        a = TrainResult(mse=[1.0], mean_rel_error=[0.5])
        b = TrainResult(mse=[0.5], mean_rel_error=[0.2])
        a.extend(b)
        assert a.mse == [1.0, 0.5]


class TestTrainHierarchical:
    @pytest.fixture()
    def hmodel(self, medium_grid, labelled):
        hierarchy = PartitionHierarchy(medium_grid, fanout=4, leaf_size=16, seed=0)
        _, phi = labelled
        scale = float(np.mean(phi)) * np.sqrt(np.pi) / (2 * 16)
        return HierarchicalRNE(hierarchy, d=16, init_scale=scale, seed=0)

    def test_loss_decreases(self, hmodel, labelled):
        pairs, phi = labelled
        lrs = np.ones(hmodel.num_levels)
        result = train_hierarchical(
            hmodel, pairs, phi, lrs, TrainConfig(epochs=6), rng=0
        )
        assert result.mean_rel_error[-1] < result.mean_rel_error[0]

    def test_frozen_levels_do_not_move(self, hmodel, labelled):
        pairs, phi = labelled
        frozen = [m.copy() for m in hmodel.locals[:-1]]
        result = train_hierarchical(
            hmodel, pairs, phi, vertex_only_schedule(hmodel.num_levels),
            TrainConfig(epochs=1), rng=0,
        )
        del result
        for before, after in zip(frozen, hmodel.locals[:-1]):
            np.testing.assert_allclose(before, after)
        # vertex level must have moved
        assert not np.allclose(hmodel.locals[-1], 0)

    def test_bad_schedule_shape(self, hmodel, labelled):
        pairs, phi = labelled
        with pytest.raises(ValueError):
            train_hierarchical(hmodel, pairs, phi, [1.0], TrainConfig())

    def test_adam_states_threading(self, hmodel, labelled):
        pairs, phi = labelled
        states = new_adam_states(hmodel)
        lrs = np.ones(hmodel.num_levels)
        train_hierarchical(
            hmodel, pairs[:2000], phi[:2000], lrs, TrainConfig(epochs=1),
            rng=0, adam_states=states,
        )
        assert states[-1].t > 0

    def test_hier_beats_flat_at_equal_budget(self, medium_grid, labelled):
        """The paper's core Fig. 11 claim at miniature scale."""
        pairs, phi = labelled
        d = 16
        scale = float(np.mean(phi)) * np.sqrt(np.pi) / (2 * d)

        flat = RNEModel.random(medium_grid.n, d, scale=scale, seed=2)
        train_flat(flat, pairs, phi, TrainConfig(epochs=5), rng=0)

        hierarchy = PartitionHierarchy(medium_grid, fanout=4, leaf_size=16, seed=0)
        hier = HierarchicalRNE(hierarchy, d=d, init_scale=scale, seed=2)
        train_hierarchical(
            hier, pairs, phi, np.ones(hier.num_levels),
            TrainConfig(epochs=5), rng=0,
        )

        labeler = DistanceLabeler(medium_grid)
        val_pairs, val_phi = random_pair_samples(
            medium_grid, 1500, labeler, np.random.default_rng(99)
        )
        flat_err = np.mean(
            np.abs(flat.query_pairs(val_pairs) - val_phi) / val_phi
        )
        hier_err = np.mean(
            np.abs(hier.query_pairs(val_pairs) - val_phi) / val_phi
        )
        assert hier_err < flat_err
