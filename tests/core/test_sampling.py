"""Tests for training-sample selection and the distance labeler."""

import time

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.core import (
    DistanceLabeler,
    GridBuckets,
    error_based_samples,
    landmark_samples,
    random_pair_samples,
    subgraph_level_samples,
    validation_set,
)
from repro.graph import Graph, PartitionHierarchy
from repro.graph.generators import grid_city


@pytest.fixture()
def split_graph():
    """Two disconnected components with coordinates: most cross pairs are
    unreachable, so naive draw-once sampling would under-deliver badly."""
    edges = [(i, i + 1, 1.0) for i in range(9)]
    edges += [(i, i + 1, 1.0) for i in range(10, 19)]
    coords = np.column_stack([np.arange(20, dtype=float), np.zeros(20)])
    return Graph(20, edges, coords=coords)


class TestDistanceLabeler:
    def test_labels_exact(self, small_grid, rng):
        labeler = DistanceLabeler(small_grid)
        pairs = rng.integers(small_grid.n, size=(30, 2))
        got = labeler.label(pairs)
        np.testing.assert_allclose(got, pair_distances(small_grid, pairs))

    def test_cache_avoids_reruns(self, small_grid):
        labeler = DistanceLabeler(small_grid)
        pairs = np.array([[0, 1], [0, 2], [0, 3]])
        labeler.label(pairs)
        runs = labeler.sssp_runs
        labeler.label(np.array([[0, 5], [0, 6]]))
        assert labeler.sssp_runs == runs  # same source, cached

    def test_cache_eviction(self, small_grid):
        labeler = DistanceLabeler(small_grid, cache_size=2)
        labeler.label(np.array([[0, 1], [1, 2], [2, 3]]))
        assert len(labeler._cache) <= 2

    def test_row(self, small_grid):
        labeler = DistanceLabeler(small_grid)
        row = labeler.row(0)
        assert row.shape == (small_grid.n,)
        assert row[0] == 0.0

    def test_invalid_cache_size(self, small_grid):
        with pytest.raises(ValueError):
            DistanceLabeler(small_grid, cache_size=0)


class TestSubgraphLevelSamples:
    def test_samples_labelled_correctly(self, small_grid, rng):
        hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        labeler = DistanceLabeler(small_grid)
        pairs, phi = subgraph_level_samples(hierarchy, 0, 300, labeler, rng)
        np.testing.assert_allclose(phi, pair_distances(small_grid, pairs))

    def test_no_self_pairs(self, small_grid, rng):
        hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        labeler = DistanceLabeler(small_grid)
        pairs, _ = subgraph_level_samples(hierarchy, 0, 300, labeler, rng)
        assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_cell_pairs_covered(self, small_grid, rng):
        """Uniform cell-pair selection should hit most cell pairs."""
        hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        labeler = DistanceLabeler(small_grid)
        pairs, _ = subgraph_level_samples(hierarchy, 0, 600, labeler, rng)
        labels = hierarchy.vertex_labels(0)
        seen = {(labels[s], labels[t]) for s, t in pairs}
        k = hierarchy.level_size(0)
        assert len(seen) >= k * k * 0.5

    def test_labelling_cost_bounded(self, small_grid, rng):
        hierarchy = PartitionHierarchy(small_grid, fanout=4, leaf_size=8, seed=0)
        labeler = DistanceLabeler(small_grid)
        subgraph_level_samples(
            hierarchy, 0, 2000, labeler, rng, sources_per_cell=3
        )
        assert labeler.sssp_runs <= 3 * hierarchy.level_size(0)


class TestLandmarkSamples:
    def test_sources_are_landmarks(self, small_grid, rng):
        labeler = DistanceLabeler(small_grid)
        landmarks = np.array([3, 17, 40])
        pairs, _ = landmark_samples(small_grid, landmarks, 200, labeler, rng)
        assert set(np.unique(pairs[:, 0])) <= {3, 17, 40}

    def test_labels_exact(self, small_grid, rng):
        labeler = DistanceLabeler(small_grid)
        pairs, phi = landmark_samples(
            small_grid, np.array([0, 1]), 100, labeler, rng
        )
        np.testing.assert_allclose(phi, pair_distances(small_grid, pairs))

    def test_every_landmark_used(self, small_grid, rng):
        labeler = DistanceLabeler(small_grid)
        landmarks = np.array([2, 9, 33, 50])
        pairs, _ = landmark_samples(small_grid, landmarks, 400, labeler, rng)
        assert set(np.unique(pairs[:, 0])) == {2, 9, 33, 50}


class TestRandomPairs:
    def test_source_pool_bounds_cost(self, small_grid, rng):
        labeler = DistanceLabeler(small_grid)
        random_pair_samples(small_grid, 1000, labeler, rng, source_pool_size=10)
        assert labeler.sssp_runs <= 10

    def test_unreachable_pairs_dropped(self, rng):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        labeler = DistanceLabeler(g)
        pairs, phi = random_pair_samples(g, 300, labeler, rng, source_pool_size=4)
        assert np.isfinite(phi).all()

    def test_validation_set_deterministic(self, small_grid):
        labeler = DistanceLabeler(small_grid)
        a = validation_set(small_grid, 100, labeler, seed=5)
        b = validation_set(small_grid, 100, labeler, seed=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])


class TestGridBuckets:
    @pytest.fixture(scope="class")
    def buckets(self, small_grid):
        return GridBuckets(small_grid, k=4, seed=0)

    def test_requires_coords(self):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            GridBuckets(g)

    def test_bucket_count(self, buckets):
        assert buckets.num_buckets == 2 * 4 - 1

    def test_every_vertex_in_a_grid(self, buckets, small_grid):
        assert buckets.vertex_grid.shape == (small_grid.n,)
        total = sum(v.size for v in buckets.grid_vertices.values())
        assert total == small_grid.n

    def test_bucket_weights_cover_all_pairs(self, buckets, small_grid):
        total = sum(buckets.bucket_weight(b) for b in range(buckets.num_buckets))
        assert total == pytest.approx(small_grid.n**2)

    def test_sample_respects_bucket(self, buckets, rng):
        for b in buckets.nonempty_buckets()[:3]:
            pairs = buckets.sample(int(b), 50, rng)
            if pairs.size == 0:
                continue
            got = buckets.bucket_of_pairs(pairs)
            assert (got == b).all()

    def test_bucket_of_pairs_zero_same_grid(self, buckets, small_grid):
        v = 0
        same = np.nonzero(buckets.vertex_grid == buckets.vertex_grid[v])[0]
        if same.size > 1:
            pairs = np.array([[same[0], same[1]]])
            assert buckets.bucket_of_pairs(pairs)[0] == 0

    def test_invalid_k(self, small_grid):
        with pytest.raises(ValueError):
            GridBuckets(small_grid, k=0)


class TestErrorBasedSamples:
    @pytest.fixture(scope="class")
    def setup(self, small_grid):
        buckets = GridBuckets(small_grid, k=4, seed=0)
        labeler = DistanceLabeler(small_grid)
        return buckets, labeler

    def test_local_mode_picks_worst_bucket(self, setup, rng):
        buckets, labeler = setup
        errors = np.zeros(buckets.num_buckets)
        worst = int(buckets.nonempty_buckets()[-1])
        errors[worst] = 1.0
        pairs, _ = error_based_samples(
            buckets, errors, 60, labeler, rng, mode="local"
        )
        got = buckets.bucket_of_pairs(pairs)
        assert (got == worst).all()

    def test_global_mode_spreads(self, setup, rng):
        buckets, labeler = setup
        errors = np.ones(buckets.num_buckets)
        pairs, _ = error_based_samples(
            buckets, errors, 300, labeler, rng, mode="global"
        )
        got = set(buckets.bucket_of_pairs(pairs).tolist())
        assert len(got) >= 3

    def test_all_zero_errors_fall_back_uniform(self, setup, rng):
        buckets, labeler = setup
        errors = np.zeros(buckets.num_buckets)
        pairs, phi = error_based_samples(
            buckets, errors, 100, labeler, rng, mode="global"
        )
        assert len(pairs) > 0
        assert len(pairs) == len(phi)

    def test_invalid_mode(self, setup, rng):
        buckets, labeler = setup
        with pytest.raises(ValueError):
            error_based_samples(
                buckets, np.ones(buckets.num_buckets), 10, labeler, rng, mode="x"
            )

    def test_wrong_error_shape(self, setup, rng):
        buckets, labeler = setup
        with pytest.raises(ValueError):
            error_based_samples(buckets, np.ones(3), 10, labeler, rng)


class TestExactBudgets:
    """Every strategy must deliver exactly ``count`` labelled pairs even on
    a graph with unreachable components (regression: the self-pair and
    finite filters used to silently shrink the returned sample set)."""

    def test_random_pairs_exact(self, split_graph, rng):
        labeler = DistanceLabeler(split_graph)
        pairs, phi = random_pair_samples(split_graph, 400, labeler, rng)
        assert pairs.shape == (400, 2)
        assert phi.shape == (400,)
        assert np.isfinite(phi).all()
        assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_landmark_exact(self, split_graph, rng):
        labeler = DistanceLabeler(split_graph)
        landmarks = np.array([0, 4, 12])
        pairs, phi = landmark_samples(split_graph, landmarks, 350, labeler, rng)
        assert pairs.shape == (350, 2)
        assert np.isfinite(phi).all()

    def test_subgraph_level_exact(self, split_graph, rng):
        hierarchy = PartitionHierarchy(split_graph, fanout=2, leaf_size=4, seed=0)
        labeler = DistanceLabeler(split_graph)
        pairs, phi = subgraph_level_samples(hierarchy, 0, 250, labeler, rng)
        assert pairs.shape == (250, 2)
        assert np.isfinite(phi).all()

    def test_grid_bucket_exact(self, split_graph, rng):
        buckets = GridBuckets(split_graph, k=4, seed=0)
        for b in buckets.nonempty_buckets():
            pairs = buckets.sample(int(b), 120, rng)
            if pairs.shape[0]:  # degenerate buckets may hold nothing valid
                assert pairs.shape == (120, 2)
                assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_error_based_exact(self, split_graph, rng):
        buckets = GridBuckets(split_graph, k=4, seed=0)
        labeler = DistanceLabeler(split_graph)
        pairs, phi = error_based_samples(
            buckets, np.ones(buckets.num_buckets), 300, labeler, rng
        )
        assert pairs.shape == (300, 2)
        assert np.isfinite(phi).all()

    def test_degenerate_bucket_returns_empty(self, rng):
        # One isolated-ish vertex per occupied grid cell: bucket 0 holds
        # only same-grid pairs over single-vertex grids.
        coords = np.array([[0.0, 0.0], [9.0, 9.0]])
        g = Graph(2, [(0, 1, 1.0)], coords=coords)
        buckets = GridBuckets(g, k=2, seed=0)
        assert buckets.sample(0, 50, rng).shape == (0, 2)

    def test_validation_set_exact(self, split_graph):
        labeler = DistanceLabeler(split_graph)
        pairs, phi = validation_set(split_graph, 200, labeler, seed=7)
        assert pairs.shape == (200, 2)
        assert np.isfinite(phi).all()


class TestVectorizedLabelGather:
    def test_many_sources_fast_and_exact(self):
        """~50k pairs over ~1k distinct sources: the vectorised gather must
        stay cheap (the old per-source boolean-mask loop was O(S * P)) and
        bit-identical to per-row lookups."""
        graph = grid_city(36, 36, seed=0)  # ~1.3k vertices
        rng = np.random.default_rng(1)
        sources = rng.choice(graph.n, size=1000, replace=False)
        pairs = np.column_stack(
            [
                sources[rng.integers(sources.size, size=50_000)],
                rng.integers(graph.n, size=50_000),
            ]
        ).astype(np.int64)

        labeler = DistanceLabeler(graph, cache_size=2048)
        labeler.label(pairs[:1])  # exclude any lazy one-time setup
        start = time.perf_counter()
        got = labeler.label(pairs)
        elapsed = time.perf_counter() - start
        # Generous bound: dominated by the ~1k SSSP runs, not the gather.
        assert elapsed < 30.0

        check = np.random.default_rng(2).integers(pairs.shape[0], size=200)
        for i in check:
            s, t = pairs[i]
            assert got[i] == labeler.row(int(s))[int(t)]

    def test_gather_bit_identical_to_pair_distances(self, medium_grid, rng):
        labeler = DistanceLabeler(medium_grid)
        pairs = rng.integers(medium_grid.n, size=(5000, 2)).astype(np.int64)
        np.testing.assert_array_equal(
            labeler.label(pairs), pair_distances(medium_grid, pairs)
        )
