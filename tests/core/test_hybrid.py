"""Tests for the certified hybrid estimator (RNE + landmark bounds)."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.core import HybridEstimator, RNEModel
from repro.core.sampling import DistanceLabeler, random_pair_samples
from repro.core.training import TrainConfig, train_flat


@pytest.fixture(scope="module")
def setup(medium_grid):
    labeler = DistanceLabeler(medium_grid)
    rng = np.random.default_rng(0)
    pairs, phi = random_pair_samples(medium_grid, 8000, labeler, rng)
    model = RNEModel.random(
        medium_grid.n, 16, scale=float(np.mean(phi)) / 16, seed=0
    )
    train_flat(model, pairs, phi, TrainConfig(epochs=6, lr=0.05), rng)
    hybrid = HybridEstimator(model, medium_grid, num_landmarks=12, seed=0)
    return medium_grid, model, hybrid


class TestCertificates:
    def test_bounds_contain_truth(self, setup, rng):
        graph, _, hybrid = setup
        pairs = rng.integers(graph.n, size=(60, 2))
        truth = pair_distances(graph, pairs)
        est, lowers, uppers = hybrid.query_pairs(pairs)
        assert (lowers <= truth + 1e-9).all()
        assert (uppers >= truth - 1e-9).all()
        assert (lowers <= est).all() and (est <= uppers).all()

    def test_clamping_never_hurts(self, setup, rng):
        graph, model, hybrid = setup
        pairs = rng.integers(graph.n, size=(200, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        truth = pair_distances(graph, pairs)
        raw = model.query_pairs(pairs)
        est, _, _ = hybrid.query_pairs(pairs)
        raw_err = np.abs(raw - truth).mean()
        hyb_err = np.abs(est - truth).mean()
        assert hyb_err <= raw_err + 1e-9

    def test_scalar_query(self, setup):
        _, _, hybrid = setup
        cert = hybrid.query(0, 10)
        assert cert.lower <= cert.estimate <= cert.upper
        assert cert.max_relative_error >= 0

    def test_same_vertex(self, setup):
        _, _, hybrid = setup
        cert = hybrid.query(3, 3)
        assert cert.estimate == cert.lower == cert.upper == 0.0
        assert cert.max_relative_error == 0.0

    def test_loose_queries_shrink_with_tolerance(self, setup, rng):
        graph, _, hybrid = setup
        pairs = rng.integers(graph.n, size=(100, 2))
        strict = hybrid.loose_queries(pairs, tolerance=0.01)
        relaxed = hybrid.loose_queries(pairs, tolerance=10.0)
        assert len(relaxed) <= len(strict)

    def test_more_landmarks_tighter(self, setup, rng):
        graph, model, _ = setup
        pairs = rng.integers(graph.n, size=(80, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        small = HybridEstimator(model, graph, num_landmarks=4, seed=1)
        big = HybridEstimator(model, graph, num_landmarks=24, seed=1)
        _, lo_s, up_s = small.query_pairs(pairs)
        _, lo_b, up_b = big.query_pairs(pairs)
        assert (up_b - lo_b).mean() <= (up_s - lo_s).mean() + 1e-9

    def test_index_bytes(self, setup):
        _, model, hybrid = setup
        assert hybrid.index_bytes() > model.index_bytes()
