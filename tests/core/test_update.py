"""Tests for incremental updates after edge-weight changes."""

import numpy as np
import pytest

from repro.core import RNEConfig, build_rne
from repro.core.update import affected_region, update_rne
from repro.graph import Graph, grid_city


@pytest.fixture(scope="module")
def trained():
    graph = grid_city(14, 14, seed=7)
    config = RNEConfig(
        d=16, lr=0.05, hier_samples_per_level=3000, hier_epochs=3,
        vertex_samples=10_000, vertex_epochs=8, num_landmarks=24,
        joint_epochs=2, joint_samples=5000,
        finetune_rounds=2, finetune_samples=2000, validation_size=500, seed=0,
    )
    return graph, build_rne(graph, config)


def _perturb(graph: Graph, factor: float, count: int, seed: int = 0):
    """Scale the weight of ``count`` random edges by ``factor``."""
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    picks = rng.choice(len(edges), size=count, replace=False)
    changed = []
    new_edges = []
    for i, e in enumerate(edges):
        w = e.weight * factor if i in set(picks.tolist()) else e.weight
        new_edges.append((e.u, e.v, w))
        if i in set(picks.tolist()):
            changed.append((e.u, e.v))
    return Graph(graph.n, new_edges, coords=graph.coords), np.array(changed)


class TestAffectedRegion:
    def test_contains_endpoints(self, trained):
        graph, _ = trained
        region = affected_region(graph, np.array([[0, 1]]), hops=0)
        assert set(region.tolist()) == {0, 1}

    def test_grows_with_hops(self, trained):
        graph, _ = trained
        r0 = affected_region(graph, np.array([[0, 1]]), hops=0)
        r2 = affected_region(graph, np.array([[0, 1]]), hops=2)
        assert r2.size > r0.size
        assert set(r0.tolist()) <= set(r2.tolist())


class TestUpdate:
    def test_recovers_after_perturbation(self, trained):
        graph, rne = trained
        new_graph, changed = _perturb(graph, factor=4.0, count=12, seed=1)
        # Branch the model so the shared fixture stays pristine.
        import copy

        hmodel = None
        # Rebuild a hierarchical view from the pipeline's artefacts.
        from repro.core.hierarchical import HierarchicalRNE

        hmodel = HierarchicalRNE(rne.hierarchy, rne.model.d, seed=0)
        # Use the trained global matrix as the vertex level over zeroed
        # coarse levels — equivalent parameterisation of the same model.
        for level in range(hmodel.num_levels - 1):
            hmodel.locals[level][:] = 0.0
        hmodel.locals[-1] = rne.model.matrix.copy()

        result = update_rne(
            hmodel, new_graph, changed, samples=4000, rounds=4, seed=0
        )
        assert result.affected_vertices > 0
        assert result.error_after <= result.error_before + 1e-9
        del copy

    def test_rejects_mismatched_graph(self, trained):
        graph, rne = trained
        from repro.core.hierarchical import HierarchicalRNE

        hmodel = HierarchicalRNE(rne.hierarchy, 4, seed=0)
        small = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        with pytest.raises(ValueError):
            update_rne(hmodel, small, np.array([[0, 1]]))

    def test_noop_when_nothing_changed(self, trained):
        """Updating against the same graph must never hurt (keep-best)."""
        graph, rne = trained
        from repro.core.hierarchical import HierarchicalRNE

        hmodel = HierarchicalRNE(rne.hierarchy, rne.model.d, seed=0)
        for level in range(hmodel.num_levels - 1):
            hmodel.locals[level][:] = 0.0
        hmodel.locals[-1] = rne.model.matrix.copy()
        result = update_rne(
            hmodel, graph, np.array([[0, 1]]), samples=1000, rounds=2, seed=0
        )
        assert result.error_after <= result.error_before * 1.05


def _vertex_view_of(rne):
    """Trainable hierarchical view over the trained global matrix."""
    from repro.core.hierarchical import HierarchicalRNE

    hmodel = HierarchicalRNE(rne.hierarchy, rne.model.d, seed=0)
    for level in range(hmodel.num_levels - 1):
        hmodel.locals[level][:] = 0.0
    hmodel.locals[-1] = rne.model.matrix.copy()
    return hmodel


class TestVectorisedRegion:
    def test_matches_set_based_reference(self, trained):
        graph, _ = trained
        rng = np.random.default_rng(3)
        edges = list(graph.edges())
        picks = rng.choice(len(edges), size=6, replace=False)
        changed = np.array([[edges[i].u, edges[i].v] for i in picks])
        adjacency = {v: set() for v in range(graph.n)}
        for e in edges:
            adjacency[e.u].add(e.v)
            adjacency[e.v].add(e.u)
        for hops in (0, 1, 2, 3):
            frontier = set(changed.ravel().tolist())
            seen = set(frontier)
            for _ in range(hops):
                frontier = {
                    nbr for v in frontier for nbr in adjacency[v]
                } - seen
                seen |= frontier
            region = affected_region(graph, changed, hops=hops)
            assert region.tolist() == sorted(seen)
            assert region.dtype == np.int64

    def test_duplicate_changed_edges_are_harmless(self, trained):
        graph, _ = trained
        once = affected_region(graph, np.array([[0, 1]]), hops=2)
        twice = affected_region(graph, np.array([[0, 1], [1, 0], [0, 1]]), hops=2)
        assert np.array_equal(once, twice)


class TestSamplingBudget:
    def test_rounds_hit_exact_sample_counts(self, trained):
        graph, rne = trained
        new_graph, changed = _perturb(graph, factor=4.0, count=8, seed=2)
        result = update_rne(
            _vertex_view_of(rne), new_graph, changed,
            samples=700, rounds=3, validation_size=200, seed=1,
        )
        assert result.rounds_run == 3
        assert result.samples_per_round == [700, 700, 700]


class TestSeedThreading:
    def test_same_seed_bit_identical(self, trained):
        graph, rne = trained
        new_graph, changed = _perturb(graph, factor=4.0, count=8, seed=2)
        results = [
            update_rne(
                _vertex_view_of(rne), new_graph, changed,
                samples=800, rounds=2, validation_size=200, seed=5,
            )
            for _ in range(2)
        ]
        assert results[0].round_errors == results[1].round_errors
        assert results[0].error_before == results[1].error_before

    def test_different_seeds_differ(self, trained):
        """The validation RNG derives from ``seed`` (no hard-coded stream):
        different seeds must produce different validation sets and hence
        different measured errors."""
        graph, rne = trained
        new_graph, changed = _perturb(graph, factor=4.0, count=8, seed=2)
        errs = {
            update_rne(
                _vertex_view_of(rne), new_graph, changed,
                samples=800, rounds=1, validation_size=200, seed=s,
            ).error_before
            for s in (0, 1, 2)
        }
        assert len(errs) == 3
