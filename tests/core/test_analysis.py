"""Tests for embedding diagnostics — the measurable Sec. IV claims."""

import numpy as np
import pytest

from repro.core import (
    DistanceLabeler,
    HierarchicalRNE,
    TrainConfig,
    collapse_fraction,
    landmark_samples,
    layout_correlation,
    level_contributions,
    level_schedule,
    norm_profile,
    random_pair_samples,
    subgraph_level_samples,
    train_hierarchical,
)
from repro.algorithms import select_landmarks
from repro.core.training import new_adam_states
from repro.graph import PartitionHierarchy


@pytest.fixture(scope="module")
def trained_hier(medium_grid):
    """A hierarchical model trained through phases 1+2."""
    labeler = DistanceLabeler(medium_grid)
    rng = np.random.default_rng(0)
    probe = random_pair_samples(medium_grid, 300, labeler, rng)[1]
    d = 16
    scale = float(np.mean(probe)) * np.sqrt(np.pi) / (2 * d)
    hierarchy = PartitionHierarchy(medium_grid, fanout=4, leaf_size=16, seed=0)
    hm = HierarchicalRNE(hierarchy, d, init_scale=scale, seed=0)
    adam = new_adam_states(hm)
    for focus in range(hierarchy.num_subgraph_levels):
        pairs, phi = subgraph_level_samples(hierarchy, focus, 4000, labeler, rng)
        train_hierarchical(
            hm, pairs, phi, level_schedule(focus, hm.num_levels),
            TrainConfig(epochs=3, lr=0.05), rng, adam_states=adam,
        )
    landmarks = select_landmarks(medium_grid, 24, seed=1)
    pairs, phi = landmark_samples(medium_grid, landmarks, 8000, labeler, rng)
    from repro.core import vertex_only_schedule

    train_hierarchical(
        hm, pairs, phi, vertex_only_schedule(hm.num_levels),
        TrainConfig(epochs=4, lr=0.05), rng, adam_states=adam,
    )
    return medium_grid, hm


class TestNormProfile:
    def test_norms_decay_down_levels(self, trained_hier):
        """Paper Sec. IV-A: higher-level norms dominate lower ones."""
        _, hm = trained_hier
        profile = norm_profile(hm)
        # Allow the chain-padded middle levels some slack; the endpoints
        # of the hierarchy must be ordered.
        assert profile.level_mean_norms[0] > profile.level_mean_norms[-1]

    def test_parameter_sharing(self, trained_hier):
        """Paper Sec. IV-A: sum of local norms < flat-equivalent norm."""
        _, hm = trained_hier
        profile = norm_profile(hm)
        assert profile.sharing_ratio < 1.0

    def test_profile_fields(self, trained_hier):
        _, hm = trained_hier
        profile = norm_profile(hm)
        assert len(profile.level_mean_norms) == hm.num_levels
        assert profile.total_parameter_norm > 0


class TestLevelContributions:
    def test_fractions_sum_to_one(self, trained_hier, rng):
        graph, hm = trained_hier
        pairs = rng.integers(graph.n, size=(100, 2))
        contribs = level_contributions(hm, pairs)
        assert contribs.shape == (hm.num_levels,)
        assert contribs.sum() == pytest.approx(1.0, abs=1e-6)

    def test_coarse_dominates_cross_region_pairs(self, trained_hier):
        """Pairs in different top cells lean on the coarse levels."""
        graph, hm = trained_hier
        labels = hm.hierarchy.vertex_labels(0)
        cross, same = [], []
        rng = np.random.default_rng(2)
        while len(cross) < 50 or len(same) < 50:
            s, t = rng.integers(graph.n, size=2)
            if s == t:
                continue
            (cross if labels[s] != labels[t] else same).append((s, t))
        c_cross = level_contributions(hm, np.array(cross))
        c_same = level_contributions(hm, np.array(same))
        assert c_cross[0] > c_same[0]  # level-0 share higher across regions


class TestLayoutStats:
    def test_collapse_zero_for_spread_points(self, rng):
        matrix = rng.uniform(0, 100, size=(200, 2))
        assert collapse_fraction(matrix, threshold=0.001) <= 0.01

    def test_collapse_one_for_identical_points(self):
        matrix = np.ones((50, 3))
        assert collapse_fraction(matrix) == pytest.approx(0.0)  # no spread -> mean 0

    def test_collapse_detects_clumps(self, rng):
        spread = rng.uniform(0, 100, size=(100, 2))
        clumped = np.vstack([spread, np.zeros((100, 2))])
        assert collapse_fraction(clumped) > collapse_fraction(spread)

    def test_layout_correlation_high_for_trained(self, trained_hier):
        graph, hm = trained_hier
        corr = layout_correlation(hm.global_matrix(), graph.coords)
        assert corr > 0.8  # trained embedding preserves the city layout

    def test_layout_correlation_low_for_random(self, trained_hier, rng):
        graph, _ = trained_hier
        random_matrix = rng.normal(size=(graph.n, 8))
        corr = layout_correlation(random_matrix, graph.coords)
        assert abs(corr) < 0.4
