"""End-to-end tests for the RNE construction pipeline (Algorithm 1)."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.core import RNEConfig, build_rne
from repro.graph import Graph, grid_city


FAST = RNEConfig(
    d=16,
    lr=0.05,
    hier_samples_per_level=3000,
    hier_epochs=3,
    vertex_samples=10_000,
    vertex_epochs=8,
    num_landmarks=24,
    finetune_rounds=3,
    finetune_samples=2000,
    validation_size=500,
    seed=0,
)


@pytest.fixture(scope="module")
def rne(medium_grid):
    return build_rne(medium_grid, FAST)


class TestBuild:
    def test_reasonable_error(self, rne):
        # Tiny config on a tiny graph: just require single-digit % error.
        assert rne.history.phase_errors["final"] < 0.10

    def test_phases_recorded(self, rne):
        keys = rne.history.phase_errors
        assert "after_hierarchy" in keys
        assert "after_vertex" in keys
        assert "final" in keys

    def test_finetune_ran(self, rne):
        assert rne.history.finetune is not None

    def test_build_time_recorded(self, rne):
        assert rne.history.build_seconds > 0

    def test_default_config(self, small_grid):
        # build_rne() must work with no config at all.
        result = build_rne(
            small_grid,
            RNEConfig(
                d=8, hier_samples_per_level=1000, hier_epochs=1,
                vertex_samples=2000, vertex_epochs=2, num_landmarks=8,
                finetune_rounds=1, finetune_samples=500, validation_size=200,
            ),
        )
        assert result.model.n == small_grid.n


class TestQueries:
    def test_query_matches_model(self, rne):
        assert rne.query(0, 5) == pytest.approx(rne.model.query(0, 5))

    def test_query_pairs_vectorised(self, rne, rng, medium_grid):
        pairs = rng.integers(medium_grid.n, size=(10, 2))
        batch = rne.query_pairs(pairs)
        singles = [rne.query(int(s), int(t)) for s, t in pairs]
        np.testing.assert_allclose(batch, singles)

    def test_query_accuracy_spot_check(self, rne, medium_grid, rng):
        pairs = rng.integers(medium_grid.n, size=(50, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        truth = pair_distances(medium_grid, pairs)
        pred = rne.query_pairs(pairs)
        rel = np.abs(pred - truth) / truth
        assert np.median(rel) < 0.12

    def test_knn_against_embedding_bruteforce(self, rne, medium_grid, rng):
        targets = rng.choice(medium_grid.n, size=25, replace=False)
        got = rne.knn(0, targets, 5)
        brute = rne.model.knn_brute(0, targets, 5)
        got_d = np.sort(rne.model.distances_from(0, got))
        brute_d = np.sort(rne.model.distances_from(0, brute))
        np.testing.assert_allclose(got_d, brute_d)

    def test_range_query(self, rne, medium_grid, rng):
        targets = rng.choice(medium_grid.n, size=25, replace=False)
        dists = rne.model.distances_from(0, targets)
        tau = float(np.median(dists))
        got = rne.range_query(0, targets, tau)
        expected = np.sort(targets[dists <= tau])
        np.testing.assert_array_equal(got, expected)

    def test_index_bytes(self, rne, medium_grid):
        assert rne.index_bytes() >= medium_grid.n * 16 * 8


class TestNaiveArm:
    def test_flat_pipeline(self, medium_grid):
        config = RNEConfig(
            d=16, hier_samples_per_level=3000, hier_epochs=2,
            vertex_samples=8000, vertex_epochs=4,
            finetune_rounds=2, finetune_samples=1500,
            validation_size=500, hierarchical=False, seed=0,
        )
        rne = build_rne(medium_grid, config)
        assert rne.hierarchy is None
        assert rne.index is None
        assert "after_flat" in rne.history.phase_errors
        assert rne.history.phase_errors["final"] < 0.5

    def test_flat_knn_fallback(self, medium_grid):
        config = RNEConfig(
            d=8, hier_samples_per_level=500, hier_epochs=1,
            vertex_samples=1000, vertex_epochs=1, active=False,
            validation_size=100, hierarchical=False, seed=0,
        )
        rne = build_rne(medium_grid, config)
        got = rne.knn(0, np.arange(20), 3)
        assert got.shape == (3,)


class TestNoCoords:
    def test_finetune_skipped_gracefully(self):
        edges = [(i, i + 1, 1.0) for i in range(30)]
        g = Graph(31, edges)  # no coordinates
        config = RNEConfig(
            d=8, hier_samples_per_level=500, hier_epochs=1,
            vertex_samples=1000, vertex_epochs=2, num_landmarks=8,
            validation_size=100, seed=0,
        )
        rne = build_rne(g, config)
        assert rne.history.finetune is None
        assert any("fine-tuning skipped" in note for note in rne.history.notes)
