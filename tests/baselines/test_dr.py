"""Tests for the DeepWalk-Regression (DR) baseline."""

import numpy as np
import pytest

from repro.baselines import DeepWalk, DeepWalkRegression
from repro.core import DistanceLabeler, random_pair_samples
from repro.graph import Graph, grid_city


@pytest.fixture(scope="module")
def fitted():
    g = grid_city(10, 10, seed=1)
    dw = DeepWalk(
        g, d=16, num_walks=4, walk_length=15, window=2, epochs=2, seed=0
    )
    dr = DeepWalkRegression(g, "10K", deepwalk=dw, seed=0)
    labeler = DistanceLabeler(g)
    rng = np.random.default_rng(0)
    pairs, phi = random_pair_samples(g, 6000, labeler, rng)
    dr.fit(pairs, phi, epochs=40, seed=0)
    return g, dr, labeler


class TestDR:
    def test_requires_coords(self):
        with pytest.raises(ValueError):
            DeepWalkRegression(Graph(2, [(0, 1, 1.0)]))

    def test_invalid_size(self, small_grid):
        with pytest.raises(ValueError):
            DeepWalkRegression(small_grid, "5K")

    def test_parameter_buckets_ordered(self, small_grid):
        dw = DeepWalk(small_grid, d=16, num_walks=2, walk_length=8, epochs=1, seed=0)
        sizes = [
            DeepWalkRegression(small_grid, s, deepwalk=dw).num_parameters
            for s in ("1K", "10K", "100K")
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_predictions_nonnegative(self, fitted, rng):
        g, dr, _ = fitted
        pairs = rng.integers(g.n, size=(50, 2))
        assert (dr.query_pairs(pairs) >= 0).all()

    def test_beats_guessing_mean(self, fitted, rng):
        g, dr, labeler = fitted
        pairs, phi = random_pair_samples(
            g, 600, labeler, np.random.default_rng(42)
        )
        pred = dr.query_pairs(pairs)
        dr_err = np.abs(pred - phi).mean()
        mean_err = np.abs(phi.mean() - phi).mean()
        assert dr_err < mean_err

    def test_query_matches_pairs(self, fitted):
        _, dr, _ = fitted
        single = dr.query(0, 5)
        batch = dr.query_pairs(np.array([[0, 5]]))[0]
        assert single == pytest.approx(batch)

    def test_index_bytes_positive(self, fitted):
        _, dr, _ = fitted
        assert dr.index_bytes() > 0
