"""Tests for the numpy MLP regressor."""

import numpy as np
import pytest

from repro.baselines import MLPRegressor


class TestStructure:
    def test_parameter_count_linear(self):
        mlp = MLPRegressor(4, hidden=())
        assert mlp.num_parameters == 4 + 1  # weights + bias

    def test_parameter_count_hidden(self):
        mlp = MLPRegressor(4, hidden=(8,))
        assert mlp.num_parameters == 4 * 8 + 8 + 8 * 1 + 1

    def test_predict_shape(self):
        mlp = MLPRegressor(3, hidden=(5,), seed=0)
        out = mlp.predict(np.zeros((7, 3)))
        assert out.shape == (7,)

    def test_deterministic_init(self):
        a = MLPRegressor(3, hidden=(4,), seed=2)
        b = MLPRegressor(3, hidden=(4,), seed=2)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_allclose(wa, wb)


class TestTraining:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(800, 3))
        y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5
        mlp = MLPRegressor(3, hidden=(16,), seed=0)
        losses = mlp.fit(x, y, epochs=60, lr=5e-3, seed=0)
        assert losses[-1] < losses[0] * 0.1
        pred = mlp.predict(x)
        assert np.mean(np.abs(pred - y)) < 0.3 * np.mean(np.abs(y))

    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(1000, 2))
        y = np.abs(x[:, 0]) + np.abs(x[:, 1])  # L1-ish target
        mlp = MLPRegressor(2, hidden=(32, 16), seed=0)
        mlp.fit(x, y, epochs=80, lr=5e-3, seed=0)
        pred = mlp.predict(x)
        rel = np.abs(pred - y).mean() / y.mean()
        assert rel < 0.2

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(400, 4))
        y = x.sum(axis=1)
        mlp = MLPRegressor(4, hidden=(8,), seed=0)
        losses = mlp.fit(x, y, epochs=20, seed=0)
        assert losses[-1] < losses[0]

    def test_target_scale_invariance(self):
        """Normalisation means the same lr works for huge targets."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(500, 2))
        y = (x[:, 0] + x[:, 1]) * 1e6
        mlp = MLPRegressor(2, hidden=(8,), seed=0)
        losses = mlp.fit(x, y, epochs=60, lr=5e-3, seed=0)
        assert losses[-1] < losses[0] * 0.5
        pred = mlp.predict(x)
        assert np.mean(np.abs(pred - y)) < 0.5 * np.mean(np.abs(y))
