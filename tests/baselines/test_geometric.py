"""Tests for Euclidean / Manhattan geometric baselines."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.baselines import GeometricEstimator
from repro.graph import Graph


class TestEstimates:
    def test_requires_coords(self):
        with pytest.raises(ValueError):
            GeometricEstimator(Graph(2, [(0, 1, 1.0)]))

    def test_invalid_metric(self, small_grid):
        with pytest.raises(ValueError):
            GeometricEstimator(small_grid, "cosine")

    def test_euclidean_values(self, line_graph):
        est = GeometricEstimator(line_graph, "euclidean")
        assert est.query(0, 4) == pytest.approx(4.0)

    def test_manhattan_values(self, tiny_graph):
        est = GeometricEstimator(tiny_graph, "manhattan")
        # coords v1=(0,4), v13=(9,1): |9-0| + |1-4| = 12
        assert est.query(0, 12) == pytest.approx(12.0)

    def test_batch_matches_scalar(self, small_grid, rng):
        est = GeometricEstimator(small_grid, "euclidean")
        pairs = rng.integers(small_grid.n, size=(15, 2))
        batch = est.query_pairs(pairs)
        singles = [est.query(int(s), int(t)) for s, t in pairs]
        np.testing.assert_allclose(batch, singles)

    def test_euclidean_lower_bounds_network(self, small_grid, rng):
        # grid_city weights >= straight-line, so Euclidean underestimates.
        est = GeometricEstimator(small_grid, "euclidean")
        pairs = rng.integers(small_grid.n, size=(40, 2))
        truth = pair_distances(small_grid, pairs)
        assert (est.query_pairs(pairs) <= truth + 1e-9).all()

    def test_calibration_reduces_error(self, small_grid, rng):
        est = GeometricEstimator(small_grid, "euclidean")
        pairs = rng.integers(small_grid.n, size=(200, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        truth = pair_distances(small_grid, pairs)
        raw_err = np.abs(est.query_pairs(pairs) - truth).mean()
        est.calibrate(pairs, truth)
        cal_err = np.abs(est.query_pairs(pairs) - truth).mean()
        assert cal_err < raw_err
        assert est.scale > 1.0  # roads are longer than straight lines


class TestSpatialQueries:
    def test_knn_matches_bruteforce(self, small_grid, rng):
        est = GeometricEstimator(small_grid, "euclidean")
        targets = rng.choice(small_grid.n, size=20, replace=False)
        got = est.knn(0, targets, 5)
        dists = est.query_pairs(
            np.column_stack([np.zeros(20, dtype=int), targets])
        )
        expected = targets[np.argsort(dists, kind="stable")[:5]]
        np.testing.assert_allclose(
            np.sort(est.query_pairs(np.column_stack([np.zeros(5, int), got]))),
            np.sort(dists[np.argsort(dists)][:5]),
        )
        assert len(got) == 5
        del expected

    def test_knn_k_exceeds_targets(self, small_grid):
        est = GeometricEstimator(small_grid, "euclidean")
        got = est.knn(0, np.array([1, 2]), 5)
        assert set(got.tolist()) == {1, 2}

    def test_range_matches_bruteforce(self, small_grid, rng):
        for metric in ("euclidean", "manhattan"):
            est = GeometricEstimator(small_grid, metric)
            targets = rng.choice(small_grid.n, size=25, replace=False)
            dists = est.query_pairs(
                np.column_stack([np.zeros(25, dtype=int), targets])
            )
            tau = float(np.median(dists))
            expected = np.sort(targets[dists <= tau])
            got = est.range_query(0, targets, tau)
            np.testing.assert_array_equal(got, expected)

    def test_range_respects_scale(self, small_grid, rng):
        est = GeometricEstimator(small_grid, "euclidean", scale=2.0)
        targets = rng.choice(small_grid.n, size=25, replace=False)
        dists = est.query_pairs(
            np.column_stack([np.zeros(25, dtype=int), targets])
        )
        tau = float(np.median(dists))
        got = est.range_query(0, targets, tau)
        expected = np.sort(targets[dists <= tau])
        np.testing.assert_array_equal(got, expected)
