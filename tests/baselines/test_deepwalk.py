"""Tests for the from-scratch DeepWalk implementation."""

import numpy as np
import pytest

from repro.baselines import DeepWalk, random_walks
from repro.graph import Graph, grid_city


class TestRandomWalks:
    def test_shape(self, small_grid):
        walks = random_walks(small_grid, num_walks=2, walk_length=10, rng=0)
        assert walks.shape == (2 * small_grid.n, 10)

    def test_walks_follow_edges(self, small_grid):
        walks = random_walks(small_grid, num_walks=1, walk_length=8, rng=0)
        for walk in walks[:20]:
            for a, b in zip(walk[:-1], walk[1:]):
                assert a == b or small_grid.has_edge(int(a), int(b))

    def test_every_vertex_starts_walks(self, small_grid):
        walks = random_walks(small_grid, num_walks=1, walk_length=5, rng=0)
        assert set(walks[:, 0].tolist()) == set(range(small_grid.n))

    def test_isolated_vertex_padding(self):
        g = Graph(3, [(0, 1, 1.0)])  # vertex 2 isolated
        walks = random_walks(g, num_walks=1, walk_length=5, rng=0)
        iso = walks[walks[:, 0] == 2][0]
        assert (iso == 2).all()

    def test_deterministic(self, small_grid):
        a = random_walks(small_grid, num_walks=1, walk_length=6, rng=3)
        b = random_walks(small_grid, num_walks=1, walk_length=6, rng=3)
        np.testing.assert_array_equal(a, b)


class TestDeepWalk:
    @pytest.fixture(scope="class")
    def dw(self):
        # Big enough that random walks don't mix over the whole graph
        # (on tiny graphs every vertex co-occurs with every other and the
        # similarity signal degenerates).
        g = grid_city(16, 16, seed=0)
        return g, DeepWalk(
            g, d=32, num_walks=6, walk_length=20, window=2, negatives=8,
            epochs=3, seed=0,
        )

    def test_vectors_shape(self, dw):
        g, model = dw
        assert model.vectors.shape == (g.n, 32)

    def test_vectors_finite(self, dw):
        _, model = dw
        assert np.isfinite(model.vectors).all()

    def test_neighbors_more_similar_than_distant(self, dw):
        """The core DeepWalk property: co-occurring nodes are similar."""
        g, model = dw
        rng = np.random.default_rng(1)
        neighbor_sims = []
        far_sims = []
        for _ in range(60):
            u = int(rng.integers(g.n))
            nbrs = g.neighbors(u)
            v = int(nbrs[rng.integers(nbrs.size)])
            w = int(rng.integers(g.n))
            neighbor_sims.append(model.similarity(u, v))
            far_sims.append(model.similarity(u, w))
        assert np.mean(neighbor_sims) > np.mean(far_sims)

    def test_similarity_bounded(self, dw):
        _, model = dw
        for u, v in [(0, 1), (5, 30), (2, 2)]:
            assert -1.0 - 1e-9 <= model.similarity(u, v) <= 1.0 + 1e-9

    def test_context_pairs_window(self):
        walks = np.array([[0, 1, 2, 3]])
        pairs = DeepWalk._context_pairs(walks, window=1)
        as_set = {tuple(p) for p in pairs}
        assert as_set == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}
