"""Tests for the G-tree / V-tree partition index (must be exact)."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.algorithms.knn import knn_true, range_true
from repro.baselines import GTreeIndex
from repro.graph import grid_city


@pytest.fixture(scope="module")
def setup():
    g = grid_city(9, 9, seed=8)
    return g, GTreeIndex(g, num_cells=6, seed=0)


class TestPointQueries:
    def test_exact_on_random_pairs(self, setup, rng):
        g, idx = setup
        pairs = rng.integers(g.n, size=(80, 2))
        truth = pair_distances(g, pairs)
        got = np.array([idx.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_same_vertex(self, setup):
        _, idx = setup
        assert idx.query(3, 3) == 0.0

    def test_same_leaf_pairs_exact(self, setup):
        g, idx = setup
        # Pick two vertices in the same cell explicitly.
        cell = idx.cells[0]
        if cell.size >= 2:
            s, t = int(cell[0]), int(cell[1])
            assert idx.query(s, t) == pytest.approx(
                pair_distances(g, np.array([[s, t]]))[0]
            )

    def test_invalid_cells(self, setup):
        g, _ = setup
        with pytest.raises(ValueError):
            GTreeIndex(g, num_cells=1)


class TestKnn:
    def test_matches_exact_knn(self, setup, rng):
        g, idx = setup
        targets = rng.choice(g.n, size=25, replace=False)
        for s in [0, 11, 47]:
            for k in [1, 3, 8]:
                got = idx.knn(s, targets, k)
                expected = knn_true(g, s, targets, k)
                # Compare by distance (ties may order differently).
                got_d = pair_distances(
                    g, np.column_stack([np.full(len(got), s), got])
                )
                exp_d = pair_distances(
                    g, np.column_stack([np.full(len(expected), s), expected])
                )
                np.testing.assert_allclose(np.sort(got_d), np.sort(exp_d))

    def test_invalid_k(self, setup):
        _, idx = setup
        with pytest.raises(ValueError):
            idx.knn(0, np.array([1]), 0)

    def test_k_exceeds_targets(self, setup):
        _, idx = setup
        got = idx.knn(0, np.array([1, 2]), 9)
        assert set(got.tolist()) == {1, 2}


class TestRange:
    def test_matches_exact_range(self, setup, rng):
        g, idx = setup
        targets = rng.choice(g.n, size=30, replace=False)
        sample_d = pair_distances(
            g, np.column_stack([np.zeros(30, dtype=int), targets])
        )
        for frac in (0.3, 0.6):
            tau = float(np.quantile(sample_d, frac))
            got = idx.range_query(0, targets, tau)
            expected = range_true(g, 0, targets, tau)
            np.testing.assert_array_equal(got, expected)

    def test_negative_tau(self, setup):
        _, idx = setup
        with pytest.raises(ValueError):
            idx.range_query(0, np.array([1]), -0.5)

    def test_index_bytes(self, setup):
        _, idx = setup
        assert idx.index_bytes() > 0


class TestStructure:
    def test_borders_have_cross_edges(self, setup):
        g, idx = setup
        us, vs, _ = g.edge_array()
        cross = idx.labels[us] != idx.labels[vs]
        expected_borders = set(np.concatenate([us[cross], vs[cross]]).tolist())
        assert set(idx.all_borders.tolist()) == expected_borders

    def test_b2b_diagonal_zero(self, setup):
        _, idx = setup
        np.testing.assert_allclose(np.diag(idx.b2b), 0.0)

    def test_b2b_symmetric(self, setup):
        _, idx = setup
        np.testing.assert_allclose(idx.b2b, idx.b2b.T)
