"""Tests for the multi-level G-tree (must be exact at every depth)."""

import numpy as np
import pytest

from repro.algorithms import pair_distances
from repro.baselines import GTree
from repro.graph import Graph, grid_city, multi_city


class TestExactness:
    @pytest.mark.parametrize("leaf_size", [8, 16, 48])
    def test_exact_at_various_depths(self, leaf_size):
        g = grid_city(11, 11, seed=6)
        gt = GTree(g, fanout=4, leaf_size=leaf_size, seed=0)
        rng = np.random.default_rng(0)
        pairs = rng.integers(g.n, size=(120, 2))
        truth = pair_distances(g, pairs)
        got = np.array([gt.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_exact_on_multi_city(self):
        """Highway topologies stress the cross-region assembly."""
        g = multi_city(3, 6, 6, seed=2)
        gt = GTree(g, fanout=4, leaf_size=12, seed=0)
        rng = np.random.default_rng(1)
        pairs = rng.integers(g.n, size=(100, 2))
        truth = pair_distances(g, pairs)
        got = np.array([gt.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)

    def test_same_vertex(self):
        g = grid_city(6, 6, seed=0)
        gt = GTree(g, leaf_size=8, seed=0)
        assert gt.query(3, 3) == 0.0

    def test_same_leaf_pairs(self):
        g = grid_city(8, 8, seed=1)
        gt = GTree(g, leaf_size=16, seed=0)
        leaf = next(iter(gt._leaf_mat))
        verts = gt.hierarchy.nodes[leaf].vertices
        if verts.size >= 2:
            s, t = int(verts[0]), int(verts[1])
            expected = pair_distances(g, np.array([[s, t]]))[0]
            assert gt.query(s, t) == pytest.approx(expected)

    def test_deep_tree_exact(self):
        """Force 3+ levels and verify assembly through them."""
        g = grid_city(14, 14, seed=3)
        gt = GTree(g, fanout=2, leaf_size=8, seed=0)
        assert gt.hierarchy.num_subgraph_levels >= 3
        rng = np.random.default_rng(2)
        pairs = rng.integers(g.n, size=(80, 2))
        truth = pair_distances(g, pairs)
        got = np.array([gt.query(int(s), int(t)) for s, t in pairs])
        np.testing.assert_allclose(got, truth)


class TestStructure:
    def test_borders_are_cut_endpoints(self):
        g = grid_city(8, 8, seed=4)
        gt = GTree(g, leaf_size=16, seed=0)
        for node in gt.hierarchy.nodes:
            if node.level > gt._leaf_level:
                continue
            inside = np.zeros(g.n, dtype=bool)
            inside[node.vertices] = True
            for b in gt._borders[node.id]:
                nbrs = g.neighbors(int(b))
                assert (~inside[nbrs]).any()  # some edge leaves the region

    def test_virtual_root_has_no_borders(self):
        g = grid_city(6, 6, seed=0)
        gt = GTree(g, leaf_size=8, seed=0)
        assert gt._borders[gt.VIRTUAL_ROOT].size == 0

    def test_index_bytes_positive(self):
        g = grid_city(6, 6, seed=0)
        gt = GTree(g, leaf_size=8, seed=0)
        assert gt.index_bytes() > 0
