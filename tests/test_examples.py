"""Smoke checks for the example scripts.

Full example runs take tens of seconds (they train models), so the default
suite only verifies each script parses and exposes a ``main``; the marked
slow test executes the quickstart end to end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "ride_hailing", "poi_search"} <= names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))

    @pytest.mark.slow
    def test_quickstart_runs(self, capsys):
        module = _load(EXAMPLES[[p.stem for p in EXAMPLES].index("quickstart")])
        module.main()
        out = capsys.readouterr().out
        assert "mean relative error" in out
