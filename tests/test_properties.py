"""Property-based tests (hypothesis) on core data structures and invariants.

Each property encodes something the paper's correctness rests on: metric
axioms of the Lp representation, exactness of the search substrates, and
structural invariants of partitioning and hierarchies — over *arbitrary*
generated graphs, not just the fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    ContractionHierarchy,
    HubLabels,
    LTEstimator,
    bidirectional_dijkstra,
    dijkstra,
    pair_distances,
)
from repro.core import RNEModel, lp_distance
from repro.graph import Graph, PartitionHierarchy, partition_kway

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def connected_graphs(draw, max_n: int = 24):
    """Random connected weighted graph: a random tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges: dict[tuple[int, int], float] = {}
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        w = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
        edges[(parent, v)] = w
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        w = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
        edges.setdefault(key, w)
    return Graph(n, [(u, v, w) for (u, v), w in edges.items()])


@st.composite
def vertex_pair(draw, graph: Graph):
    s = draw(st.integers(min_value=0, max_value=graph.n - 1))
    t = draw(st.integers(min_value=0, max_value=graph.n - 1))
    return s, t


slow_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Lp metric axioms (Sec. III-C of the paper)
# ----------------------------------------------------------------------
class TestLpMetricAxioms:
    @given(
        st.lists(
            st.floats(-50, 50, allow_nan=False), min_size=2, max_size=8
        ),
        st.lists(
            st.floats(-50, 50, allow_nan=False), min_size=2, max_size=8
        ),
        st.sampled_from([1.0, 2.0, 3.0]),
    )
    @settings(max_examples=100, deadline=None)
    def test_symmetry_and_nonnegativity(self, xs, ys, p):
        k = min(len(xs), len(ys))
        a = np.array(xs[:k])
        b = np.array(ys[:k])
        d_ab = lp_distance(a - b, p)
        d_ba = lp_distance(b - a, p)
        assert d_ab >= 0
        assert d_ab == pytest.approx(d_ba)

    @given(
        st.lists(st.floats(-20, 20, allow_nan=False), min_size=3, max_size=3),
        st.lists(st.floats(-20, 20, allow_nan=False), min_size=3, max_size=3),
        st.lists(st.floats(-20, 20, allow_nan=False), min_size=3, max_size=3),
        st.sampled_from([1.0, 2.0]),
    )
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, xs, ys, zs, p):
        a, b, c = np.array(xs), np.array(ys), np.array(zs)
        assert lp_distance(a - c, p) <= (
            lp_distance(a - b, p) + lp_distance(b - c, p) + 1e-9
        )

    @given(st.integers(2, 30), st.integers(1, 8), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_model_identity(self, n, d, seed):
        model = RNEModel.random(n, d, seed=seed)
        v = seed % n
        assert model.query(v, v) == 0.0


# ----------------------------------------------------------------------
# Search substrate exactness on arbitrary graphs
# ----------------------------------------------------------------------
class TestSearchExactness:
    @given(connected_graphs())
    @slow_settings
    def test_bidirectional_matches_dijkstra(self, graph):
        rng = np.random.default_rng(0)
        for _ in range(5):
            s, t = rng.integers(graph.n, size=2)
            assert bidirectional_dijkstra(graph, int(s), int(t)) == pytest.approx(
                float(dijkstra(graph, int(s), int(t))), rel=1e-9
            )

    @given(connected_graphs())
    @slow_settings
    def test_ch_exact(self, graph):
        ch = ContractionHierarchy(graph, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(5):
            s, t = rng.integers(graph.n, size=2)
            assert ch.query(int(s), int(t)) == pytest.approx(
                float(dijkstra(graph, int(s), int(t))), rel=1e-9
            )

    @given(connected_graphs())
    @slow_settings
    def test_h2h_exact(self, graph):
        from repro.algorithms import H2HIndex

        h2h = H2HIndex(graph)
        rng = np.random.default_rng(7)
        for _ in range(5):
            s, t = rng.integers(graph.n, size=2)
            assert h2h.query(int(s), int(t)) == pytest.approx(
                float(dijkstra(graph, int(s), int(t))), rel=1e-9
            )

    @given(connected_graphs(), st.integers(3, 8))
    @slow_settings
    def test_gtree_exact(self, graph, leaf_size):
        from repro.baselines import GTree

        gt = GTree(graph, fanout=2, leaf_size=leaf_size, seed=0)
        rng = np.random.default_rng(8)
        for _ in range(5):
            s, t = rng.integers(graph.n, size=2)
            assert gt.query(int(s), int(t)) == pytest.approx(
                float(dijkstra(graph, int(s), int(t))), rel=1e-9
            )

    @given(connected_graphs())
    @slow_settings
    def test_hub_labels_exact(self, graph):
        hl = HubLabels(graph, seed=0)
        rng = np.random.default_rng(2)
        for _ in range(5):
            s, t = rng.integers(graph.n, size=2)
            assert hl.query(int(s), int(t)) == pytest.approx(
                float(dijkstra(graph, int(s), int(t))), rel=1e-9
            )

    @given(connected_graphs())
    @slow_settings
    def test_lt_is_lower_bound(self, graph):
        k = min(4, graph.n)
        lt = LTEstimator(graph, k, strategy="random", seed=0)
        rng = np.random.default_rng(3)
        pairs = rng.integers(graph.n, size=(8, 2))
        truth = pair_distances(graph, pairs)
        est = lt.estimate_pairs(pairs)
        assert (est <= truth + 1e-6).all()

    @given(connected_graphs())
    @slow_settings
    def test_true_distance_symmetry(self, graph):
        rng = np.random.default_rng(4)
        s, t = (int(x) for x in rng.integers(graph.n, size=2))
        assert float(dijkstra(graph, s, t)) == pytest.approx(
            float(dijkstra(graph, t, s)), rel=1e-9
        )


# ----------------------------------------------------------------------
# Partitioning / hierarchy invariants
# ----------------------------------------------------------------------
class TestPartitionInvariants:
    @given(connected_graphs(), st.integers(2, 5))
    @slow_settings
    def test_kway_is_partition(self, graph, k):
        k = min(k, graph.n)
        labels = partition_kway(graph, k, seed=0)
        assert labels.shape == (graph.n,)
        assert labels.min() >= 0
        assert labels.max() < k

    @given(connected_graphs(), st.integers(2, 4), st.integers(2, 8))
    @slow_settings
    def test_hierarchy_invariants(self, graph, fanout, leaf_size):
        h = PartitionHierarchy(
            graph, fanout=fanout, leaf_size=leaf_size, seed=0
        )
        h.validate()  # asserts coverage / nesting / vertex-level identity

    @given(connected_graphs())
    @slow_settings
    def test_ancestor_rows_in_range(self, graph):
        h = PartitionHierarchy(graph, fanout=3, leaf_size=4, seed=0)
        for level in range(h.num_levels):
            rows = h.anc_rows[:, level]
            assert rows.min() >= 0
            assert rows.max() < h.level_size(level)
