"""G-tree/V-tree-style partition index for exact kNN and range queries.

The paper's kNN baseline V-tree [28] extends G-tree [35]: a partition tree
whose nodes store distance matrices between *border* vertices, assembled so
that point queries and kNN run without global graph searches.  This module
implements the two-level form of that design, which is exact:

* each leaf cell stores distances from its borders to its inner vertices,
  computed **within the cell** — exact for the segment of any shortest path
  up to its first border crossing;
* the root stores the full border-to-border matrix computed on the whole
  graph — exact for everything between the crossings.

Distances assemble as ``min over (b1, b2)`` of leaf + root + leaf parts.
kNN expands candidate leaves best-first by a border-derived lower bound, the
same pruning idea V-tree uses for moving objects.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.dijkstra import INF, sssp_many
from ..graph import Graph
from ..graph.partition import partition_kway


class GTreeIndex:
    """Two-level G-tree: exact distance/kNN/range via border matrices.

    Parameters
    ----------
    graph:
        Connected road network.
    num_cells:
        Leaf count (partitioning fanout of the single level).
    """

    def __init__(
        self,
        graph: Graph,
        num_cells: int = 16,
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if num_cells < 2:
            raise ValueError(f"num_cells must be >= 2, got {num_cells}")
        self.graph = graph
        self.labels = partition_kway(graph, num_cells, seed=seed)
        self.num_cells = int(self.labels.max()) + 1

        self.cells: list[np.ndarray] = [
            np.nonzero(self.labels == c)[0] for c in range(self.num_cells)
        ]
        self._pos_in_cell = np.empty(graph.n, dtype=np.int64)
        for cell in self.cells:
            self._pos_in_cell[cell] = np.arange(cell.size)

        # Borders: endpoints of cut edges.
        us, vs, _ = graph.edge_array()
        cross = self.labels[us] != self.labels[vs]
        border_set = np.unique(np.concatenate([us[cross], vs[cross]]))
        self.borders_of: list[np.ndarray] = [
            border_set[self.labels[border_set] == c] for c in range(self.num_cells)
        ]
        self.all_borders = border_set
        self._border_pos = {int(b): i for i, b in enumerate(border_set)}

        # Root matrix: exact border-to-border distances on the full graph.
        rows = sssp_many(graph, border_set)
        self.b2b = rows[:, border_set]

        # Leaf matrices: within-cell distances border -> inner vertex.
        self._leaf_graphs: list[Graph] = []
        self.leafmats: list[np.ndarray] = []
        for c in range(self.num_cells):
            sub, _ = graph.subgraph(self.cells[c])
            self._leaf_graphs.append(sub)
            local_borders = self._pos_in_cell[self.borders_of[c]]
            if local_borders.size:
                self.leafmats.append(sssp_many(sub, local_borders))
            else:
                self.leafmats.append(np.empty((0, sub.n), dtype=np.float64))

    # ------------------------------------------------------------------
    # assembly helpers
    # ------------------------------------------------------------------
    def _to_own_borders(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(border ids, within-cell distances) for the borders of v's cell."""
        c = int(self.labels[v])
        borders = self.borders_of[c]
        dists = self.leafmats[c][:, self._pos_in_cell[v]]
        return borders, dists

    def _global_border_dists(self, v: int) -> np.ndarray:
        """Exact distances from ``v`` to every border of the graph."""
        borders, leaf_d = self._to_own_borders(v)
        if borders.size == 0:
            return np.full(self.all_borders.size, INF, dtype=np.float64)
        rows = np.array([self._border_pos[int(b)] for b in borders])
        # d(v, b) = min over own borders b1 of dleaf(v, b1) + b2b(b1, b)
        return np.min(leaf_d[:, None] + self.b2b[rows], axis=0)

    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance via the border assembly."""
        if s == t:
            return 0.0
        cs, ct = int(self.labels[s]), int(self.labels[t])
        through = self._through_borders(s, t)
        if cs != ct:
            return through
        # Same leaf: the path may also stay inside the cell entirely.
        sub = self._leaf_graphs[cs]
        local = sssp_many(sub, [self._pos_in_cell[s]])[0]
        inner = float(local[self._pos_in_cell[t]])
        return min(inner, through)

    def _through_borders(self, s: int, t: int) -> float:
        glob_s = self._global_border_dists(s)
        borders_t, leaf_t = self._to_own_borders(t)
        if borders_t.size == 0:
            return INF
        rows_t = np.array([self._border_pos[int(b)] for b in borders_t])
        return float(np.min(glob_s[rows_t] + leaf_t))

    # ------------------------------------------------------------------
    # kNN / range
    # ------------------------------------------------------------------
    def _leaf_target_dists(
        self, glob_s: np.ndarray, cell: int, targets: np.ndarray
    ) -> np.ndarray:
        """Exact distances from the source to targets inside ``cell``,
        given the source's global border distances."""
        borders = self.borders_of[cell]
        if borders.size == 0:
            return np.full(targets.size, INF, dtype=np.float64)
        rows = np.array([self._border_pos[int(b)] for b in borders])
        cols = self._pos_in_cell[targets]
        return np.min(glob_s[rows][:, None] + self.leafmats[cell][:, cols], axis=0)

    def knn(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """Exact k nearest targets, expanding leaves best-first.

        Leaves are visited in order of a border lower bound; expansion stops
        once the current k-th best distance is below the next leaf's bound.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        targets = np.asarray(targets, dtype=np.int64)
        glob_s = self._global_border_dists(source)
        found: list[tuple[float, int]] = []

        # Source's own leaf first, with the stay-inside correction.
        own = int(self.labels[source])
        own_targets = targets[self.labels[targets] == own]
        if own_targets.size:
            sub = self._leaf_graphs[own]
            local = sssp_many(sub, [self._pos_in_cell[source]])[0]
            inner = local[self._pos_in_cell[own_targets]]
            through = self._leaf_target_dists(glob_s, own, own_targets)
            for t, d in zip(own_targets, np.minimum(inner, through)):
                found.append((float(d), int(t)))

        # Other leaves in lower-bound order.
        bounds = []
        for c in range(self.num_cells):
            if c == own:
                continue
            cell_targets = targets[self.labels[targets] == c]
            if cell_targets.size == 0:
                continue
            rows = np.array([self._border_pos[int(b)] for b in self.borders_of[c]])
            lb = float(np.min(glob_s[rows])) if rows.size else INF
            bounds.append((lb, c, cell_targets))
        bounds.sort(key=lambda item: item[0])

        for lb, c, cell_targets in bounds:
            found.sort()
            if len(found) >= k and found[k - 1][0] <= lb:
                break  # nothing in this or later leaves can improve top-k
            dists = self._leaf_target_dists(glob_s, c, cell_targets)
            found.extend((float(d), int(t)) for d, t in zip(dists, cell_targets))
        found.sort()
        return np.array([t for _, t in found[:k]], dtype=np.int64)

    def range_query(self, source: int, targets: np.ndarray, tau: float) -> np.ndarray:
        """Exact targets within network distance ``tau``."""
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        targets = np.asarray(targets, dtype=np.int64)
        glob_s = self._global_border_dists(source)
        hits: list[int] = []
        own = int(self.labels[source])
        for c in range(self.num_cells):
            cell_targets = targets[self.labels[targets] == c]
            if cell_targets.size == 0:
                continue
            if c != own:
                rows = np.array(
                    [self._border_pos[int(b)] for b in self.borders_of[c]]
                )
                if rows.size == 0 or float(np.min(glob_s[rows])) > tau:
                    continue  # leaf entirely out of range
            dists = self._leaf_target_dists(glob_s, c, cell_targets)
            if c == own:
                sub = self._leaf_graphs[own]
                local = sssp_many(sub, [self._pos_in_cell[source]])[0]
                dists = np.minimum(dists, local[self._pos_in_cell[cell_targets]])
            hits.extend(int(t) for t, d in zip(cell_targets, dists) if d <= tau)
        return np.array(sorted(hits), dtype=np.int64)

    def index_bytes(self) -> int:
        """Border-to-border matrix + leaf matrices (what G-tree stores)."""
        return int(self.b2b.nbytes + sum(m.nbytes for m in self.leafmats))
