"""DeepWalk from scratch: random walks + skip-gram with negative sampling.

The paper's DR ablation (Fig. 14) pits RNE against a *social* embedding —
DeepWalk [23] — whose vectors feed a neural regressor for distances.  No
gensim here: walks, the SGNS objective and its SGD updates are implemented
directly in numpy.

DeepWalk optimises co-occurrence similarity, not metric distance, which is
exactly why the paper argues (and Fig. 14 shows) it needs a large regressor
on top and still loses to the purpose-built L1 embedding.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph


def random_walks(
    graph: Graph,
    *,
    num_walks: int = 10,
    walk_length: int = 40,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniform random walks, ``num_walks`` starting at every vertex.

    Returns an ``(num_walks * n, walk_length)`` int array.  Walks stop
    early (padded by repeating the last vertex) only at isolated vertices,
    which road networks do not have.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    walks = np.empty((num_walks * graph.n, walk_length), dtype=np.int64)
    row = 0
    for _ in range(num_walks):
        starts = rng.permutation(graph.n)
        for start in starts:
            v = int(start)
            walks[row, 0] = v
            for step in range(1, walk_length):
                nbrs = graph.neighbors(v)
                if nbrs.size == 0:
                    walks[row, step:] = v
                    break
                v = int(nbrs[rng.integers(nbrs.size)])
                walks[row, step] = v
            row += 1
    return walks


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class DeepWalk:
    """Skip-gram-with-negative-sampling embedding over random walks.

    Parameters
    ----------
    graph:
        The network to embed.
    d:
        Embedding dimension.
    window:
        Skip-gram context radius within a walk.
    negatives:
        Negative samples per positive pair.
    """

    def __init__(
        self,
        graph: Graph,
        d: int = 64,
        *,
        num_walks: int = 8,
        walk_length: int = 30,
        window: int = 5,
        negatives: int = 5,
        epochs: int = 2,
        lr: float = 0.025,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.graph = graph
        self.d = int(d)
        walks = random_walks(
            graph, num_walks=num_walks, walk_length=walk_length, rng=rng
        )
        pairs = self._context_pairs(walks, window)
        freq = np.bincount(walks.ravel(), minlength=graph.n).astype(np.float64)
        noise = np.power(freq + 1.0, 0.75)
        self._noise_cdf = np.cumsum(noise / noise.sum())

        bound = 0.5 / self.d
        self.w_in = rng.uniform(-bound, bound, size=(graph.n, self.d))
        self.w_out = np.zeros((graph.n, self.d), dtype=np.float64)
        self._train(pairs, negatives, epochs, lr, rng)

    @staticmethod
    def _context_pairs(walks: np.ndarray, window: int) -> np.ndarray:
        """All (centre, context) pairs within the window, across all walks."""
        chunks = []
        length = walks.shape[1]
        for offset in range(1, window + 1):
            if offset >= length:
                break
            left = walks[:, :-offset].ravel()
            right = walks[:, offset:].ravel()
            chunks.append(np.column_stack([left, right]))
            chunks.append(np.column_stack([right, left]))
        return np.vstack(chunks)

    def _sample_noise(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.searchsorted(self._noise_cdf, rng.random(shape))

    def _train(
        self,
        pairs: np.ndarray,
        negatives: int,
        epochs: int,
        lr: float,
        rng: np.random.Generator,
        *,
        batch_size: int = 4096,
    ) -> None:
        for epoch in range(epochs):
            order = rng.permutation(len(pairs))
            step_lr = lr * (1.0 - epoch / max(epochs, 1))
            step_lr = max(step_lr, lr * 0.1)
            for start in range(0, len(pairs), batch_size):
                batch = pairs[order[start : start + batch_size]]
                centres = batch[:, 0]
                contexts = batch[:, 1]
                negs = self._sample_noise((len(batch), negatives), rng)

                vin = self.w_in[centres]                     # (B, d)
                vpos = self.w_out[contexts]                  # (B, d)
                vneg = self.w_out[negs]                      # (B, K, d)

                pos_score = _sigmoid(np.einsum("bd,bd->b", vin, vpos))
                neg_score = _sigmoid(np.einsum("bd,bkd->bk", vin, vneg))

                g_pos = (pos_score - 1.0)[:, None]           # dL/d(vin·vpos)
                g_neg = neg_score[..., None]                 # dL/d(vin·vneg)

                grad_in = g_pos * vpos + (g_neg * vneg).sum(axis=1)
                np.add.at(self.w_out, contexts, -step_lr * g_pos * vin)
                np.add.at(
                    self.w_out,
                    negs.ravel(),
                    (-step_lr * g_neg * vin[:, None, :]).reshape(-1, self.d),
                )
                np.add.at(self.w_in, centres, -step_lr * grad_in)

    @property
    def vectors(self) -> np.ndarray:
        """The learned input embeddings (the conventional DeepWalk output)."""
        return self.w_in

    def similarity(self, u: int, v: int) -> float:
        """Cosine similarity — what DeepWalk vectors actually encode."""
        a, b = self.w_in[u], self.w_in[v]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        return float(a @ b / denom) if denom > 0 else 0.0
