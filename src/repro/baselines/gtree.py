"""Multi-level G-tree distance index (Zhong et al., CIKM'13 / TKDE'15).

The full hierarchical form of the partition index (``vtree.py`` implements
the two-level special case used for kNN).  Structure, per tree node:

* **leaf** — distances from each of the leaf's *borders* (vertices with an
  edge leaving the leaf) to every vertex inside, computed within the leaf
  subgraph;
* **internal node** — a distance matrix over the union of its children's
  borders, computed within the node's subgraph by running Dijkstra over
  the "super graph" whose edges are the children's matrices plus the
  original cut edges between children.

A query climbs from both leaves: the border-distance vectors of ``s`` and
``t`` are min-plus-extended through each ancestor's matrix, combined at
the LCA and again at *every higher ancestor* (a shortest path may leave
the LCA's region and come back), which makes the assembly exact — at the
root the region is the whole graph.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.dijkstra import INF, sssp_many
from ..graph import Graph, PartitionHierarchy


class GTree:
    """Exact multi-level G-tree over a road network.

    Parameters
    ----------
    graph:
        The road network.
    fanout, leaf_size:
        Partition-tree shape (as in the paper's G-tree experiments).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        fanout: int = 4,
        leaf_size: int = 32,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.graph = graph
        self.hierarchy = PartitionHierarchy(
            graph, fanout=fanout, leaf_size=leaf_size, seed=seed
        )
        self._leaf_level = self.hierarchy.num_subgraph_levels - 1

        # Per-node borders: vertices with an edge leaving the node's set.
        us, vs, _ = graph.edge_array()
        self._borders: dict[int, np.ndarray] = {}
        for node in self.hierarchy.nodes:
            if node.level > self._leaf_level:
                continue
            inside = np.zeros(graph.n, dtype=bool)
            inside[node.vertices] = True
            cross = inside[us] != inside[vs]
            b = np.unique(
                np.concatenate([us[cross][inside[us[cross]]],
                                vs[cross][inside[vs[cross]]]])
            )
            self._borders[node.id] = b

        self._leaf_of = np.empty(graph.n, dtype=np.int64)
        for node_id in self.hierarchy.levels[self._leaf_level]:
            self._leaf_of[self.hierarchy.nodes[node_id].vertices] = node_id

        self._leaf_graphs: dict[int, Graph] = {}
        self._leaf_pos: dict[int, dict[int, int]] = {}
        self._leaf_mat: dict[int, np.ndarray] = {}
        self._build_leaves()

        # Internal matrices, built bottom-up.  A virtual root (id -1) over
        # the level-0 cells covers queries that cross top-level regions.
        self.VIRTUAL_ROOT = -1
        self._borders[self.VIRTUAL_ROOT] = np.empty(0, dtype=np.int64)
        self._U: dict[int, np.ndarray] = {}       # node -> candidate vertex ids
        self._U_pos: dict[int, dict[int, int]] = {}
        self._D: dict[int, np.ndarray] = {}       # node -> |U| x |U| distances
        self._build_internal()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_leaves(self) -> None:
        for node_id in self.hierarchy.levels[self._leaf_level]:
            node = self.hierarchy.nodes[node_id]
            sub, mapping = self.graph.subgraph(node.vertices)
            pos = {int(v): i for i, v in enumerate(mapping)}
            borders = self._borders[node_id]
            local_borders = np.array([pos[int(b)] for b in borders], dtype=np.int64)
            mat = (
                sssp_many(sub, local_borders)
                if local_borders.size
                else np.empty((0, sub.n), dtype=np.float64)
            )
            self._leaf_graphs[node_id] = sub
            self._leaf_pos[node_id] = pos
            self._leaf_mat[node_id] = mat

    def _children_at_or_leaf(self, node_id: int) -> list[int]:
        return self.hierarchy.nodes[node_id].children

    def _node_border_matrix(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(border ids, border-to-border matrix within the node's region)."""
        node = self.hierarchy.nodes[node_id]
        borders = self._borders[node_id]
        if node.level == self._leaf_level:
            pos = self._leaf_pos[node_id]
            cols = np.array([pos[int(b)] for b in borders], dtype=np.int64)
            mat = self._leaf_mat[node_id][:, cols] if borders.size else np.empty((0, 0), dtype=np.float64)
            return borders, mat
        u = self._U[node_id]
        upos = self._U_pos[node_id]
        idx = np.array([upos[int(b)] for b in borders], dtype=np.int64)
        return borders, self._D[node_id][np.ix_(idx, idx)]

    def _node_children(self, node_id: int) -> list[int]:
        if node_id == self.VIRTUAL_ROOT:
            return list(self.hierarchy.levels[0])
        return self.hierarchy.nodes[node_id].children

    def _node_parent(self, node_id: int) -> int | None:
        if node_id == self.VIRTUAL_ROOT:
            return None
        parent = self.hierarchy.nodes[node_id].parent
        return self.VIRTUAL_ROOT if parent is None else parent

    def _node_vertices(self, node_id: int) -> np.ndarray:
        if node_id == self.VIRTUAL_ROOT:
            return np.arange(self.graph.n, dtype=np.int64)
        return self.hierarchy.nodes[node_id].vertices

    def _build_internal(self) -> None:
        us, vs, ws = self.graph.edge_array()
        internal: list[int] = [self.VIRTUAL_ROOT]
        for level in range(self._leaf_level):
            internal.extend(self.hierarchy.levels[level])
        # Bottom-up: deepest internal nodes first, virtual root last.
        internal.sort(
            key=lambda i: -1 if i == self.VIRTUAL_ROOT else self.hierarchy.nodes[i].level,
            reverse=True,
        )
        for node_id in internal:
            children = self._node_children(node_id)
            cand: list[int] = []
            for c in children:
                cand.extend(int(b) for b in self._borders[c])
            cand_arr = np.unique(np.array(cand, dtype=np.int64))
            pos = {int(v): i for i, v in enumerate(cand_arr)}
            k = cand_arr.size
            self._U[node_id] = cand_arr
            self._U_pos[node_id] = pos
            if k == 0:
                self._D[node_id] = np.empty((0, 0), dtype=np.float64)
                continue

            # Super graph on the candidates: children's border matrices
            # plus original cut edges between children.
            edges: list[tuple[int, int, float]] = []
            for c in children:
                cb, cmat = self._node_border_matrix(c)
                for i in range(cb.size):
                    for j in range(i + 1, cb.size):
                        w = float(cmat[i, j])
                        if np.isfinite(w):
                            edges.append((pos[int(cb[i])], pos[int(cb[j])], w))
            inside = np.zeros(self.graph.n, dtype=bool)
            inside[self._node_vertices(node_id)] = True
            child_of = {}
            for c in children:
                for v in self.hierarchy.nodes[c].vertices:
                    child_of[int(v)] = c
            mask = inside[us] & inside[vs]
            for u, v, w in zip(us[mask], vs[mask], ws[mask]):
                u, v = int(u), int(v)
                if child_of.get(u) != child_of.get(v):
                    edges.append((pos[u], pos[v], float(w)))

            if edges:
                super_graph = Graph(k, edges)
                self._D[node_id] = sssp_many(super_graph, np.arange(k))
            else:
                d = np.full((k, k), INF, dtype=np.float64)
                np.fill_diagonal(d, 0.0)
                self._D[node_id] = d

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _leaf_vector(self, v: int) -> tuple[int, np.ndarray, np.ndarray]:
        """(leaf id, border ids, distances v -> borders within the leaf)."""
        leaf = int(self._leaf_of[v])
        borders = self._borders[leaf]
        col = self._leaf_pos[leaf][v]
        return leaf, borders, self._leaf_mat[leaf][:, col]

    def _extend(
        self, node_id: int, ids: np.ndarray, vec: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Min-plus extend a border vector onto ``node_id``'s candidates."""
        u = self._U[node_id]
        pos = self._U_pos[node_id]
        rows = np.array([pos[int(b)] for b in ids], dtype=np.int64)
        out = np.min(vec[:, None] + self._D[node_id][rows], axis=0)
        return u, out

    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance via hierarchical assembly."""
        if s == t:
            return 0.0
        leaf_s, ids_s, vec_s = self._leaf_vector(s)
        leaf_t, ids_t, vec_t = self._leaf_vector(t)

        best = INF
        if leaf_s == leaf_t:
            sub = self._leaf_graphs[leaf_s]
            pos = self._leaf_pos[leaf_s]
            row = sssp_many(sub, [pos[s]])[0]
            best = float(row[pos[t]])

        node_s = self._node_parent(leaf_s)
        node_t = self._node_parent(leaf_t)
        # Climb to the common ancestor, extending each side's vector.
        # Aligned levels mean both sides climb in lockstep.
        while node_s != node_t:
            ids_s, vec_s = self._to_node_borders(node_s, ids_s, vec_s)
            ids_t, vec_t = self._to_node_borders(node_t, ids_t, vec_t)
            node_s = self._node_parent(node_s)
            node_t = self._node_parent(node_t)

        # Combine at the LCA and at every higher ancestor: a shortest path
        # may leave any region below the root and return.
        node = node_s
        while node is not None:
            pos = self._U_pos[node]
            if ids_s.size and ids_t.size:
                rows = np.array([pos[int(b)] for b in ids_s], dtype=np.int64)
                cols = np.array([pos[int(b)] for b in ids_t], dtype=np.int64)
                via = vec_s[:, None] + self._D[node][np.ix_(rows, cols)] + vec_t[None, :]
                best = min(best, float(via.min()))
            ids_s, vec_s = self._to_node_borders(node, ids_s, vec_s)
            ids_t, vec_t = self._to_node_borders(node, ids_t, vec_t)
            node = self._node_parent(node)
        return best

    def _to_node_borders(
        self, node_id: int, ids: np.ndarray, vec: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project a candidate vector onto ``node_id``'s own borders."""
        if ids.size == 0:
            borders = self._borders[node_id]
            return borders, np.full(borders.size, INF, dtype=np.float64)
        u, ext = self._extend(node_id, ids, vec)
        borders = self._borders[node_id]
        pos = self._U_pos[node_id]
        idx = np.array([pos[int(b)] for b in borders], dtype=np.int64)
        return borders, ext[idx]

    # ------------------------------------------------------------------
    def index_bytes(self) -> int:
        """Leaf matrices + internal candidate matrices."""
        total = sum(m.nbytes for m in self._leaf_mat.values())
        total += sum(m.nbytes for m in self._D.values())
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GTree(levels={self.hierarchy.num_subgraph_levels}, "
            f"leaves={len(self._leaf_mat)})"
        )
