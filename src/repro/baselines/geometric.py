"""Geometric distance baselines: Euclidean and Manhattan (paper Sec. VII).

The simplest estimators use raw vertex coordinates — the straight-line
(Euclidean) or the axis-aligned (Manhattan / L1) distance.  They are
extremely fast and index-free but ignore the road topology entirely, which
is why the paper reports 11-16% relative error for them.  For kNN and range
queries they pair with a KD-tree (the paper's Fig. 16 baseline).

An optional one-scalar calibration (mean detour ratio) is provided: it
improves raw errors considerably and makes the baseline less of a strawman,
but it is *off* by default to match the paper's setup.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..graph import Graph


class GeometricEstimator:
    """Coordinate-based distance estimates plus KD-tree spatial queries.

    Parameters
    ----------
    graph:
        Road network with coordinates (required).
    metric:
        ``"euclidean"`` (straight line) or ``"manhattan"`` (L1 on
        coordinates).
    scale:
        Multiplier applied to every estimate; 1.0 = raw geometry.  Use
        :meth:`calibrate` to fit it from labelled pairs.
    """

    def __init__(self, graph: Graph, metric: str = "euclidean", *, scale: float = 1.0):
        if graph.coords is None:
            raise ValueError("GeometricEstimator requires vertex coordinates")
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(f"metric must be euclidean or manhattan, got {metric!r}")
        self.graph = graph
        self.metric = metric
        self.scale = float(scale)
        self._p = 2 if metric == "euclidean" else 1
        self._tree = cKDTree(graph.coords)

    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        diff = self.graph.coords[s] - self.graph.coords[t]
        return self.scale * float(np.linalg.norm(diff, ord=self._p))

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        diff = self.graph.coords[pairs[:, 0]] - self.graph.coords[pairs[:, 1]]
        return self.scale * np.linalg.norm(diff, ord=self._p, axis=1)

    def calibrate(self, pairs: np.ndarray, phi: np.ndarray) -> float:
        """Fit ``scale`` as the mean detour ratio on labelled pairs.

        Returns the fitted scale (also stored).  Least-squares in log space
        would weight long pairs less; the mean ratio is the conventional
        "detour index" used in transport geography.
        """
        raw = self.query_pairs(pairs) / self.scale
        ok = raw > 0
        self.scale = float(np.mean(np.asarray(phi)[ok] / raw[ok]))
        return self.scale

    # ------------------------------------------------------------------
    def knn(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets by (scaled) geometric distance via KD-tree."""
        targets = np.asarray(targets, dtype=np.int64)
        sub_tree = cKDTree(self.graph.coords[targets])
        k_eff = min(k, targets.size)
        _, idx = sub_tree.query(self.graph.coords[source], k=k_eff, p=self._p)
        idx = np.atleast_1d(idx)
        return targets[idx]

    def range_query(self, source: int, targets: np.ndarray, tau: float) -> np.ndarray:
        """Targets within (scaled) geometric distance ``tau``."""
        targets = np.asarray(targets, dtype=np.int64)
        sub_tree = cKDTree(self.graph.coords[targets])
        hits = sub_tree.query_ball_point(
            self.graph.coords[source], r=tau / self.scale, p=self._p
        )
        return np.sort(targets[np.asarray(hits, dtype=np.int64)])

    def index_bytes(self) -> int:
        """KD-tree memory is ~coordinates size."""
        return int(self.graph.coords.nbytes)
