"""Baseline estimators: geometric, social-embedding regression, G-tree."""

from .deepwalk import DeepWalk, random_walks
from .dr import DeepWalkRegression
from .geometric import GeometricEstimator
from .gtree import GTree
from .mlp import MLPRegressor
from .vtree import GTreeIndex

__all__ = [
    "DeepWalk",
    "DeepWalkRegression",
    "GTree",
    "GTreeIndex",
    "GeometricEstimator",
    "MLPRegressor",
    "random_walks",
]
