"""Minimal fully-connected regressor in numpy (for the DR baseline).

The paper's DR models bolt a fully-connected network of ~1K / 10K / 100K
parameters onto DeepWalk features for distance regression.  This module
provides exactly that: an MLP with ReLU hidden layers, MSE loss and Adam,
implemented with explicit forward/backward passes.
"""

from __future__ import annotations

import numpy as np


class MLPRegressor:
    """Feed-forward regressor ``in -> hidden... -> 1`` with ReLU + Adam.

    Parameters
    ----------
    input_dim:
        Feature dimension.
    hidden:
        Sizes of the hidden layers (empty = linear regression).
    seed:
        Initialisation seed (He-normal weights).
    """

    def __init__(
        self,
        input_dim: int,
        hidden: tuple[int, ...] = (32,),
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        dims = [int(input_dim), *map(int, hidden), 1]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            std = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(scale=std, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out, dtype=np.float64))
        self._adam_m = [np.zeros_like(w) for w in self.weights + self.biases]
        self._adam_v = [np.zeros_like(w) for w in self.weights + self.biases]
        self._adam_t = 0
        self._y_scale = 1.0

    @property
    def num_parameters(self) -> int:
        return int(
            sum(w.size for w in self.weights) + sum(b.size for b in self.biases)
        )

    # ------------------------------------------------------------------
    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return output and per-layer activations (for backprop)."""
        activations = [x]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i < last:
                h = np.maximum(h, 0.0)
            activations.append(h)
        return h[:, 0], activations

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Regressed values for a ``(k, input_dim)`` feature matrix."""
        out, _ = self._forward(np.asarray(x, dtype=np.float64))
        return out * self._y_scale

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 20,
        batch_size: int = 1024,
        lr: float = 1e-3,
        seed: int | np.random.Generator | None = 0,
    ) -> list[float]:
        """Adam/MSE training; returns per-epoch training MSE.

        Targets are internally normalised by their mean magnitude so the
        same ``lr`` works across datasets with different distance units.
        """
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._y_scale = float(np.mean(np.abs(y))) or 1.0
        y_n = y / self._y_scale
        losses: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(x))
            total = 0.0
            for start in range(0, len(x), batch_size):
                batch = order[start : start + batch_size]
                total += self._step(x[batch], y_n[batch], lr) * len(batch)
            losses.append(total / len(x))
        return losses

    def _step(self, x: np.ndarray, y: np.ndarray, lr: float) -> float:
        out, acts = self._forward(x)
        resid = out - y
        loss = float(np.mean(np.square(resid)))

        grads_w: list[np.ndarray] = [np.empty(0, dtype=np.float64)] * len(self.weights)
        grads_b: list[np.ndarray] = [np.empty(0, dtype=np.float64)] * len(self.biases)
        delta = (2.0 * resid / len(x))[:, None]  # dL/d(last pre-activation)
        for i in range(len(self.weights) - 1, -1, -1):
            grads_w[i] = acts[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights[i].T) * (acts[i] > 0)
        self._adam_update(grads_w + grads_b, lr)
        return loss

    def _adam_update(self, grads: list[np.ndarray], lr: float) -> None:
        params = self.weights + self.biases
        self._adam_t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        for i, (p, g) in enumerate(zip(params, grads)):
            self._adam_m[i] = b1 * self._adam_m[i] + (1 - b1) * g
            self._adam_v[i] = b2 * self._adam_v[i] + (1 - b2) * np.square(g)
            m_hat = self._adam_m[i] / (1 - b1**self._adam_t)
            v_hat = self._adam_v[i] / (1 - b2**self._adam_t)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)
