"""DR: DeepWalk-Regression distance baseline (paper Sec. VII-B1, Fig. 14).

Pipeline exactly as the paper describes: train DeepWalk vectors, append the
vertex coordinates, build the pair feature

    [ v_s, v_t, |v_s - v_t| ]        (dimension 3 * (d + 2))

and regress the shortest-path distance with a fully connected network.
Three regressor sizes — ~1K, ~10K and ~100K parameters — are named DR-1K /
DR-10K / DR-100K, as in the figure.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .deepwalk import DeepWalk
from .mlp import MLPRegressor

#: Hidden-layer layouts chosen so total parameter counts land near the
#: paper's 1K / 10K / 100K buckets for the default feature size.
_SIZE_PRESETS: dict[str, tuple[int, ...]] = {
    "1K": (8,),
    "10K": (48, 24),
    "100K": (192, 96, 48),
}


class DeepWalkRegression:
    """Social-embedding + neural-regressor distance estimator.

    Parameters
    ----------
    graph:
        Road network (coordinates required — they are part of the feature).
    size:
        ``"1K"``, ``"10K"`` or ``"100K"`` — regressor parameter budget.
    d:
        DeepWalk embedding dimension (paper uses 64).
    deepwalk:
        Optionally a pre-trained :class:`DeepWalk` to share across the three
        DR variants (the ablation trains one embedding, three regressors).
    """

    def __init__(
        self,
        graph: Graph,
        size: str = "10K",
        *,
        d: int = 64,
        deepwalk: DeepWalk | None = None,
        seed: int = 0,
    ) -> None:
        if graph.coords is None:
            raise ValueError("DeepWalkRegression requires vertex coordinates")
        if size not in _SIZE_PRESETS:
            raise ValueError(f"size must be one of {sorted(_SIZE_PRESETS)}, got {size!r}")
        self.graph = graph
        self.size = size
        rng = np.random.default_rng(seed)
        self._dw = deepwalk if deepwalk is not None else DeepWalk(graph, d, seed=rng)

        coords = graph.coords
        scale = np.maximum(coords.std(axis=0), 1e-9)
        norm_coords = (coords - coords.mean(axis=0)) / scale
        self._features = np.hstack([self._dw.vectors, norm_coords])
        self.mlp = MLPRegressor(
            input_dim=3 * self._features.shape[1],
            hidden=_SIZE_PRESETS[size],
            seed=rng,
        )

    @property
    def num_parameters(self) -> int:
        return self.mlp.num_parameters

    def _pair_features(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        fs = self._features[pairs[:, 0]]
        ft = self._features[pairs[:, 1]]
        return np.hstack([fs, ft, np.abs(fs - ft)])

    def fit(
        self,
        pairs: np.ndarray,
        phi: np.ndarray,
        *,
        epochs: int = 30,
        seed: int = 0,
    ) -> list[float]:
        """Train the regressor on labelled pairs; returns epoch losses."""
        return self.mlp.fit(
            self._pair_features(pairs), phi, epochs=epochs, seed=seed
        )

    def query(self, s: int, t: int) -> float:
        return float(self.query_pairs(np.array([[s, t]]))[0])

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Predicted distances (clipped at zero — distances are positive)."""
        return np.maximum(self.mlp.predict(self._pair_features(pairs)), 0.0)

    def index_bytes(self) -> int:
        """Embedding + feature + regressor memory."""
        weights = sum(w.nbytes for w in self.mlp.weights)
        biases = sum(b.nbytes for b in self.mlp.biases)
        return int(self._features.nbytes + weights + biases)
