"""Query workload generators for the experiment harness.

Matches the paper's evaluation protocol (Sec. VII): random query pairs with
exact ground truth, distance-scale query groups (``Q`` groups of queries
bucketed by true distance, Figs. 13/17), and kNN/range workloads (random
sources against a random target/POI set, Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sampling import DistanceLabeler, random_pair_samples
from ..graph import Graph


@dataclass(frozen=True)
class QueryWorkload:
    """Labelled point-to-point queries."""

    pairs: np.ndarray
    truth: np.ndarray

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class ScaleGroup:
    """One distance-scale query group (Fig. 13 / 17 x-axis point)."""

    upper_bound: float
    pairs: np.ndarray
    truth: np.ndarray


@dataclass(frozen=True)
class SpatialWorkload:
    """Sources and a fixed target (POI) set for kNN / range queries."""

    sources: np.ndarray
    targets: np.ndarray


def random_queries(
    graph: Graph,
    count: int,
    *,
    seed: int | np.random.Generator | None = 0,
    labeler: DistanceLabeler | None = None,
) -> QueryWorkload:
    """Uniform random labelled query pairs (the Table III workload)."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if labeler is None:
        labeler = DistanceLabeler(graph)
    pairs, truth = random_pair_samples(graph, count, labeler, rng)
    return QueryWorkload(pairs, truth)


def distance_scale_groups(
    graph: Graph,
    *,
    num_groups: int = 5,
    per_group: int = 500,
    pool_factor: int = 8,
    seed: int | np.random.Generator | None = 0,
    labeler: DistanceLabeler | None = None,
) -> list[ScaleGroup]:
    """``Q`` query groups by true-distance scale (Fig. 13 / 17 protocol).

    A large random pool is labelled, split into ``num_groups`` equal-width
    distance intervals, and up to ``per_group`` queries are kept per group
    (long-distance groups are rarer in a uniform pool, hence the oversized
    pool).  Groups left empty by graph geometry are dropped.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if labeler is None:
        labeler = DistanceLabeler(graph)
    pool_pairs, pool_truth = random_pair_samples(
        graph, num_groups * per_group * pool_factor, labeler, rng
    )
    top = float(pool_truth.max())
    edges = np.linspace(0.0, top, num_groups + 1)
    groups: list[ScaleGroup] = []
    for i in range(num_groups):
        mask = (pool_truth > edges[i]) & (pool_truth <= edges[i + 1])
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            continue
        if idx.size > per_group:
            idx = rng.choice(idx, size=per_group, replace=False)
        groups.append(
            ScaleGroup(float(edges[i + 1]), pool_pairs[idx], pool_truth[idx])
        )
    return groups


def spatial_workload(
    graph: Graph,
    *,
    num_sources: int = 50,
    num_targets: int = 200,
    seed: int | np.random.Generator | None = 0,
) -> SpatialWorkload:
    """Random sources + a random POI set for kNN/range experiments."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    sources = rng.choice(graph.n, size=min(num_sources, graph.n), replace=False)
    targets = rng.choice(graph.n, size=min(num_targets, graph.n), replace=False)
    return SpatialWorkload(sources.astype(np.int64), np.sort(targets).astype(np.int64))
