"""Uniform method registry for the experiment harness.

Every distance method of the paper's Table III/IV — exact (CH, H2H-style
hub labels, Dijkstra), approximate (ACH, Distance Oracle, LT, Euclidean,
Manhattan, DR) and RNE itself — is wrapped behind one interface:

* ``query(s, t)`` / ``query_pairs(pairs)`` — distance estimates,
* ``index_bytes()`` — index size (Table IV),
* ``build_seconds`` — construction time (Table IV),
* ``exact`` — whether results are guaranteed exact.

``build_method(name, graph)`` constructs any of them with paper-informed
defaults scaled to this repo's synthetic networks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..algorithms import (
    AllPairsIndex,
    ApproximateCH,
    ContractionHierarchy,
    DistanceOracle,
    H2HIndex,
    HubLabels,
    LTEstimator,
    bidirectional_dijkstra,
)
from ..baselines import DeepWalkRegression, GTree, GeometricEstimator
from ..core import RNEConfig, build_rne
from ..core.sampling import DistanceLabeler, random_pair_samples
from ..graph import Graph


@dataclass
class BuiltMethod:
    """A constructed distance method with uniform query/accounting API."""

    name: str
    exact: bool
    build_seconds: float
    _query: Callable[[int, int], float]
    _query_pairs: Callable[[np.ndarray], np.ndarray] | None = None
    _index_bytes: Callable[[], int] = lambda: 0
    impl: object = field(default=None, repr=False)

    def query(self, s: int, t: int) -> float:
        return self._query(int(s), int(t))

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if self._query_pairs is not None:
            return np.asarray(self._query_pairs(pairs), dtype=np.float64)
        return np.array([self._query(int(s), int(t)) for s, t in pairs])

    def index_bytes(self) -> int:
        return int(self._index_bytes())


def default_rne_config(graph: Graph, *, seed: int = 0, quality: str = "standard") -> RNEConfig:
    """Paper-informed RNE configuration scaled to the graph size.

    ``quality="standard"`` mirrors the paper's per-dataset dimension choices
    at reduced sample budgets; ``"fast"`` shrinks everything for unit tests.
    """
    if quality == "fast":
        return RNEConfig(
            d=16,
            hier_samples_per_level=6000,
            hier_epochs=3,
            vertex_samples=max(15_000, 20 * graph.n),
            vertex_epochs=5,
            num_landmarks=min(48, graph.n),
            joint_epochs=2,
            joint_samples=8000,
            finetune_rounds=3,
            finetune_samples=4000,
            seed=seed,
        )
    # Mirrors the paper's per-dataset dimension choice (64 for BJ, 128 for
    # the larger FLA / US-W) at sample budgets sized for laptop-scale runs.
    big = graph.n > 2000
    return RNEConfig(
        d=64 if not big else 128,
        lr=0.015,
        hier_samples_per_level=30_000 if not big else 40_000,
        hier_epochs=5 if not big else 6,
        vertex_samples=min(max(80_000, 40 * graph.n), 250_000),
        vertex_epochs=10 if not big else 12,
        num_landmarks=min(max(graph.n // 15, 32), 300),
        joint_epochs=4 if not big else 6,
        joint_samples=max(50_000, 25 * graph.n),
        finetune_rounds=8 if not big else 12,
        finetune_samples=15_000,
        seed=seed,
    )


def build_method(
    name: str,
    graph: Graph,
    *,
    seed: int = 0,
    **params,
) -> BuiltMethod:
    """Construct a named method; ``params`` override its defaults.

    Known names: ``euclidean``, ``manhattan``, ``dijkstra``, ``ch``,
    ``h2h`` (tree-decomposition 2-hop), ``hl`` (CH hub labels), ``gtree``
    (multi-level G-tree), ``silc`` (all-pairs matrix), ``ach``, ``oracle``,
    ``lt``, ``rne``, ``rne-naive``, ``dr-1k``, ``dr-10k``, ``dr-100k``.
    """
    key = name.lower()
    start = time.perf_counter()

    if key in ("euclidean", "manhattan"):
        est = GeometricEstimator(graph, metric=key, **params)
        return BuiltMethod(
            name, False, time.perf_counter() - start,
            est.query, est.query_pairs, est.index_bytes, est,
        )
    if key == "dijkstra":
        return BuiltMethod(
            name, True, 0.0,
            lambda s, t: bidirectional_dijkstra(graph, s, t),
        )
    if key == "ch":
        ch = ContractionHierarchy(graph, seed=seed, **params)
        return BuiltMethod(
            name, True, time.perf_counter() - start,
            ch.query, None, ch.index_bytes, ch,
        )
    if key == "h2h":
        h2h = H2HIndex(graph, **params)
        return BuiltMethod(
            name, True, time.perf_counter() - start,
            h2h.query, None, h2h.index_bytes, h2h,
        )
    if key == "hl":
        hl = HubLabels(graph, seed=seed, **params)
        return BuiltMethod(
            name, True, time.perf_counter() - start,
            hl.query, None, hl.index_bytes, hl,
        )
    if key == "gtree":
        gt = GTree(graph, seed=seed, **params)
        return BuiltMethod(
            name, True, time.perf_counter() - start,
            gt.query, None, gt.index_bytes, gt,
        )
    if key == "silc":
        apsp = AllPairsIndex(graph, **params)
        return BuiltMethod(
            name, True, time.perf_counter() - start,
            apsp.query, apsp.query_pairs, apsp.index_bytes, apsp,
        )
    if key == "ach":
        params.setdefault("epsilon", 0.1)
        ach = ApproximateCH(graph, seed=seed, **params)
        return BuiltMethod(
            name, False, time.perf_counter() - start,
            ach.query, None, ach.index_bytes, ach,
        )
    if key == "oracle":
        params.setdefault("epsilon", 0.5)
        oracle = DistanceOracle(graph, **params)
        return BuiltMethod(
            name, False, time.perf_counter() - start,
            oracle.query, None, oracle.index_bytes, oracle,
        )
    if key == "lt":
        params.setdefault("num_landmarks", min(128 if graph.n <= 2000 else 256, graph.n))
        lt = LTEstimator(graph, params.pop("num_landmarks"), seed=seed, **params)
        return BuiltMethod(
            name, False, time.perf_counter() - start,
            lt.estimate, lt.estimate_pairs, lt.index_bytes, lt,
        )
    if key in ("rne", "rne-naive"):
        config = params.pop("config", None)
        if config is None:
            config = default_rne_config(
                graph, seed=seed, quality=params.pop("quality", "standard")
            )
        if key == "rne-naive":
            config.hierarchical = False
        rne = build_rne(graph, config)
        return BuiltMethod(
            name, False, time.perf_counter() - start,
            rne.query, rne.query_pairs, rne.model.index_bytes, rne,
        )
    if key in ("dr-1k", "dr-10k", "dr-100k"):
        size = key.split("-")[1].upper()
        train_count = params.pop("train_samples", 20 * graph.n)
        dr = DeepWalkRegression(graph, size, seed=seed, **params)
        labeler = DistanceLabeler(graph)
        rng = np.random.default_rng(seed)
        pairs, phi = random_pair_samples(graph, train_count, labeler, rng)
        dr.fit(pairs, phi, seed=seed)
        return BuiltMethod(
            name, False, time.perf_counter() - start,
            dr.query, dr.query_pairs, dr.index_bytes, dr,
        )
    raise KeyError(f"unknown method {name!r}")


#: Methods compared in Table III / IV, in the paper's row order.
TABLE_METHODS = ["euclidean", "manhattan", "h2h", "ch", "oracle", "ach", "lt", "rne"]
