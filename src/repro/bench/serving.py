"""Serving throughput/latency benchmark — produces ``BENCH_serving.json``.

Measures, on a generated road network (>= 50k vertices at full scale):

* **pair distances** — ``BatchQueryEngine.distances`` on a ``(B, 2)``
  batch versus a per-pair ``RNEModel.query`` Python loop (the acceptance
  criterion is a >= 10x throughput ratio),
* **batched kNN / range** — the array-wide frontier versus the per-query
  ``EmbeddingTreeIndex`` walk, with bit-identity asserted on every source,
* **cache behaviour** — hot-row hit rate under a skewed repeated-source
  workload,

and records p50/p99 latency, queries/sec and cache hit rates from the
engine's own :class:`~repro.serving.stats.ServingStats` into a JSON file
(default ``benchmarks/results/BENCH_serving.json``) plus a text report.

The model is randomly initialised — serving throughput is a property of
the data layout, not of training quality — so the benchmark needs no
training time and stays deterministic.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.index import EmbeddingTreeIndex
from ..core.model import RNEModel
from ..graph import PartitionHierarchy
from ..graph.generators import grid_city
from ..serving import BatchQueryEngine
from .reporting import format_table

__all__ = ["serving_benchmark"]


def _best_seconds(fn: Any, *, repeats: int = 3) -> float:
    """Best-of-N wall time for one call (warm caches, minimal jitter)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


def _default_out_path() -> str:
    candidate = os.path.join("benchmarks", "results")
    directory = candidate if os.path.isdir(candidate) else "."
    return os.path.join(directory, "BENCH_serving.json")


def serving_benchmark(
    *,
    fast: bool = False,
    out_path: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run the serving benchmark; returns the results dict (incl. report)."""
    side = 24 if fast else 224  # full scale: 224^2 ~ 50k vertices
    num_pairs = 2_000 if fast else 20_000
    num_targets = 100 if fast else 1_000
    num_sources = 20 if fast else 200
    k = 10
    rng = np.random.default_rng(seed)

    graph = grid_city(side, side, seed=seed)
    model = RNEModel.random(graph.n, 32, seed=seed + 1)
    hierarchy = PartitionHierarchy(graph, fanout=4, leaf_size=32, seed=seed + 2)
    index = EmbeddingTreeIndex(hierarchy, model.matrix, model.p)
    engine = BatchQueryEngine(model=model, index=index, graph=graph)

    results: Dict[str, Any] = {
        "graph": {"vertices": graph.n, "edges": graph.m, "side": side},
        "fast": fast,
    }

    # -- pair-distance throughput: batch vs per-pair Python loop ---------
    pairs = rng.integers(0, graph.n, size=(num_pairs, 2)).astype(np.int64)
    loop_pairs = pairs[: min(num_pairs, 2_000)]

    def per_pair_loop() -> None:
        for s, t in loop_pairs:  # perf: loop-ok (the baseline under test)
            model.query(int(s), int(t))

    loop_seconds = _best_seconds(per_pair_loop)
    loop_qps = loop_pairs.shape[0] / loop_seconds
    batch_seconds = _best_seconds(lambda: engine.distances(pairs))
    batch_qps = pairs.shape[0] / batch_seconds
    results["distances"] = {
        "pairs": int(pairs.shape[0]),
        "loop_queries_per_second": loop_qps,
        "batch_queries_per_second": batch_qps,
        "speedup": batch_qps / loop_qps,
        "meets_10x": bool(batch_qps >= 10 * loop_qps),
    }

    # -- batched kNN / range vs the per-query index walk -----------------
    targets = np.sort(
        rng.choice(graph.n, size=min(num_targets, graph.n), replace=False)
    ).astype(np.int64)
    sources = rng.choice(graph.n, size=min(num_sources, graph.n), replace=False).astype(
        np.int64
    )
    prepared = engine.prepare(targets)
    sample = model.matrix[sources[: min(32, sources.size)]]
    tau = float(
        np.median(
            np.abs(sample[:, None, :] - model.matrix[targets][None, :, :]).sum(axis=-1)
        )
        * 0.25
    )

    def per_query_knn() -> List[np.ndarray]:
        # perf: loop-ok (the baseline under test)
        return [index.knn_prepared(int(s), prepared, k) for s in sources]

    def per_query_range() -> List[np.ndarray]:
        # perf: loop-ok (the baseline under test)
        return [index.range_prepared(int(s), prepared, tau) for s in sources]

    for name, batched, per_query in (
        ("knn", lambda: engine.knn(sources, prepared, k), per_query_knn),
        ("range", lambda: engine.range_query(sources, prepared, tau), per_query_range),
    ):
        batch_out = batched()
        ref_out = per_query()
        identical = all(
            np.array_equal(a, b) for a, b in zip(batch_out, ref_out)
        )
        b_seconds = _best_seconds(batched)
        q_seconds = _best_seconds(per_query)
        results[name] = {
            "sources": int(sources.size),
            "targets": int(prepared.m),
            "param": k if name == "knn" else tau,
            "batch_queries_per_second": sources.size / b_seconds,
            "per_query_queries_per_second": sources.size / q_seconds,
            "speedup": q_seconds / b_seconds,
            "bit_identical": bool(identical),
        }

    # -- cache behaviour under a skewed (hot-source) workload ------------
    hot = rng.choice(graph.n, size=min(32, graph.n), replace=False).astype(np.int64)
    for _ in range(4):  # perf: loop-ok (workload repetition)
        engine.knn(rng.choice(hot, size=min(200, 4 * hot.size)), prepared, k)
    results["hot_row_hit_rate"] = engine.hot_rows.hit_rate

    # -- latency/throughput observability --------------------------------
    snapshot = engine.snapshot()
    results["ops"] = snapshot["ops"]
    results["caches"] = snapshot["caches"]

    path = out_path if out_path is not None else _default_out_path()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    results["out_path"] = path

    dist = results["distances"]
    rows = [
        [
            "distances",
            f"{dist['batch_queries_per_second']:,.0f}",
            f"{dist['loop_queries_per_second']:,.0f}",
            f"{dist['speedup']:.1f}x",
            "yes" if dist["meets_10x"] else "NO",
        ]
    ]
    for name in ("knn", "range"):
        rec = results[name]
        rows.append(
            [
                name,
                f"{rec['batch_queries_per_second']:,.0f}",
                f"{rec['per_query_queries_per_second']:,.0f}",
                f"{rec['speedup']:.1f}x",
                "yes" if rec["bit_identical"] else "NO",
            ]
        )
    op_rows = [
        [name, f"{op['p50_us']:.1f}", f"{op['p99_us']:.1f}", f"{op['queries_per_second']:,.0f}"]
        for name, op in sorted(results["ops"].items())
    ]
    report = "\n\n".join(
        [
            format_table(
                ["op", "batch q/s", "baseline q/s", "speedup", "ok"],
                rows,
                title=(
                    f"Serving throughput — {graph.n} vertices "
                    f"(hot-row hit rate {results['hot_row_hit_rate']:.2f})"
                ),
            ),
            format_table(
                ["op", "p50 us", "p99 us", "q/s"],
                op_rows,
                title="Serving latency (engine histograms)",
            ),
            f"stats written to {path}",
        ]
    )
    results["report"] = report
    return results
