"""Experiment runners — one per table and figure of the paper's Sec. VII.

Every function regenerates the rows/series of its table or figure on the
synthetic stand-in datasets (see DESIGN.md for the substitution argument),
returns the numbers as a plain dict and renders a text report.  Absolute
values differ from the paper (simulated networks, interpreted Python); the
*shapes* — method ordering, trends across distance/dimension/samples — are
the reproduction targets recorded in EXPERIMENTS.md.

All runners accept ``fast=True`` to shrink workloads for CI-style runs.
"""

from __future__ import annotations

import functools
import os
import time

import numpy as np

from ..algorithms.knn import range_true
from ..baselines import DeepWalk, DeepWalkRegression, GeometricEstimator, GTreeIndex
from ..core import (
    DistanceLabeler,
    GridBuckets,
    HierarchicalRNE,
    RNEConfig,
    RNEModel,
    TrainConfig,
    active_finetune,
    build_rne,
    bucketed_errors,
    error_cdf,
    error_report,
    f1_score,
    landmark_samples,
    level_schedule,
    random_pair_samples,
    subgraph_level_samples,
    train_flat,
    train_hierarchical,
    validation_set,
    vertex_only_schedule,
)
from ..core.index import EmbeddingTreeIndex
from ..core.training import new_adam_states
from ..algorithms.landmarks import select_landmarks
from ..graph import Graph, PartitionHierarchy, delaunay_country, multi_city, radial_city
from .methods import TABLE_METHODS, BuiltMethod, build_method, default_rne_config
from .reporting import format_series, format_table, human_bytes
from .workloads import distance_scale_groups, random_queries, spatial_workload

#: Dataset registry mirroring the scale ordering BJ < FLA < US-W.
DATASET_NAMES = ("BJ-S", "FLA-S", "USW-S")


def _bench_scale() -> float:
    """Global size multiplier, settable via REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@functools.lru_cache(maxsize=None)
def get_dataset(name: str, *, fast: bool = False) -> Graph:
    """Build (and cache) one of the named benchmark networks."""
    scale = 0.25 if fast else _bench_scale()
    root = np.sqrt(scale)
    if name == "BJ-S":
        return radial_city(
            max(3, int(round(16 * root))), max(8, int(round(80 * root))), seed=11
        )
    if name == "FLA-S":
        return delaunay_country(max(64, int(round(2600 * scale))), seed=12)
    if name == "USW-S":
        side = max(6, int(round(30 * root)))
        return multi_city(4, side, side, seed=13)
    raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")


@functools.lru_cache(maxsize=None)
def get_method(dataset: str, method: str, *, fast: bool = False, seed: int = 0) -> BuiltMethod:
    """Build (and cache) a method instance on a named dataset."""
    graph = get_dataset(dataset, fast=fast)
    kwargs = {}
    if method in ("rne", "rne-naive") and fast:
        kwargs["quality"] = "fast"
    return build_method(method, graph, seed=seed, **kwargs)


@functools.lru_cache(maxsize=None)
def get_workload(dataset: str, *, fast: bool = False, count: int | None = None):
    graph = get_dataset(dataset, fast=fast)
    if count is None:
        count = 500 if fast else 2000
    return random_queries(graph, count, seed=101)


def _time_queries(method: BuiltMethod, pairs: np.ndarray, *, repeats: int = 1) -> float:
    """Mean per-query wall time in microseconds."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        method.query_pairs(pairs)
        best = min(best, time.perf_counter() - start)
    return best / len(pairs) * 1e6


# ======================================================================
# Table III + Table IV: the state-of-the-art comparison
# ======================================================================
def comparison(
    *,
    datasets: tuple[str, ...] = DATASET_NAMES,
    methods: tuple[str, ...] | None = None,
    fast: bool = False,
) -> dict:
    """Build every method on every dataset; measure error, query time,
    build time and index size.  Oracle is only run on the smallest dataset,
    reproducing its scalability wall (as the paper does)."""
    if methods is None:
        methods = tuple(TABLE_METHODS)
    records: dict[tuple[str, str], dict] = {}
    for ds in datasets:
        workload = get_workload(ds, fast=fast)
        timing_pairs = workload.pairs[: min(len(workload.pairs), 500)]
        for m in methods:
            if m == "oracle" and ds != datasets[0]:
                continue  # the oracle does not scale; paper runs it on BJ only
            if m == "ch" and fast and ds != datasets[0]:
                continue  # plain-CH queries are slow; trim in fast mode
            built = get_method(ds, m, fast=fast)
            pred = built.query_pairs(workload.pairs)
            rep = error_report(pred, workload.truth)
            records[(ds, m)] = {
                "mean_rel": rep.mean_rel,
                "query_us": _time_queries(built, timing_pairs),
                "build_s": built.build_seconds,
                "index_bytes": built.index_bytes(),
                "exact": built.exact,
            }
    return {"datasets": datasets, "methods": methods, "records": records}


def table3(*, fast: bool = False, data: dict | None = None) -> str:
    """Table III: mean relative error (%) and query time per method."""
    data = data or comparison(fast=fast)
    rows = []
    for m in data["methods"]:
        row: list[object] = [m]
        for ds in data["datasets"]:
            rec = data["records"].get((ds, m))
            if rec is None:
                row.append("-")
            elif rec["exact"]:
                row.append("0 (exact)")
            else:
                row.append(f"{rec['mean_rel'] * 100:.2f}")
        for ds in data["datasets"]:
            rec = data["records"].get((ds, m))
            row.append("-" if rec is None else f"{rec['query_us']:.2f}")
        rows.append(row)
    headers = ["method"] + [f"err% {d}" for d in data["datasets"]] + [
        f"us/q {d}" for d in data["datasets"]
    ]
    return format_table(headers, rows, title="Table III — mean relative error and query time")


def table4(*, fast: bool = False, data: dict | None = None) -> str:
    """Table IV: index size and building time per method."""
    data = data or comparison(fast=fast)
    rows = []
    for m in data["methods"]:
        if m in ("euclidean", "manhattan"):
            continue  # no index, as in the paper's Table IV
        row: list[object] = [m]
        for ds in data["datasets"]:
            rec = data["records"].get((ds, m))
            row.append("-" if rec is None else human_bytes(rec["index_bytes"]))
        for ds in data["datasets"]:
            rec = data["records"].get((ds, m))
            row.append("-" if rec is None else f"{rec['build_s']:.1f}s")
        rows.append(row)
    headers = ["method"] + [f"size {d}" for d in data["datasets"]] + [
        f"build {d}" for d in data["datasets"]
    ]
    return format_table(headers, rows, title="Table IV — index size and building time")


# ======================================================================
# Fig. 9: the effect of the Lp metric
# ======================================================================
def fig9_lp(
    *,
    ps: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0),
    fast: bool = False,
) -> dict:
    """Train identically configured RNEs varying only the metric order p."""
    graph = get_dataset("BJ-S", fast=fast)
    errors: dict[float, float] = {}
    for p in ps:
        config = default_rne_config(graph, quality="fast" if fast else "standard")
        config.p = p
        config.seed = 7
        rne = build_rne(graph, config)
        errors[p] = rne.history.phase_errors["final"]
    report = format_series(
        "Fig 9 — e_rel vs Lp metric", list(errors), [e * 100 for e in errors.values()],
        x_label="p", y_label="mean e_rel %",
    )
    return {"errors": errors, "report": report}


# ======================================================================
# Fig. 10: the effect of dimension d (vs training volume)
# ======================================================================
def fig10_dimension(
    *,
    dims: tuple[int, ...] = (8, 16, 32, 64),
    sample_multipliers: tuple[int, ...] = (4, 16, 64),
    fast: bool = False,
) -> dict:
    """Error as a function of d and of the vertex-phase sample budget."""
    graph = get_dataset("BJ-S", fast=fast)
    if fast:
        dims = dims[:2]
        sample_multipliers = sample_multipliers[:2]
    table: dict[int, dict[int, float]] = {}
    for d in dims:
        table[d] = {}
        for mult in sample_multipliers:
            config = default_rne_config(graph, quality="fast" if fast else "standard")
            config.d = d
            config.vertex_samples = mult * graph.n
            config.seed = 5
            rne = build_rne(graph, config)
            table[d][mult] = rne.history.phase_errors["final"]
    rows = [
        [f"d={d}"] + [f"{table[d][m] * 100:.2f}" for m in sample_multipliers]
        for d in dims
    ]
    report = format_table(
        ["model"] + [f"{m}x|V| samples" for m in sample_multipliers],
        rows,
        title="Fig 10 — e_rel (%) vs dimension and training volume",
    )
    return {"table": table, "report": report}


# ======================================================================
# Fig. 11 (+ Figs. 7/8): hierarchical training and active fine-tuning
# ======================================================================
def fig11_hier_aft(*, fast: bool = False, seed: int = 3) -> dict:
    """Training curves of RNE-Naive / RNE-Hier, each with and without
    active fine-tuning, on one shared validation set.

    Also reports the Fig. 7 layout statistic (fraction of collapsed
    embedding pairs) for the flat vs hierarchical models.
    """
    graph = get_dataset("BJ-S", fast=fast)
    labeler = DistanceLabeler(graph)
    rng = np.random.default_rng(seed)
    val_pairs, val_phi = validation_set(graph, 400 if fast else 2000, labeler)
    d = 16 if fast else 64
    chunk = 4000 if fast else 20_000
    n_chunks = 3 if fast else 6
    epochs = 2 if fast else 3
    mean_phi = float(np.mean(val_phi))
    init_scale = mean_phi * np.sqrt(np.pi) / (2 * d)

    def rel(model) -> float:
        return error_report(model.query_pairs(val_pairs), val_phi).mean_rel

    # --- RNE-Naive: flat table on random pairs -------------------------
    naive = RNEModel.random(graph.n, d, scale=init_scale, seed=1)
    naive_curve: list[tuple[int, float]] = []
    consumed = 0
    for _ in range(n_chunks):
        pairs, phi = random_pair_samples(graph, chunk, labeler, rng)
        train_flat(naive, pairs, phi, TrainConfig(epochs=epochs), rng)
        consumed += len(pairs) * epochs
        naive_curve.append((consumed, rel(naive)))

    # --- RNE-Hier: Algorithm 1 phases 1+2 -------------------------------
    hierarchy = PartitionHierarchy(graph, fanout=4, leaf_size=32, seed=2)
    hier = HierarchicalRNE(hierarchy, d, init_scale=init_scale, seed=2)
    hier_curve: list[tuple[int, float]] = []
    consumed = 0
    adam = new_adam_states(hier)
    for focus in range(hierarchy.num_subgraph_levels):
        pairs, phi = subgraph_level_samples(hierarchy, focus, chunk // 2, labeler, rng)
        train_hierarchical(
            hier, pairs, phi, level_schedule(focus, hier.num_levels),
            TrainConfig(epochs=epochs), rng, adam_states=adam,
        )
        consumed += len(pairs) * epochs
        hier_curve.append((consumed, rel(hier)))
    landmarks = select_landmarks(graph, min(100, graph.n), seed=rng)
    for _ in range(n_chunks):
        pairs, phi = landmark_samples(graph, landmarks, chunk, labeler, rng)
        train_hierarchical(
            hier, pairs, phi, vertex_only_schedule(hier.num_levels),
            TrainConfig(epochs=epochs), rng, adam_states=adam,
        )
        consumed += len(pairs) * epochs
        hier_curve.append((consumed, rel(hier)))

    # --- AFT continuations (Fig. 11's red dashed tails) -----------------
    buckets = GridBuckets(graph, 8 if fast else 12, seed=4)
    ft_rounds = 2 if fast else 5
    naive_aft = naive.copy()
    res_naive = active_finetune(
        naive_aft, buckets, labeler, val_pairs, val_phi,
        rounds=ft_rounds, samples_per_round=chunk // 2, seed=5,
    )
    hier_aft = hier.clone()
    res_hier = active_finetune(
        hier_aft, buckets, labeler, val_pairs, val_phi,
        rounds=ft_rounds, samples_per_round=chunk // 2, seed=5,
    )

    # --- Fig. 7 layout statistics ---------------------------------------
    from ..core.analysis import layout_correlation

    collapse = {
        "naive": _collapse_fraction(naive.matrix),
        "hier": _collapse_fraction(hier.global_matrix()),
    }
    layout = {
        "naive": layout_correlation(naive.matrix, graph.coords),
        "hier": layout_correlation(hier.global_matrix(), graph.coords),
    }

    result = {
        "naive_curve": naive_curve,
        "hier_curve": hier_curve,
        "naive_aft": res_naive.mean_rel_errors,
        "hier_aft": res_hier.mean_rel_errors,
        "final": {
            "RNE-Naive": rel(naive),
            "RNE-Hier": rel(hier),
            "RNE-Naive-AFT": rel(naive_aft),
            "RNE-Hier-AFT": rel(hier_aft),
        },
        "collapse_fraction": collapse,
        "layout_correlation": layout,
    }
    lines = [
        format_series(
            "Fig 11 — RNE-Naive", [s for s, _ in naive_curve],
            [e * 100 for _, e in naive_curve], x_label="samples", y_label="e_rel %",
        ),
        format_series(
            "Fig 11 — RNE-Hier", [s for s, _ in hier_curve],
            [e * 100 for _, e in hier_curve], x_label="samples", y_label="e_rel %",
        ),
        format_table(
            ["model", "final e_rel %"],
            [[k, f"{v * 100:.2f}"] for k, v in result["final"].items()],
            title="Fig 11 — final errors",
        ),
        format_table(
            ["model", "collapsed pair fraction", "layout correlation"],
            [
                [k, f"{collapse[k]:.4f}", f"{layout[k]:.3f}"]
                for k in collapse
            ],
            title="Fig 7 — embedding layout statistics",
        ),
    ]
    result["report"] = "\n\n".join(lines)
    return result


# Collapse statistic shared with the embedding-layout example.
from ..core.analysis import collapse_fraction as _collapse_fraction  # noqa: E402


# ======================================================================
# Fig. 12: landmark-count ablation
# ======================================================================
def fig12_landmarks(
    *,
    counts: tuple[int, ...] | None = None,
    fast: bool = False,
    seed: int = 9,
) -> dict:
    """Vertex-phase sample selection: |U| landmarks vs random pairs.

    All arms branch from one shared hierarchy-phase model, train the vertex
    level with their strategy, and report validation error per epoch; the
    paper's finding is that a *moderate* |U| beats both extremes.
    """
    graph = get_dataset("BJ-S", fast=fast)
    labeler = DistanceLabeler(graph)
    rng = np.random.default_rng(seed)
    val_pairs, val_phi = validation_set(graph, 400 if fast else 2000, labeler)
    if counts is None:
        counts = (4, 16, 128) if fast else (10, 100, 1000, min(10_000, graph.n))
    counts = tuple(min(c, graph.n) for c in counts)
    d = 16 if fast else 64
    samples = 6000 if fast else 40_000
    epochs = 4 if fast else 10

    # Shared phase-1 model.
    hierarchy = PartitionHierarchy(graph, fanout=4, leaf_size=32, seed=1)
    mean_phi = float(np.mean(val_phi))
    base = HierarchicalRNE(
        hierarchy, d, init_scale=mean_phi * np.sqrt(np.pi) / (2 * d), seed=1
    )
    adam = new_adam_states(base)
    for focus in range(hierarchy.num_subgraph_levels):
        pairs, phi = subgraph_level_samples(hierarchy, focus, samples // 2, labeler, rng)
        train_hierarchical(
            base, pairs, phi, level_schedule(focus, base.num_levels),
            TrainConfig(epochs=2), rng, adam_states=adam,
        )

    def run_arm(sample_fn) -> list[float]:
        arm = base.clone()
        arm_adam = new_adam_states(arm)
        trace = []
        arm_rng = np.random.default_rng(33)
        for _ in range(epochs):
            pairs, phi = sample_fn(arm_rng)
            train_hierarchical(
                arm, pairs, phi, vertex_only_schedule(arm.num_levels),
                TrainConfig(epochs=1), arm_rng, adam_states=arm_adam,
            )
            trace.append(
                error_report(arm.query_pairs(val_pairs), val_phi).mean_rel
            )
        return trace

    traces: dict[str, list[float]] = {}
    for c in counts:
        landmarks = select_landmarks(graph, c, strategy="random", seed=17)
        traces[f"LM{c}"] = run_arm(
            lambda r, lm=landmarks: landmark_samples(graph, lm, samples, labeler, r)
        )
    traces["Random"] = run_arm(
        lambda r: random_pair_samples(graph, samples, labeler, r)
    )

    best = {name: float(np.min(t)) for name, t in traces.items()}
    report = format_table(
        ["strategy", "best e_rel %"],
        [[k, f"{v * 100:.2f}"] for k, v in best.items()],
        title="Fig 12 — landmark-based sample selection (best validation error)",
    )
    return {"traces": traces, "best": best, "report": report}


# ======================================================================
# Fig. 13: query time vs distance scale
# ======================================================================
def fig13_time_vs_distance(
    *,
    dataset: str = "BJ-S",
    methods: tuple[str, ...] = ("ch", "ach", "h2h", "lt", "rne"),
    fast: bool = False,
) -> dict:
    """Per-group mean query time for each method (Fig. 13)."""
    graph = get_dataset(dataset, fast=fast)
    groups = distance_scale_groups(
        graph, num_groups=3 if fast else 5, per_group=100 if fast else 400, seed=21
    )
    del graph
    times: dict[str, list[float]] = {m: [] for m in methods}
    for m in methods:
        built = get_method(dataset, m, fast=fast)
        for group in groups:
            times[m].append(_time_queries(built, group.pairs))
    bounds = [g.upper_bound for g in groups]
    lines = [
        format_series(
            f"Fig 13 — {m}", bounds, times[m],
            x_label="distance bound", y_label="us/query",
        )
        for m in methods
    ]
    return {"bounds": bounds, "times": times, "report": "\n\n".join(lines)}


# ======================================================================
# Fig. 14: representation-function ablation (RNE vs DR vs geometry)
# ======================================================================
def fig14_representation(
    *,
    multipliers: tuple[int, ...] = (1, 4, 16),
    fast: bool = False,
    seed: int = 14,
) -> dict:
    """e_rel of RNE and DR-1K/10K/100K versus training-set size, with the
    Euclidean/Manhattan constants as horizontal baselines."""
    graph = get_dataset("BJ-S", fast=fast)
    labeler = DistanceLabeler(graph)
    workload = get_workload("BJ-S", fast=fast)
    if fast:
        multipliers = multipliers[:2]

    results: dict[str, dict[int, float]] = {}
    # Geometry baselines — training-free constants.
    for metric in ("euclidean", "manhattan"):
        est = GeometricEstimator(graph, metric)
        err = error_report(est.query_pairs(workload.pairs), workload.truth).mean_rel
        results[metric] = {m: err for m in multipliers}

    # One shared DeepWalk embedding for the three DR sizes.
    dw = DeepWalk(graph, 16 if fast else 64, seed=2)
    dr_sizes = ("1K",) if fast else ("1K", "10K", "100K")
    rng = np.random.default_rng(seed)
    for size in dr_sizes:
        results[f"DR-{size}"] = {}
        for mult in multipliers:
            dr = DeepWalkRegression(graph, size, deepwalk=dw, seed=3)
            pairs, phi = random_pair_samples(graph, mult * graph.n, labeler, rng)
            dr.fit(pairs, phi, epochs=10 if fast else 30, seed=3)
            err = error_report(dr.query_pairs(workload.pairs), workload.truth).mean_rel
            results[f"DR-{size}"][mult] = err

    results["RNE"] = {}
    for mult in multipliers:
        config = default_rne_config(graph, quality="fast" if fast else "standard")
        config.vertex_samples = mult * graph.n
        config.seed = 4
        rne = build_rne(graph, config)
        err = error_report(rne.query_pairs(workload.pairs), workload.truth).mean_rel
        results["RNE"][mult] = err

    rows = [
        [name] + [f"{results[name][m] * 100:.2f}" for m in multipliers]
        for name in results
    ]
    report = format_table(
        ["model"] + [f"{m}x|V|" for m in multipliers],
        rows,
        title="Fig 14 — e_rel (%) vs representation function and training size",
    )
    return {"results": results, "report": report}


# ======================================================================
# Fig. 15: cumulative error distribution
# ======================================================================
def fig15_error_cdf(
    *,
    dataset: str = "BJ-S",
    methods: tuple[str, ...] = ("rne", "ach", "lt", "oracle", "euclidean", "manhattan"),
    thresholds: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.10, 0.20),
    fast: bool = False,
) -> dict:
    """Share of queries below each relative-error threshold, per method."""
    workload = get_workload(dataset, fast=fast)
    curves: dict[str, np.ndarray] = {}
    for m in methods:
        built = get_method(dataset, m, fast=fast)
        pred = built.query_pairs(workload.pairs)
        curves[m] = error_cdf(pred, workload.truth, np.array(thresholds))
    lines = [
        format_series(
            f"Fig 15 — {m}", [f"{t * 100:g}%" for t in thresholds],
            list(curves[m] * 100), x_label="error <=", y_label="% of queries",
        )
        for m in methods
    ]
    return {"thresholds": thresholds, "curves": curves, "report": "\n\n".join(lines)}


# ======================================================================
# Fig. 16: range (and kNN) query performance
# ======================================================================
def fig16_range_knn(
    *,
    dataset: str = "BJ-S",
    tau_fractions: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3),
    k_values: tuple[int, ...] = (1, 5, 10),
    fast: bool = False,
) -> dict:
    """F1 and query time of range/kNN methods against exact ground truth.

    Methods: RNE's embedding tree index, the G-tree (V-tree stand-in,
    exact), the distance oracle, and KD-tree Euclidean/Manhattan.
    """
    graph = get_dataset(dataset, fast=fast)
    work = spatial_workload(
        graph,
        num_sources=10 if fast else 40,
        num_targets=min(graph.n // 2, 100 if fast else 400),
        seed=31,
    )
    rne_built = get_method(dataset, "rne", fast=fast)
    rne = rne_built.impl
    index = rne.index if rne.index is not None else EmbeddingTreeIndex(
        rne.hierarchy, rne.model.matrix, rne.model.p
    )
    gtree = GTreeIndex(graph, num_cells=8 if fast else 16, seed=1)
    euclid = GeometricEstimator(graph, "euclidean")
    manhattan = GeometricEstimator(graph, "manhattan")
    oracle = get_method(dataset, "oracle", fast=fast).impl

    diameter = float(np.max(rne.model.query_pairs(get_workload(dataset, fast=fast).pairs)))
    taus = [f * diameter for f in tau_fractions]

    range_methods = {
        "RNE": index.range_query,
        "G-tree": gtree.range_query,
        "Oracle": lambda s, targets, tau: np.array(
            [t for t in targets if oracle.query(int(s), int(t)) <= tau], dtype=np.int64
        ),
        "Euclidean": euclid.range_query,
        "Manhattan": manhattan.range_query,
    }
    f1: dict[str, list[float]] = {m: [] for m in range_methods}
    qtime: dict[str, list[float]] = {m: [] for m in range_methods}
    for tau in taus:
        exact = {
            int(s): range_true(graph, int(s), work.targets, tau) for s in work.sources
        }
        for name, fn in range_methods.items():
            scores = []
            start = time.perf_counter()
            for s in work.sources:
                got = fn(int(s), work.targets, tau)
                scores.append(f1_score(got, exact[int(s)]))
            qtime[name].append(
                (time.perf_counter() - start) / len(work.sources) * 1e6
            )
            f1[name].append(float(np.mean(scores)))

    # kNN recall@k (same methods via their kNN entry points).
    from ..algorithms.knn import knn_true

    knn_methods = {
        "RNE": index.knn_query,
        "G-tree": gtree.knn,
        "Euclidean": euclid.knn,
        "Manhattan": manhattan.knn,
    }
    knn_f1: dict[str, list[float]] = {m: [] for m in knn_methods}
    for k in k_values:
        exact_k = {
            int(s): knn_true(graph, int(s), work.targets, k) for s in work.sources
        }
        for name, fn in knn_methods.items():
            scores = [
                f1_score(fn(int(s), work.targets, k), exact_k[int(s)])
                for s in work.sources
            ]
            knn_f1[name].append(float(np.mean(scores)))

    lines = []
    for name in range_methods:
        lines.append(
            format_series(
                f"Fig 16 — range F1, {name}",
                [f"{f:.2f}D" for f in tau_fractions], f1[name],
                x_label="tau", y_label="F1",
            )
        )
    lines.append(
        format_table(
            ["method"] + [f"us/q tau={f:.2f}D" for f in tau_fractions],
            [[m] + [f"{t:.1f}" for t in qtime[m]] for m in range_methods],
            title="Fig 16 — range query time",
        )
    )
    lines.append(
        format_table(
            ["method"] + [f"F1@k={k}" for k in k_values],
            [[m] + [f"{v:.3f}" for v in knn_f1[m]] for m in knn_methods],
            title="Fig 16 — kNN accuracy",
        )
    )
    return {
        "taus": taus,
        "f1": f1,
        "qtime": qtime,
        "knn_f1": knn_f1,
        "report": "\n\n".join(lines),
    }


# ======================================================================
# Fig. 17: errors across distance scales
# ======================================================================
def fig17_error_vs_distance(
    *,
    dataset: str = "BJ-S",
    methods: tuple[str, ...] = ("rne", "ach", "lt", "oracle"),
    fast: bool = False,
) -> dict:
    """Per-distance-group e_rel (line) and e_abs (bar) for each method."""
    graph = get_dataset(dataset, fast=fast)
    groups = distance_scale_groups(
        graph, num_groups=3 if fast else 5, per_group=150 if fast else 500, seed=22
    )
    del graph
    rel: dict[str, list[float]] = {m: [] for m in methods}
    abs_: dict[str, list[float]] = {m: [] for m in methods}
    for m in methods:
        built = get_method(dataset, m, fast=fast)
        for group in groups:
            pred = built.query_pairs(group.pairs)
            rep = error_report(pred, group.truth)
            rel[m].append(rep.mean_rel)
            abs_[m].append(rep.mean_abs)
    bounds = [g.upper_bound for g in groups]
    lines = []
    for m in methods:
        lines.append(
            format_series(
                f"Fig 17 — {m} e_rel %", bounds, [e * 100 for e in rel[m]],
                x_label="distance bound", y_label="e_rel %",
            )
        )
        lines.append(
            format_series(
                f"Fig 17 — {m} e_abs", bounds, abs_[m],
                x_label="distance bound", y_label="e_abs",
            )
        )
    return {"bounds": bounds, "rel": rel, "abs": abs_, "report": "\n\n".join(lines)}


def _serving_runner(**kw) -> str:
    from .serving import serving_benchmark

    return serving_benchmark(**kw)["report"]


def _labeling_runner(**kw) -> str:
    from .labeling import labeling_benchmark

    return labeling_benchmark(**kw)["report"]


def _updates_runner(**kw) -> str:
    from .updates import updates_benchmark

    return updates_benchmark(**kw)["report"]


def _ablation_runner(name: str):
    def run(**kw):
        from . import ablations

        fn = getattr(ablations, name)
        return fn(**kw)["report"]

    return run


#: name -> runner, used by the CLI.
EXPERIMENTS = {
    "table3": lambda **kw: table3(**kw),
    "table4": lambda **kw: table4(**kw),
    "fig9": lambda **kw: fig9_lp(**kw)["report"],
    "fig10": lambda **kw: fig10_dimension(**kw)["report"],
    "fig11": lambda **kw: fig11_hier_aft(**kw)["report"],
    "fig12": lambda **kw: fig12_landmarks(**kw)["report"],
    "fig13": lambda **kw: fig13_time_vs_distance(**kw)["report"],
    "fig14": lambda **kw: fig14_representation(**kw)["report"],
    "fig15": lambda **kw: fig15_error_cdf(**kw)["report"],
    "fig16": lambda **kw: fig16_range_knn(**kw)["report"],
    "fig17": lambda **kw: fig17_error_vs_distance(**kw)["report"],
    "serving": lambda **kw: _serving_runner(**kw),
    "labeling": lambda **kw: _labeling_runner(**kw),
    "updates": lambda **kw: _updates_runner(**kw),
    "ablate-joint": _ablation_runner("ablate_joint_pass"),
    "ablate-optimizer": _ablation_runner("ablate_optimizer"),
    "ablate-landmarks": _ablation_runner("ablate_landmark_strategy"),
    "scaling": _ablation_runner("scaling_experiment"),
}
