"""Plain-text reporting: the tables and series the paper's figures plot.

No plotting dependencies — every experiment emits aligned text tables (for
tables) or ``x -> y`` series blocks (for figures), which EXPERIMENTS.md
captures verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], *, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one figure series as aligned ``x -> y`` lines."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>12} -> {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def human_bytes(num: int | float) -> str:
    """Human-readable byte counts for index-size tables."""
    num = float(num)
    for unit in ("B", "KB", "MB", "GB"):
        if num < 1024 or unit == "GB":
            return f"{num:.1f} {unit}"
        num /= 1024
    return f"{num:.1f} GB"  # pragma: no cover - unreachable
