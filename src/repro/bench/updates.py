"""Live-update benchmark — produces ``BENCH_updates.json``.

The claim under test: after an edge-weight change, the versioned live
update (:mod:`repro.live` — incremental retrain of the affected region +
atomic publish + subtree-local index refresh + cache invalidation) brings
the serving model up to date **much faster than rebuilding it** from
scratch on the new graph, at comparable accuracy.  At full scale the
graph has >= 50k vertices (224 x 224 grid), where a rebuild's ground-truth
labelling alone runs thousands of Dijkstra trees while the update labels
only pairs anchored in the small affected region.

Measured, with the *same* scaled-down training budget for both arms so
the ratio is the signal rather than budget asymmetry:

* **incremental** — wall time of one ``LiveUpdateManager.update`` call
  (retrain + publish + invalidate; ``swap_seconds`` reported separately to
  show serving-visible downtime is milliseconds),
* **rebuild** — wall time of ``build_rne`` on the updated graph,
* **accuracy** — mean relative error of both resulting models against
  exact distances on a shared held-out validation set of the new graph,
* **invalidation** — hot rows purged / SSSP trees dropped, and the
  refreshed-node count of the tree index versus its total node count.

Results land in ``benchmarks/results/BENCH_updates.json`` plus a text
report.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

import numpy as np

from ..core.metrics import error_report
from ..core.pipeline import RNEConfig, build_rne
from ..core.sampling import DistanceLabeler, validation_set
from ..graph.generators import grid_city
from ..live import LiveUpdateManager, perturb_weights
from ..serving import BatchQueryEngine
from .reporting import format_table

__all__ = ["updates_benchmark"]


def _default_out_path() -> str:
    candidate = os.path.join("benchmarks", "results")
    directory = candidate if os.path.isdir(candidate) else "."
    return os.path.join(directory, "BENCH_updates.json")


def _build_config(fast: bool, seed: int) -> RNEConfig:
    """One scaled-down budget shared by the rebuild arm and the original
    model, so incremental-vs-rebuild compares like with like."""
    if fast:
        return RNEConfig(
            d=16,
            hier_samples_per_level=800,
            hier_epochs=2,
            vertex_samples=2_000,
            vertex_epochs=2,
            num_landmarks=8,
            joint_epochs=1,
            joint_samples=800,
            active=False,
            finetune_rounds=1,
            finetune_samples=500,
            validation_size=200,
            seed=seed,
        )
    return RNEConfig(
        d=16,
        hier_samples_per_level=1_500,
        hier_epochs=1,
        vertex_samples=3_000,
        vertex_epochs=1,
        num_landmarks=16,
        joint_epochs=1,
        joint_samples=1_000,
        active=False,
        finetune_rounds=1,
        finetune_samples=1_000,
        validation_size=200,
        seed=seed,
    )


def updates_benchmark(
    *,
    fast: bool = False,
    out_path: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run the live-update benchmark; returns the results dict (incl. report)."""
    side = 24 if fast else 224  # full scale: 224^2 ~ 50k vertices
    perturb_count = 8 if fast else 40
    update_samples = 1_000 if fast else 2_500
    update_rounds = 2
    validation_size = 200

    graph = grid_city(side, side, seed=seed)
    config = _build_config(fast, seed)

    build_start = time.perf_counter()
    rne = build_rne(graph, config)
    initial_build_seconds = time.perf_counter() - build_start

    engine = BatchQueryEngine.from_rne(rne)
    manager = LiveUpdateManager(rne, engines=(engine,))
    new_graph, changed = perturb_weights(
        graph, factor=3.0, count=perturb_count, seed=seed + 1
    )

    # Warm the hot-row cache so invalidation counts reflect real traffic.
    rng = np.random.default_rng(seed + 2)
    targets = np.sort(
        rng.choice(graph.n, size=min(200, graph.n), replace=False)
    ).astype(np.int64)
    prepared = engine.prepare(targets)
    warm_sources = rng.choice(graph.n, size=32, replace=False).astype(np.int64)
    for _ in range(3):  # perf: loop-ok (cache warm-up traffic)
        engine.knn(warm_sources, prepared, 5)

    # -- incremental arm -------------------------------------------------
    stats = manager.update(
        new_graph,
        changed,
        samples=update_samples,
        rounds=update_rounds,
        validation_size=validation_size,
        seed=seed + 3,
    )
    incremental_seconds = stats.total_seconds

    # -- rebuild arm ------------------------------------------------------
    rebuild_start = time.perf_counter()
    rebuilt = build_rne(new_graph, config)
    rebuild_seconds = time.perf_counter() - rebuild_start

    # -- accuracy on a shared held-out set of the *new* graph -------------
    with DistanceLabeler(new_graph) as labeler:
        val_pairs, val_phi = validation_set(
            new_graph, validation_size, labeler, seed=seed + 4
        )
    updated_err = error_report(rne.query_pairs(val_pairs), val_phi).mean_rel
    rebuilt_err = error_report(rebuilt.query_pairs(val_pairs), val_phi).mean_rel

    index = rne.index
    if index is None:  # hierarchy-backed by construction
        raise RuntimeError("build_rne returned a hierarchical model without an index")
    results: Dict[str, Any] = {
        "graph": {"vertices": graph.n, "edges": graph.m, "side": side},
        "fast": fast,
        "perturbed_edges": int(changed.shape[0]),
        "initial_build_seconds": initial_build_seconds,
        "incremental": {
            "total_seconds": incremental_seconds,
            "train_seconds": stats.train_seconds,
            "swap_seconds": stats.swap_seconds,
            "published": stats.published,
            "version_after": stats.version_after,
            "affected_vertices": stats.affected_vertices,
            "changed_rows": stats.changed_rows,
            "index_nodes_refreshed": stats.index_nodes_refreshed,
            "index_nodes_total": int(index.node_radii.size),
            "engine_invalidations": stats.engine_invalidations,
            "mean_rel_error": updated_err,
        },
        "rebuild": {
            "total_seconds": rebuild_seconds,
            "mean_rel_error": rebuilt_err,
        },
        "speedup": rebuild_seconds / incremental_seconds,
        "incremental_faster": bool(incremental_seconds < rebuild_seconds),
    }

    path = out_path if out_path is not None else _default_out_path()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    results["out_path"] = path

    inc = results["incremental"]
    rows = [
        [
            "incremental",
            f"{incremental_seconds:.2f}",
            f"{inc['mean_rel_error'] * 100:.2f}%",
            f"{inc['swap_seconds'] * 1e3:.2f} ms",
            f"{inc['index_nodes_refreshed']}/{inc['index_nodes_total']}",
        ],
        [
            "rebuild",
            f"{rebuild_seconds:.2f}",
            f"{results['rebuild']['mean_rel_error'] * 100:.2f}%",
            "-",
            f"{inc['index_nodes_total']}/{inc['index_nodes_total']}",
        ],
    ]
    report = "\n\n".join(
        [
            format_table(
                ["arm", "seconds", "mean rel err", "serving swap", "index nodes"],
                rows,
                title=(
                    f"Live update vs rebuild — {graph.n} vertices, "
                    f"{results['perturbed_edges']} edges reweighted "
                    f"(speedup {results['speedup']:.1f}x, "
                    f"{'incremental faster' if results['incremental_faster'] else 'REBUILD FASTER'})"
                ),
            ),
            f"stats written to {path}",
        ]
    )
    results["report"] = report
    return results
