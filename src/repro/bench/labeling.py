"""Ground-truth labelling benchmark — produces ``BENCH_labeling.json``.

Measures, on a generated road network (>= 50k vertices at full scale):

* **parallel SSSP throughput** — ``SSSPWorkerPool.sssp_many`` at several
  worker counts versus the serial kernel, with bit-identity asserted on
  every gather (the acceptance criterion is a >= 2x speedup at 4 workers
  on a multi-core host),
* **labeler parity** — :class:`ParallelDistanceLabeler` versus the serial
  :class:`DistanceLabeler` on the same pair workload: identical labels,
  identical ``sssp_runs`` / ``cache_hits`` accounting,
* **sampling budgets** — every selection strategy delivers exactly the
  requested number of pairs,

and records pool utilization plus the host's CPU budget (a single-core
machine cannot show a wall-clock speedup no matter how correct the pool
is, so ``cpu_count`` is part of the result) into a JSON file (default
``benchmarks/results/BENCH_labeling.json``) plus a text report.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..algorithms.dijkstra import sssp_many
from ..core.sampling import (
    DistanceLabeler,
    GridBuckets,
    landmark_samples,
    random_pair_samples,
)
from ..graph.generators import grid_city
from ..parallel import ParallelDistanceLabeler, SSSPWorkerPool
from .reporting import format_table

__all__ = ["labeling_benchmark"]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover — non-Linux hosts
        return os.cpu_count() or 1


def _default_out_path() -> str:
    candidate = os.path.join("benchmarks", "results")
    directory = candidate if os.path.isdir(candidate) else "."
    return os.path.join(directory, "BENCH_labeling.json")


def labeling_benchmark(
    *,
    fast: bool = False,
    out_path: Optional[str] = None,
    seed: int = 0,
    worker_counts: tuple = (2, 4),
) -> Dict[str, Any]:
    """Run the labelling benchmark; returns the results dict (incl. report)."""
    side = 24 if fast else 224  # full scale: 224^2 ~ 50k vertices
    num_sources = 16 if fast else 64
    num_pairs = 2_000 if fast else 50_000
    rng = np.random.default_rng(seed)

    graph = grid_city(side, side, seed=seed)
    sources = rng.choice(graph.n, size=min(num_sources, graph.n), replace=False).astype(
        np.int64
    )

    results: Dict[str, Any] = {
        "graph": {"vertices": graph.n, "edges": graph.m, "side": side},
        "fast": fast,
        "cpu_count": _cpu_count(),
    }

    # -- parallel SSSP throughput vs the serial kernel -------------------
    start = time.perf_counter()
    serial_rows = sssp_many(graph, sources)
    serial_seconds = time.perf_counter() - start
    serial_rate = sources.size / serial_seconds
    results["sssp"] = {
        "sources": int(sources.size),
        "serial_seconds": serial_seconds,
        "serial_sources_per_second": serial_rate,
        "workers": {},
    }
    for workers in worker_counts:
        with SSSPWorkerPool(graph, int(workers)) as pool:
            pool.sssp_many(sources[:2])  # warm the workers up
            start = time.perf_counter()
            rows = pool.sssp_many(sources)
            seconds = time.perf_counter() - start
            if not np.array_equal(rows, serial_rows):
                raise AssertionError(
                    f"parallel SSSP rows diverged from serial at {workers} workers"
                )
            results["sssp"]["workers"][str(int(workers))] = {
                "seconds": seconds,
                "sources_per_second": sources.size / seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "utilization": pool.stats.utilization,
                "bit_identical": True,
            }

    # -- labeler parity: labels + accounting must match serial exactly ---
    pairs = rng.integers(0, graph.n, size=(num_pairs, 2)).astype(np.int64)
    # Narrow the source pool so the cache-hit path is exercised too.
    pairs[:, 0] = sources[pairs[:, 0] % sources.size]
    serial_labeler = DistanceLabeler(graph, cache_size=256)
    serial_labels = serial_labeler.label(pairs)
    serial_labeler.label(pairs[: num_pairs // 2])  # warm-cache second pass
    parity: Dict[str, Any] = {"pairs": int(num_pairs)}
    for workers in worker_counts:
        with ParallelDistanceLabeler(
            graph, workers=int(workers), cache_size=256
        ) as labeler:
            labels = labeler.label(pairs)
            labeler.label(pairs[: num_pairs // 2])
            snap = labeler.snapshot()
            parity[str(int(workers))] = {
                "labels_identical": bool(np.array_equal(labels, serial_labels)),
                "sssp_runs_match": snap["sssp_runs"] == serial_labeler.sssp_runs,
                "cache_hits_match": snap["cache_hits"] == serial_labeler.cache_hits,
                "mode": snap["mode"],
            }
    results["labeler_parity"] = parity

    # -- sampling budgets: every strategy delivers the exact count -------
    budget = 500 if fast else 5_000
    labeler = DistanceLabeler(graph)
    landmarks = rng.choice(graph.n, size=min(32, graph.n), replace=False).astype(
        np.int64
    )
    got_random, _ = random_pair_samples(
        graph, budget, labeler, np.random.default_rng(seed + 1)
    )
    got_landmark, _ = landmark_samples(
        graph, landmarks, budget, labeler, np.random.default_rng(seed + 2)
    )
    buckets = GridBuckets(graph, 8, seed=seed + 3)
    got_bucket = buckets.sample(
        int(buckets.nonempty_buckets()[0]), budget, np.random.default_rng(seed + 4)
    )
    results["sampling_budgets"] = {
        "requested": budget,
        "random_pairs": int(got_random.shape[0]),
        "landmark_pairs": int(got_landmark.shape[0]),
        "grid_bucket_pairs": int(got_bucket.shape[0]),
        "all_exact": bool(
            got_random.shape[0] == budget
            and got_landmark.shape[0] == budget
            and got_bucket.shape[0] == budget
        ),
    }

    path = out_path if out_path is not None else _default_out_path()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    results["out_path"] = path

    rows: List[List[str]] = [
        ["serial", f"{serial_rate:,.1f}", "1.0x", "-", "-"]
    ]
    for workers, rec in results["sssp"]["workers"].items():
        rows.append(
            [
                f"{workers} workers",
                f"{rec['sources_per_second']:,.1f}",
                f"{rec['speedup_vs_serial']:.2f}x",
                f"{rec['utilization']:.2f}",
                "yes" if rec["bit_identical"] else "NO",
            ]
        )
    parity_rows = [
        [
            f"{workers} workers",
            "yes" if rec["labels_identical"] else "NO",
            "yes" if rec["sssp_runs_match"] else "NO",
            "yes" if rec["cache_hits_match"] else "NO",
        ]
        for workers, rec in parity.items()
        if isinstance(rec, dict)
    ]
    budgets = results["sampling_budgets"]
    report = "\n\n".join(
        [
            format_table(
                ["config", "sources/s", "speedup", "utilization", "identical"],
                rows,
                title=(
                    f"SSSP labelling throughput — {graph.n} vertices, "
                    f"{sources.size} sources ({results['cpu_count']} CPU core(s))"
                ),
            ),
            format_table(
                ["config", "labels", "sssp_runs", "cache_hits"],
                parity_rows,
                title=f"Labeler parity vs serial — {num_pairs} pairs",
            ),
            (
                f"sampling budgets: requested {budgets['requested']}, "
                f"random {budgets['random_pairs']}, "
                f"landmark {budgets['landmark_pairs']}, "
                f"grid-bucket {budgets['grid_bucket_pairs']} "
                f"({'exact' if budgets['all_exact'] else 'SHORTFALL'})"
            ),
            f"stats written to {path}",
        ]
    )
    results["report"] = report
    return results
