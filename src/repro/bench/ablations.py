"""Ablation experiments for this repo's own design choices.

DESIGN.md documents three engineering decisions on top of the paper's
recipe (lazy Adam, residual-scaled steps, the phase-2.5 joint polish) and
one substitution (synthetic datasets).  These runners quantify each:

* :func:`ablate_joint_pass` — final error with/without phase 2.5;
* :func:`ablate_optimizer` — lazy Adam vs the paper's SGD at equal budget;
* :func:`ablate_landmark_strategy` — farthest vs random vs degree
  landmark selection for the vertex phase (Sec. V-B offers the choice);
* :func:`scaling_experiment` — RNE error/build/query versus graph size,
  plus the distance oracle's construction wall, making the "scales well"
  claim and the oracle's failure mode measurable.
"""

from __future__ import annotations

import time

import numpy as np

from ..algorithms.oracle import DistanceOracle
from ..core import build_rne, error_report
from ..graph import grid_city
from .experiments import get_dataset, get_workload
from .methods import default_rne_config
from .reporting import format_table


def ablate_joint_pass(*, dataset: str = "BJ-S", fast: bool = False) -> dict:
    """Phase-2.5 joint polish: on vs off, same seed and budgets.

    The effect grows with graph size/irregularity — near-neutral on the
    radial BJ-S, large on the Delaunay FLA-S (see EXPERIMENTS.md).
    """
    graph = get_dataset(dataset, fast=fast)
    workload = get_workload(dataset, fast=fast)
    results = {}
    for label, joint in (("with joint pass", True), ("without joint pass", False)):
        config = default_rne_config(graph, quality="fast" if fast else "standard")
        if not joint:
            config.joint_epochs = 0
        rne = build_rne(graph, config)
        rep = error_report(rne.query_pairs(workload.pairs), workload.truth)
        results[label] = {
            "mean_rel": rep.mean_rel,
            "build_s": rne.history.build_seconds,
        }
    report = format_table(
        ["variant", "e_rel %", "build s"],
        [
            [k, f"{v['mean_rel'] * 100:.2f}", f"{v['build_s']:.1f}"]
            for k, v in results.items()
        ],
        title="Ablation — phase-2.5 joint polish",
    )
    return {"results": results, "report": report}


def ablate_optimizer(*, dataset: str = "BJ-S", fast: bool = False) -> dict:
    """Lazy Adam vs plain SGD at identical sample budgets.

    SGD's stable learning rate scales like ``1 / (2d)`` (gradient magnitude
    is residual * d); we give it that rate rather than a strawman.
    """
    graph = get_dataset(dataset, fast=fast)
    workload = get_workload(dataset, fast=fast)
    results = {}
    for label, optimizer in (("lazy adam", "adam"), ("sgd (paper)", "sgd")):
        config = default_rne_config(graph, quality="fast" if fast else "standard")
        config.optimizer = optimizer
        if optimizer == "sgd":
            config.lr = 0.5 / (2 * config.d)
        rne = build_rne(graph, config)
        rep = error_report(rne.query_pairs(workload.pairs), workload.truth)
        results[label] = rep.mean_rel
    report = format_table(
        ["optimizer", "e_rel %"],
        [[k, f"{v * 100:.2f}"] for k, v in results.items()],
        title="Ablation — optimizer (equal sample budget)",
    )
    return {"results": results, "report": report}


def ablate_landmark_strategy(*, dataset: str = "BJ-S", fast: bool = False) -> dict:
    """Vertex-phase landmark selection strategy (paper Sec. V-B)."""
    graph = get_dataset(dataset, fast=fast)
    workload = get_workload(dataset, fast=fast)
    results = {}
    for strategy in ("farthest", "random", "degree"):
        config = default_rne_config(graph, quality="fast" if fast else "standard")
        config.landmark_strategy = strategy
        rne = build_rne(graph, config)
        rep = error_report(rne.query_pairs(workload.pairs), workload.truth)
        results[strategy] = rep.mean_rel
    report = format_table(
        ["strategy", "e_rel %"],
        [[k, f"{v * 100:.2f}"] for k, v in results.items()],
        title="Ablation — landmark selection strategy",
    )
    return {"results": results, "report": report}


def scaling_experiment(
    *,
    sides: tuple[int, ...] = (12, 20, 32),
    oracle_pair_budget: int = 400_000,
    fast: bool = False,
    seed: int = 0,
) -> dict:
    """RNE error/build/query vs |V|; the oracle's construction wall.

    The paper's scalability claims: RNE's query cost is O(d) independent
    of |V|, its index O(|V| d); Distance Oracle construction blows up.
    """
    if fast:
        sides = sides[:2]
    rows = []
    oracle_status = []
    for side in sides:
        graph = grid_city(side, side, seed=3)
        config = default_rne_config(graph, quality="fast" if fast else "standard")
        start = time.perf_counter()
        rne = build_rne(graph, config)
        build_s = time.perf_counter() - start
        rng = np.random.default_rng(seed)
        pairs = rng.integers(graph.n, size=(2000, 2))
        start = time.perf_counter()
        rne.query_pairs(pairs)
        per_query_us = (time.perf_counter() - start) / len(pairs) * 1e6
        err = rne.history.phase_errors["final"]
        rows.append([graph.n, f"{err * 100:.2f}", f"{build_s:.1f}",
                     f"{per_query_us:.2f}", rne.index_bytes()])

        try:
            oracle = DistanceOracle(graph, epsilon=0.25, max_pairs=oracle_pair_budget)
            oracle_status.append([graph.n, f"{oracle.num_pairs} pairs"])
        except MemoryError:
            oracle_status.append([graph.n, f"WALL (> {oracle_pair_budget} pairs)"])

    report = "\n\n".join(
        [
            format_table(
                ["|V|", "e_rel %", "build s", "us/query", "index bytes"],
                rows,
                title="Scaling — RNE vs graph size",
            ),
            format_table(
                ["|V|", "oracle (eps=0.25) construction"],
                oracle_status,
                title="Scaling — Distance Oracle construction wall",
            ),
        ]
    )
    return {"rows": rows, "oracle": oracle_status, "report": report}
