"""Command-line entry point: run any paper experiment from the shell.

Usage::

    rne list                 # show available experiments
    rne table3               # regenerate Table III
    rne fig11 --fast         # quick, scaled-down version
    rne all                  # everything (slow)

Equivalent to ``python -m repro.cli <experiment>``.
"""

from __future__ import annotations

import argparse
import sys

from .bench.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rne",
        description="Run RNE reproduction experiments (ICDE 2021 tables/figures).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'rne list'), 'list', or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down datasets and budgets (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for name in names:
        print(f"== {name} ==")
        print(EXPERIMENTS[name](fast=args.fast))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
