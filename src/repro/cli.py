"""Command-line entry point: run any paper experiment from the shell.

Usage::

    rne list                 # show available experiments
    rne table3               # regenerate Table III
    rne fig11 --fast         # quick, scaled-down version
    rne all                  # everything (slow); failures don't stop the run
    rne train --out model.npz --checkpoint-dir ckpts   # crash-safe training
    rne train --out model.npz --checkpoint-dir ckpts --resume

Equivalent to ``python -m repro.cli <experiment>``.
"""

from __future__ import annotations

import argparse
import sys

from .bench.experiments import EXPERIMENTS


def _run_experiments(names: list[str], *, fast: bool) -> int:
    """Run each experiment, isolating failures.

    A crash in one experiment (bad dataset, diverged training, ...) must not
    take down the rest of an ``rne all`` run: the exception is caught, the
    experiment is reported in a failure summary, and the exit code is 1.
    """
    failed: list[tuple[str, BaseException]] = []
    for name in names:
        print(f"== {name} ==")
        try:
            print(EXPERIMENTS[name](fast=fast))
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            failed.append((name, exc))
            print(
                f"experiment '{name}' failed: {exc.__class__.__name__}: {exc}",
                file=sys.stderr,
            )
        print()
    if failed:
        summary = ", ".join(name for name, _ in failed)
        print(
            f"{len(failed)}/{len(names)} experiment(s) failed: {summary}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_train(argv: list[str]) -> int:
    """``rne train``: build an RNE with checkpointing and save the artifact."""
    parser = argparse.ArgumentParser(
        prog="rne train",
        description=(
            "Train an RNE on a synthetic grid city with crash-safe "
            "checkpoints; interrupt it and re-run with --resume to continue."
        ),
    )
    parser.add_argument("--out", required=True, help="output artifact (.npz)")
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-stage training checkpoints",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir",
    )
    parser.add_argument("--size", type=int, default=16, help="grid side length")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    from .core.pipeline import RNEConfig, build_rne
    from .graph.generators import grid_city
    from .reliability.checkpoint import TrainingDiverged

    graph = grid_city(args.size, args.size, seed=args.seed)
    try:
        rne = build_rne(
            graph,
            RNEConfig(seed=args.seed),
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except TrainingDiverged as exc:
        print(f"training diverged beyond recovery: {exc}", file=sys.stderr)
        return 1
    rne.save(args.out)
    for note in rne.history.notes:
        print(f"note: {note}")
    print(
        f"trained on {graph.n} vertices, final mean relative error "
        f"{rne.history.phase_errors['final'] * 100:.2f}%, saved to {args.out}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "train":
        return _run_train(argv[1:])

    parser = argparse.ArgumentParser(
        prog="rne",
        description="Run RNE reproduction experiments (ICDE 2021 tables/figures).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'rne list'), 'list', 'all', or 'train'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down datasets and budgets (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    return _run_experiments(names, fast=args.fast)


if __name__ == "__main__":
    raise SystemExit(main())
