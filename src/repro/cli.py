"""Command-line entry point: run any paper experiment from the shell.

Usage::

    rne list                 # show available experiments
    rne table3               # regenerate Table III
    rne fig11 --fast         # quick, scaled-down version
    rne all                  # everything (slow); failures don't stop the run
    rne train --out model.npz --checkpoint-dir ckpts   # crash-safe training
    rne train --out model.npz --checkpoint-dir ckpts --resume
    rne serve --model model.npz --targets random:64    # stdin query server
    rne query --model model.npz "dist 0 5" "knn 3 2"   # one-shot batch
    rne query --batch queries.txt --stats-out stats.json
    rne update --model model.npz --out model.npz       # live weight update

Equivalent to ``python -m repro.cli <experiment>``.
"""

from __future__ import annotations

import argparse
import sys

from .bench.experiments import EXPERIMENTS


def _run_experiments(names: list[str], *, fast: bool) -> int:
    """Run each experiment, isolating failures.

    A crash in one experiment (bad dataset, diverged training, ...) must not
    take down the rest of an ``rne all`` run: the exception is caught, the
    experiment is reported in a failure summary, and the exit code is 1.
    """
    failed: list[tuple[str, BaseException]] = []
    for name in names:
        print(f"== {name} ==")
        try:
            print(EXPERIMENTS[name](fast=fast))
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            failed.append((name, exc))
            print(
                f"experiment '{name}' failed: {exc.__class__.__name__}: {exc}",
                file=sys.stderr,
            )
        print()
    if failed:
        summary = ", ".join(name for name, _ in failed)
        print(
            f"{len(failed)}/{len(names)} experiment(s) failed: {summary}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_train(argv: list[str]) -> int:
    """``rne train``: build an RNE with checkpointing and save the artifact."""
    parser = argparse.ArgumentParser(
        prog="rne train",
        description=(
            "Train an RNE on a synthetic grid city with crash-safe "
            "checkpoints; interrupt it and re-run with --resume to continue."
        ),
    )
    parser.add_argument("--out", required=True, help="output artifact (.npz)")
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-stage training checkpoints",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir",
    )
    parser.add_argument("--size", type=int, default=16, help="grid side length")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "ground-truth labelling worker processes (default: REPRO_WORKERS "
            "env var, else serial); the trained model is bit-identical for "
            "any value"
        ),
    )
    parser.add_argument(
        "--no-prefetch",
        action="store_true",
        help="disable overlapping sample labelling with SGD epochs",
    )
    args = parser.parse_args(argv)

    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    from .core.pipeline import RNEConfig, build_rne
    from .graph.generators import grid_city
    from .reliability.checkpoint import TrainingDiverged

    graph = grid_city(args.size, args.size, seed=args.seed)
    try:
        rne = build_rne(
            graph,
            RNEConfig(
                seed=args.seed,
                workers=args.workers,
                prefetch=not args.no_prefetch,
            ),
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except TrainingDiverged as exc:
        print(f"training diverged beyond recovery: {exc}", file=sys.stderr)
        return 1
    rne.save(args.out)
    for note in rne.history.notes:
        print(f"note: {note}")
    labeling = rne.history.labeling
    if labeling:
        print(
            f"labeling: mode={labeling.get('mode')} "
            f"sssp_runs={labeling.get('sssp_runs')} "
            f"cache_hits={labeling.get('cache_hits')} "
            f"label_seconds={labeling.get('label_seconds', 0.0):.2f}"
        )
    print(
        f"trained on {graph.n} vertices, final mean relative error "
        f"{rne.history.phase_errors['final'] * 100:.2f}%, saved to {args.out}"
    )
    return 0


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default=None,
        help="trained RNE artifact (.npz); omitted = exact-only serving",
    )
    parser.add_argument("--size", type=int, default=16, help="grid side length")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--targets",
        default="all",
        help=(
            "target set for knn/range: 'all', 'random:K', or "
            "comma-separated vertex ids"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="micro-batching window (queries per engine batch)",
    )
    parser.add_argument(
        "--stats-out",
        default=None,
        help="write the serving stats snapshot to this JSON file",
    )


def _parse_target_spec(spec: str, n: int, seed: int):
    import numpy as np

    if spec == "all":
        return np.arange(n, dtype=np.int64)
    if spec.startswith("random:"):
        count = int(spec.split(":", 1)[1])
        rng = np.random.default_rng(seed + 1)
        return np.sort(rng.choice(n, size=min(count, n), replace=False)).astype(
            np.int64
        )
    return np.array([int(tok) for tok in spec.split(",")], dtype=np.int64)


def _build_serving_engine(args: argparse.Namespace):
    """The engine (and its graph) behind ``rne serve`` / ``rne query``.

    With ``--model`` the artifact is loaded through ResilientOracle, so a
    corrupt or wrong-graph file degrades to exact serving instead of
    answering wrongly; without it the engine serves exact answers only.
    """
    from .graph.generators import grid_city
    from .reliability.fallback import ResilientOracle
    from .serving import BatchQueryEngine

    graph = grid_city(args.size, args.size, seed=args.seed)
    if args.model is not None:
        oracle = ResilientOracle(graph, args.model)
        if not oracle.healthy:
            print(
                f"serving degraded to exact: {oracle.stats.degraded_reason}",
                file=sys.stderr,
            )
        return oracle.engine, graph
    return BatchQueryEngine(graph=graph), graph


def _serve_and_report(args: argparse.Namespace, lines) -> int:
    import json

    from .serving import serve_lines

    engine, graph = _build_serving_engine(args)
    targets = _parse_target_spec(args.targets, graph.n, args.seed)
    try:
        for answer in serve_lines(
            lines, engine, targets=targets, batch_size=args.batch_size
        ):
            print(answer)
    except BrokenPipeError:  # downstream consumer went away; not an error
        pass
    print(engine.report(), file=sys.stderr)
    if args.stats_out is not None:
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            json.dump(engine.snapshot(), fh, indent=2, sort_keys=True)
        print(f"stats written to {args.stats_out}", file=sys.stderr)
    return 0


def _run_serve(argv: list[str]) -> int:
    """``rne serve``: micro-batched query server reading stdin."""
    parser = argparse.ArgumentParser(
        prog="rne serve",
        description=(
            "Serve queries from stdin, one per line: 'dist S T', 'knn S K', "
            "'range S TAU'.  Answers stream to stdout in input order; a "
            "serving-stats table goes to stderr on shutdown."
        ),
    )
    _add_serving_arguments(parser)
    args = parser.parse_args(argv)
    return _serve_and_report(args, sys.stdin)


def _run_query(argv: list[str]) -> int:
    """``rne query``: one-shot micro-batched queries from argv or a file."""
    parser = argparse.ArgumentParser(
        prog="rne query",
        description=(
            "Answer a batch of queries ('dist S T', 'knn S K', 'range S TAU') "
            "given on the command line or via --batch FILE ('-' = stdin)."
        ),
    )
    _add_serving_arguments(parser)
    parser.add_argument(
        "--batch",
        default=None,
        metavar="FILE",
        help="read queries from FILE, one per line ('-' for stdin)",
    )
    parser.add_argument("queries", nargs="*", help="inline query strings")
    args = parser.parse_args(argv)
    if (args.batch is None) == (not args.queries):
        print("provide either inline queries or --batch FILE", file=sys.stderr)
        return 2
    if args.batch is None:
        lines = list(args.queries)
    elif args.batch == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.batch, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    return _serve_and_report(args, lines)


def _run_update(argv: list[str]) -> int:
    """``rne update``: apply a live edge-weight update to a saved model.

    Loads the artifact, perturbs random edge weights (the reproducible
    stand-in for a real traffic feed), runs the versioned live-update
    lifecycle — incremental retrain, atomic publish, cache/index
    invalidation — and saves the bumped-version artifact back out.
    """
    parser = argparse.ArgumentParser(
        prog="rne update",
        description=(
            "Apply an incremental edge-weight update to a trained RNE "
            "artifact: retrain the affected region, publish atomically, "
            "invalidate serving caches, and re-save with a bumped version."
        ),
    )
    parser.add_argument("--model", required=True, help="trained RNE artifact (.npz)")
    parser.add_argument(
        "--out",
        default=None,
        help="output artifact path (default: overwrite --model in place)",
    )
    parser.add_argument("--size", type=int, default=16, help="grid side length")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--perturb-factor",
        type=float,
        default=2.0,
        help="multiply the chosen edge weights by this factor",
    )
    parser.add_argument(
        "--perturb-count",
        type=int,
        default=10,
        help="number of random edges to reweight",
    )
    parser.add_argument(
        "--hops", type=int, default=2, help="affected-region radius in hops"
    )
    parser.add_argument(
        "--samples", type=int, default=4000, help="training pairs per round"
    )
    parser.add_argument("--rounds", type=int, default=2, help="retraining rounds")
    parser.add_argument(
        "--validation-size", type=int, default=500, help="held-out validation pairs"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="labelling worker processes (default: REPRO_WORKERS env var)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal the published embedding into this checkpoint directory",
    )
    parser.add_argument(
        "--stats-out",
        default=None,
        help="write the UpdateStats record to this JSON file",
    )
    args = parser.parse_args(argv)

    import json

    from .core.pipeline import RNE
    from .graph.generators import grid_city
    from .live import LiveUpdateManager, perturb_weights
    from .reliability.artifacts import ArtifactError
    from .reliability.checkpoint import CheckpointManager, TrainingDiverged
    from .serving import BatchQueryEngine

    graph = grid_city(args.size, args.size, seed=args.seed)
    try:
        rne = RNE.load(args.model, graph)
    except ArtifactError as exc:
        print(f"cannot update: {exc}", file=sys.stderr)
        return 1
    if rne.hierarchy is None:
        print("cannot update: artifact has no partition hierarchy", file=sys.stderr)
        return 1
    engine = BatchQueryEngine.from_rne(rne)
    checkpoints = (
        CheckpointManager(args.checkpoint_dir)
        if args.checkpoint_dir is not None
        else None
    )
    manager = LiveUpdateManager(rne, engines=(engine,), checkpoints=checkpoints)
    new_graph, changed = perturb_weights(
        graph,
        factor=args.perturb_factor,
        count=args.perturb_count,
        seed=args.seed + 1,
    )
    try:
        stats = manager.update(
            new_graph,
            changed,
            hops=args.hops,
            samples=args.samples,
            rounds=args.rounds,
            validation_size=args.validation_size,
            seed=args.seed,
            workers=args.workers,
        )
    except TrainingDiverged as exc:
        print(f"update diverged beyond recovery: {exc}", file=sys.stderr)
        return 1
    print(stats.report())
    out_path = args.out if args.out is not None else args.model
    rne.save(out_path)
    print(f"artifact saved to {out_path} at version {rne.version}")
    if args.stats_out is not None:
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            json.dump(stats.as_dict(), fh, indent=2, sort_keys=True)
        print(f"stats written to {args.stats_out}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "train":
        return _run_train(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "query":
        return _run_query(argv[1:])
    if argv and argv[0] == "update":
        return _run_update(argv[1:])

    parser = argparse.ArgumentParser(
        prog="rne",
        description="Run RNE reproduction experiments (ICDE 2021 tables/figures).",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name (see 'rne list'), 'list', 'all', 'train', "
            "'serve', 'query', or 'update'"
        ),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down datasets and budgets (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    return _run_experiments(names, fast=args.fast)


if __name__ == "__main__":
    raise SystemExit(main())
