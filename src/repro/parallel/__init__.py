"""Parallel ground-truth labelling and sample prefetching.

The training-data pipeline is the cost centre of RNE reproduction runs: one
Dijkstra SSSP per distinct sample source.  This package parallelises it
without giving up determinism:

* :class:`SSSPWorkerPool` — multiprocessing pool sharing the graph's CSR
  arrays with workers (fork-inherited / one-time transfer, never per-task
  pickling) with order-stable, bit-identical gathers.
* :class:`ParallelDistanceLabeler` / :func:`make_labeler` — drop-in labeler
  routing SSSP through the pool, falling back to the serial kernel when
  ``workers <= 1`` or multiprocessing is unavailable.
* :class:`PrefetchPipeline` — ordered background execution of per-phase
  sample jobs so phase-(k+1) labelling overlaps phase-k SGD epochs.
* :func:`resolve_workers` — one place that maps ``--workers`` /
  ``REPRO_WORKERS`` / defaults to an effective worker count.
"""

from .labeler import ParallelDistanceLabeler, make_labeler
from .pool import PoolStats, SSSPWorkerPool, resolve_workers
from .prefetch import PrefetchPipeline

__all__ = [
    "ParallelDistanceLabeler",
    "PoolStats",
    "PrefetchPipeline",
    "SSSPWorkerPool",
    "make_labeler",
    "resolve_workers",
]
