"""Multiprocessing SSSP pool: fan ground-truth labelling over processes.

Training cost in RNE is dominated by ground-truth labelling — one Dijkstra
SSSP per distinct sample source (Sec. V / Algorithm 2) — and those runs are
embarrassingly parallel.  :class:`SSSPWorkerPool` fans batches of sources
across ``workers`` processes while keeping three guarantees:

* **No per-task graph pickling.**  The graph's CSR arrays are handed to the
  workers once, at pool start-up, through the initializer.  Under the
  preferred ``fork`` start method that hand-off is copy-on-write inherited
  memory (zero copies, zero pickling); under ``spawn`` it is a one-time
  per-worker transfer.  Tasks themselves carry only source-id arrays.
* **Order-stable, bit-identical gather.**  Every worker runs exactly the
  same kernel as the serial path (:func:`repro.algorithms.dijkstra.sssp_rows`
  on bit-identical CSR arrays) and results are reassembled by task id, so
  ``pool.sssp_many(sources)`` equals the serial ``sssp_many(graph, sources)``
  bit for bit regardless of worker count or chunking.
* **Observability.**  :class:`PoolStats` tracks SSSP runs, task counts,
  wall/busy seconds and per-worker busy time, snapshot()-able in the same
  JSON-safe style as :class:`repro.serving.stats.ServingStats`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from ..algorithms.dijkstra import sssp_rows
from ..graph import Graph

__all__ = ["PoolStats", "SSSPWorkerPool", "resolve_workers"]

#: Worker-process global: the CSR adjacency, built once per worker.
_WORKER_MATRIX: Optional[sparse.csr_matrix] = None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective labelling worker count.

    Resolution order: an explicit positive ``workers`` wins; ``None``/``0``
    falls back to the ``REPRO_WORKERS`` environment variable; absent that,
    the default is ``1`` (serial).  The result is always >= 1 — ``1`` means
    "no pool, serial path".
    """
    if workers is None or int(workers) == 0:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from exc
    count = int(workers)
    if count < 0:
        raise ValueError(f"workers must be >= 0, got {count}")
    return max(1, count)


def _init_worker(
    indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray, n: int
) -> None:
    """Build the worker-local CSR adjacency once per process."""
    global _WORKER_MATRIX
    _WORKER_MATRIX = sparse.csr_matrix((weights, indices, indptr), shape=(n, n))


def _run_task(task: Tuple[int, np.ndarray]) -> Tuple[int, np.ndarray, float, int]:
    """Worker body: one chunk of sources -> (task_id, rows, seconds, pid)."""
    task_id, sources = task
    if _WORKER_MATRIX is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("SSSP worker task ran before initialisation")
    start = time.perf_counter()
    rows = sssp_rows(_WORKER_MATRIX, sources)
    return task_id, rows, time.perf_counter() - start, os.getpid()


@dataclass
class PoolStats:
    """Counters for one :class:`SSSPWorkerPool` (ServingStats conventions)."""

    workers: int
    sssp_runs: int = 0
    tasks: int = 0
    calls: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    worker_busy: Dict[int, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Mean fraction of the pool kept busy while a gather was running."""
        denom = self.wall_seconds * self.workers
        return self.busy_seconds / denom if denom > 0 else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump for benches / checkpoint manifests."""
        return {
            "workers": self.workers,
            "sssp_runs": self.sssp_runs,
            "tasks": self.tasks,
            "calls": self.calls,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization,
            "workers_seen": len(self.worker_busy),
        }


class SSSPWorkerPool:
    """A process pool answering ``sssp_many`` with order-stable gathers.

    Parameters
    ----------
    graph:
        The network; its CSR arrays are shared with the workers at start-up.
    workers:
        Process count, >= 2 (callers wanting 1 should use the serial path).
    chunk_size:
        Sources per task.  Default splits each gather into about four tasks
        per worker — small enough to balance load, large enough that task
        dispatch overhead stays negligible next to a 50k-vertex Dijkstra.
    start_method:
        Multiprocessing start method override; default prefers ``fork``
        (zero-copy graph inheritance) and falls back to the platform default
        where fork does not exist.
    """

    def __init__(
        self,
        graph: Graph,
        workers: int,
        *,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 2:
            raise ValueError(f"SSSPWorkerPool needs workers >= 2, got {workers}")
        self.graph = graph
        self.workers = int(workers)
        self.chunk_size = chunk_size
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        ctx = multiprocessing.get_context(start_method)
        indptr, indices, weights = graph.csr_arrays()
        self._pool: multiprocessing.pool.Pool = ctx.Pool(
            self.workers,
            initializer=_init_worker,
            initargs=(indptr, indices, weights, graph.n),
        )
        self.stats = PoolStats(workers=self.workers)
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.terminate()
            self._pool.join()

    def __enter__(self) -> "SSSPWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- work ------------------------------------------------------------
    def _chunks(self, sources: np.ndarray) -> List[np.ndarray]:
        if self.chunk_size is not None:
            size = max(1, int(self.chunk_size))
        else:
            size = max(1, -(-int(sources.size) // (self.workers * 4)))
        return [sources[i : i + size] for i in range(0, int(sources.size), size)]

    def sssp_many(self, sources: np.ndarray) -> np.ndarray:
        """Distance rows for ``sources``, row ``i`` belonging to
        ``sources[i]`` — bit-identical to the serial ``sssp_many``."""
        if self._closed:
            raise RuntimeError("SSSPWorkerPool is closed")
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0:
            return np.empty((0, self.graph.n), dtype=np.float64)
        start = time.perf_counter()
        tasks = list(enumerate(self._chunks(sources)))
        results = self._pool.map(_run_task, tasks)
        results.sort(key=lambda item: item[0])  # order-stable gather
        out: np.ndarray = np.vstack([rows for _, rows, _, _ in results])
        wall = time.perf_counter() - start
        stats = self.stats
        stats.calls += 1
        stats.tasks += len(tasks)
        stats.sssp_runs += int(sources.size)
        stats.wall_seconds += wall
        for _, _, seconds, pid in results:  # perf: loop-ok (per task, bounded)
            stats.busy_seconds += seconds
            stats.worker_busy[pid] = stats.worker_busy.get(pid, 0.0) + seconds
        return out
