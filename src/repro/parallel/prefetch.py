"""Prefetching sample pipeline: overlap labelling with SGD epochs.

``build_rne`` consumes labelled training sets phase by phase.  With a
serial pipeline the trainer idles while phase k+1's samples are drawn and
labelled; :class:`PrefetchPipeline` runs those jobs one step ahead on a
background thread, so phase-(k+1) sample generation + labelling overlaps
phase-k SGD epochs.

Determinism is preserved by construction, not by luck: each job owns its
own seeded RNG stream (derived from the run seed and the stage name, see
``repro.core.pipeline``), so its output is bit-identical whether it runs
eagerly on the background thread, lazily on the caller thread
(``enabled=False``), or in any interleaving with training.

The pipeline is strictly ordered — jobs are registered in consumption
order, executed in that order with a bounded lookahead, and ``get`` must be
called in the same order.  Job exceptions are captured and re-raised from
``get`` so failures surface at the consumption point, like the synchronous
code they replace.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["PrefetchPipeline"]


class PrefetchPipeline:
    """Ordered background execution of sample-generation jobs.

    Parameters
    ----------
    enabled:
        When false, jobs run synchronously inside :meth:`get` — the
        degradation path for ``--no-prefetch`` and for callers that cannot
        tolerate a helper thread.  Results are identical either way.
    lookahead:
        How many jobs may complete ahead of consumption.  The default of 1
        gives the intended overlap (label phase k+1 while phase k trains)
        without holding more than one phase's samples in memory.
    """

    def __init__(self, *, enabled: bool = True, lookahead: int = 1) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.enabled = bool(enabled)
        self._jobs: List[Tuple[str, Callable[[], Any]]] = []
        self._names: Dict[str, int] = {}
        self._results: Dict[str, Any] = {}
        self._errors: Dict[str, BaseException] = {}
        self._done: Dict[str, threading.Event] = {}
        self._slots = threading.Semaphore(lookahead)
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._aborted = False
        self._next_get = 0

    # -- registration ----------------------------------------------------
    def add(self, name: str, job: Callable[[], Any]) -> None:
        """Register ``job`` under ``name``; order of calls is consumption
        order.  Must happen before :meth:`start`."""
        if self._started:
            raise RuntimeError("cannot add jobs after start()")
        if name in self._names:
            raise ValueError(f"duplicate prefetch job name {name!r}")
        self._names[name] = len(self._jobs)
        self._jobs.append((name, job))
        self._done[name] = threading.Event()

    def start(self) -> None:
        """Freeze the job list and begin background execution."""
        if self._started:
            raise RuntimeError("pipeline already started")
        self._started = True
        if not self.enabled or not self._jobs:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-sample-prefetch", daemon=True
        )
        self._thread.start()

    # -- background body -------------------------------------------------
    def _run(self) -> None:
        for index, (name, job) in enumerate(self._jobs):
            self._slots.acquire()
            if self._aborted:
                self._fail_from(index, RuntimeError("prefetch pipeline closed"))
                return
            try:
                self._results[name] = job()
            except BaseException as exc:  # captured, re-raised at get()
                self._fail_from(index, exc)
                return
            self._done[name].set()

    def _fail_from(self, index: int, exc: BaseException) -> None:
        """Mark job ``index`` and everything after it as failed so no
        ``get`` can block forever on a dead producer."""
        for name, _ in self._jobs[index:]:
            self._errors.setdefault(name, exc)
            self._done[name].set()

    # -- consumption -----------------------------------------------------
    def get(self, name: str) -> Any:
        """Return ``name``'s result, blocking until it is ready.

        Calls must follow registration order; a job that raised has its
        exception re-raised here.
        """
        if not self._started:
            raise RuntimeError("start() the pipeline before get()")
        if name not in self._names:
            raise KeyError(f"unknown prefetch job {name!r}")
        expected = self._jobs[self._next_get][0] if self._next_get < len(self._jobs) else None
        if name != expected:
            raise RuntimeError(
                f"prefetch jobs must be consumed in order: expected "
                f"{expected!r}, got {name!r}"
            )
        self._next_get += 1
        if self._thread is None:
            # Synchronous mode: run the job on the caller thread now.
            return self._jobs[self._names[name]][1]()
        self._done[name].wait()
        self._slots.release()
        if name in self._errors:
            raise self._errors[name]
        return self._results.pop(name)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop executing further jobs and release the worker thread.

        Safe to call at any point (including after an exception mid-build);
        jobs already running finish, queued ones are abandoned.
        """
        self._aborted = True
        self._slots.release()  # unblock a producer parked on the semaphore
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "PrefetchPipeline":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
