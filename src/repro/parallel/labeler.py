"""A :class:`~repro.core.sampling.DistanceLabeler` backed by a worker pool.

:class:`ParallelDistanceLabeler` is a drop-in replacement for the serial
labeler: same cache, same counters, same ``label``/``row`` semantics.  Only
the ``_sssp_rows`` hook changes — missing rows are fanned over an
:class:`~repro.parallel.pool.SSSPWorkerPool` instead of being computed
in-process.  Because both paths run the identical
:func:`repro.algorithms.dijkstra.sssp_rows` kernel on bit-identical CSR
arrays and the gather is order-stable, labels are bit-identical to the
serial labeler for any worker count.

Degradation is graceful: an effective worker count of 1 or a pool-creation
failure (platforms where multiprocessing is unavailable or restricted)
silently falls back to the in-process kernel, recording the reason in
``fallback_reason`` / ``snapshot()``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.sampling import DistanceLabeler
from ..graph import Graph
from .pool import SSSPWorkerPool, resolve_workers

__all__ = ["ParallelDistanceLabeler", "make_labeler"]


class ParallelDistanceLabeler(DistanceLabeler):
    """Distance labeler whose SSSP runs fan out over worker processes.

    The pool is created lazily on the first uncached labelling request, so
    constructing the labeler is cheap and a run whose sources all hit the
    cache never pays the pool start-up cost.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        workers: Optional[int] = None,
        cache_size: int = 4096,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(graph, cache_size=cache_size)
        self.workers = resolve_workers(workers)
        self._chunk_size = chunk_size
        self._start_method = start_method
        self._pool: Optional[SSSPWorkerPool] = None
        self.fallback_reason: Optional[str] = None

    # -- pool plumbing ---------------------------------------------------
    def _ensure_pool(self) -> Optional[SSSPWorkerPool]:
        if self.workers < 2:
            return None
        if self.fallback_reason is not None:
            return None
        if self._pool is None:
            try:
                self._pool = SSSPWorkerPool(
                    self.graph,
                    self.workers,
                    chunk_size=self._chunk_size,
                    start_method=self._start_method,
                )
            except (OSError, ValueError, RuntimeError, ImportError) as exc:
                self.fallback_reason = f"{type(exc).__name__}: {exc}"
                return None
        return self._pool

    def _sssp_rows(self, sources: Sequence[int]) -> np.ndarray:
        pool = self._ensure_pool()
        if pool is None:
            return super()._sssp_rows(sources)
        return pool.sssp_many(np.asarray(list(sources), dtype=np.int64))

    def close(self) -> None:
        """Shut the worker pool down (idempotent; labeler stays usable —
        the next miss falls back to the serial kernel via a fresh pool)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- observability ---------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        snap = super().snapshot()
        snap["workers"] = self.workers
        if self.fallback_reason is not None:
            snap["mode"] = "serial-fallback"
            snap["fallback_reason"] = self.fallback_reason
        elif self.workers >= 2:
            snap["mode"] = "parallel"
        if self._pool is not None:
            snap["pool"] = self._pool.stats.snapshot()
        return snap


def make_labeler(
    graph: Graph,
    *,
    workers: Optional[int] = None,
    cache_size: int = 4096,
    chunk_size: Optional[int] = None,
) -> DistanceLabeler:
    """Labeler factory honouring ``workers`` / ``REPRO_WORKERS``.

    Returns the plain serial :class:`DistanceLabeler` when the effective
    worker count is 1 and a :class:`ParallelDistanceLabeler` otherwise —
    call sites stay agnostic of the parallelism decision.
    """
    effective = resolve_workers(workers)
    if effective < 2:
        return DistanceLabeler(graph, cache_size=cache_size)
    return ParallelDistanceLabeler(
        graph, workers=effective, cache_size=cache_size, chunk_size=chunk_size
    )
