"""Shortest-path algorithm substrate: exact and approximate baselines."""

from .ach import ApproximateCH
from .apsp import AllPairsIndex
from .astar import astar, astar_alt, astar_euclidean
from .ch import ContractionHierarchy
from .h2h import H2HIndex
from .dijkstra import (
    INF,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_path,
    eccentricity,
    graph_diameter_estimate,
    pair_distances,
    sssp_many,
)
from .hub_labels import HubLabels
from .landmarks import LTEstimator, select_landmarks
from .oracle import DistanceOracle

__all__ = [
    "INF",
    "AllPairsIndex",
    "ApproximateCH",
    "ContractionHierarchy",
    "DistanceOracle",
    "H2HIndex",
    "HubLabels",
    "LTEstimator",
    "astar",
    "astar_alt",
    "astar_euclidean",
    "bidirectional_dijkstra",
    "dijkstra",
    "dijkstra_path",
    "eccentricity",
    "graph_diameter_estimate",
    "pair_distances",
    "select_landmarks",
    "sssp_many",
]
