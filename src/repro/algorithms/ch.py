"""Contraction Hierarchies (CH) — exact, and the ACH approximate variant.

CH [Geisberger et al., 2008] contracts vertices in importance order; when a
vertex ``v`` is removed, a *shortcut* ``(u, w)`` preserving ``d(u, w)`` is
added for every neighbour pair whose shortest connection ran through ``v``
and which has no *witness* path avoiding ``v``.  Point-to-point queries then
run a bidirectional Dijkstra that only ever relaxes edges towards more
important vertices, which on road networks settles a tiny search space.

ACH [Geisberger & Schieferdecker, 2010] relaxes the witness test: a shortcut
is skipped whenever some replacement path is at most ``(1 + epsilon)`` times
longer, trading a bounded relative error for far fewer shortcuts — the
paper's main approximate index baseline.

Setting ``epsilon=0`` yields exact CH; ``epsilon>0`` yields ACH.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph import Graph
from .dijkstra import INF


class ContractionHierarchy:
    """CH / ACH index over an undirected positively weighted graph.

    Parameters
    ----------
    graph:
        The road network.
    epsilon:
        Witness slack.  ``0`` builds an exact CH; ``epsilon > 0`` builds the
        heuristic ACH whose query results may exceed the true distance.
    witness_hop_cap:
        Max settled vertices per witness search; bounds preprocessing time
        at the cost of (possibly) extra shortcuts, never of correctness.
    seed:
        Tie-breaking seed for the contraction order.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        epsilon: float = 0.0,
        witness_hop_cap: int = 60,
        seed: int | None = 0,
    ) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.graph = graph
        self.epsilon = float(epsilon)
        self._witness_cap = int(witness_hop_cap)
        self.rank = np.empty(graph.n, dtype=np.int64)
        self.num_shortcuts = 0
        self._up_adj: list[list[tuple[int, float]]] = [[] for _ in range(graph.n)]
        self._build(np.random.default_rng(seed))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, rng: np.random.Generator) -> None:
        g = self.graph
        # Dynamic adjacency over the not-yet-contracted core.
        adj: list[dict[int, float]] = [dict() for _ in range(g.n)]
        for e in g.edges():
            adj[e.u][e.v] = min(adj[e.u].get(e.v, INF), e.weight)
            adj[e.v][e.u] = min(adj[e.v].get(e.u, INF), e.weight)

        contracted = np.zeros(g.n, dtype=bool)
        deleted_neighbors = np.zeros(g.n, dtype=np.int64)
        jitter = rng.random(g.n) * 1e-6  # stable random tie-breaking

        def priority(v: int) -> float:
            shortcuts = self._simulate_contraction(adj, contracted, v)
            edge_diff = len(shortcuts) - len(adj[v])
            return edge_diff + deleted_neighbors[v] + jitter[v]

        heap = [(priority(v), v) for v in range(g.n)]
        heapq.heapify(heap)

        next_rank = 0
        while heap:
            _, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # Lazy update: recompute; if no longer minimal, reinsert.
            prio = priority(v)
            if heap and prio > heap[0][0]:
                heapq.heappush(heap, (prio, v))
                continue

            shortcuts = self._simulate_contraction(adj, contracted, v)
            self.rank[v] = next_rank
            next_rank += 1
            contracted[v] = True

            # v's surviving edges all point to higher-ranked vertices now.
            self._up_adj[v] = [(u, w) for u, w in adj[v].items()]
            for u in adj[v]:
                del adj[u][v]
                deleted_neighbors[u] += 1
            for u, w, weight in shortcuts:
                if weight < adj[u].get(w, INF):
                    adj[u][w] = weight
                    adj[w][u] = weight
                    self.num_shortcuts += 1

    def _simulate_contraction(
        self,
        adj: list[dict[int, float]],
        contracted: np.ndarray,
        v: int,
    ) -> list[tuple[int, int, float]]:
        """Shortcuts needed if ``v`` were contracted now.

        For each uncontracted neighbour pair ``(u, w)``, a witness search in
        the core (excluding ``v``) checks whether a path no longer than
        ``(1 + epsilon) * (w(u,v) + w(v,w))`` exists; if not, the shortcut
        ``(u, w)`` with the exact through-``v`` length is required.
        """
        neighbors = [(u, w) for u, w in adj[v].items() if not contracted[u]]
        shortcuts: list[tuple[int, int, float]] = []
        for i, (u, wu) in enumerate(neighbors):
            # One witness Dijkstra from u covers all targets w.
            targets = {
                t: wu + wt for t, wt in neighbors[i + 1 :]
            }
            if not targets:
                continue
            limit = (1.0 + self.epsilon) * max(targets.values())
            found = self._witness_search(adj, contracted, u, v, set(targets), limit)
            for t, via in targets.items():
                witness = found.get(t, INF)
                if witness > (1.0 + self.epsilon) * via:
                    shortcuts.append((u, t, via))
        return shortcuts

    def _witness_search(
        self,
        adj: list[dict[int, float]],
        contracted: np.ndarray,
        source: int,
        excluded: int,
        targets: set[int],
        limit: float,
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` avoiding ``excluded``.

        Returns settled distances for the requested targets (missing target
        means no witness within the limit / hop cap was found).
        """
        dist = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        found: dict[int, float] = {}
        remaining = set(targets)
        budget = self._witness_cap
        while heap and remaining and budget > 0:
            d, x = heapq.heappop(heap)
            if x in settled:
                continue
            if d > limit:
                break
            settled.add(x)
            budget -= 1
            if x in remaining:
                found[x] = d
                remaining.discard(x)
            for y, w in adj[x].items():
                if y == excluded or contracted[y]:
                    continue
                nd = d + w
                if nd <= limit and nd < dist.get(y, INF):
                    dist[y] = nd
                    heapq.heappush(heap, (nd, y))
        return found

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Point-to-point distance via bidirectional upward search.

        Exact for ``epsilon == 0``; within the ACH error bound otherwise.
        Returns ``inf`` when ``t`` is unreachable from ``s``.
        """
        if s == t:
            return 0.0
        dist_f = {s: 0.0}
        dist_b = {t: 0.0}
        heap_f: list[tuple[float, int]] = [(0.0, s)]
        heap_b: list[tuple[float, int]] = [(0.0, t)]
        best = INF

        def settle(
            heap: list[tuple[float, int]],
            dist: dict[int, float],
            other: dict[int, float],
        ) -> None:
            nonlocal best
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF):
                return
            if u in other:
                best = min(best, d + other[u])
            if d >= best:
                return
            for v, w in self._up_adj[u]:
                nd = d + w
                if nd < dist.get(v, INF) and nd < best:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))

        while heap_f or heap_b:
            key_f = heap_f[0][0] if heap_f else INF
            key_b = heap_b[0][0] if heap_b else INF
            if min(key_f, key_b) >= best:
                break
            if key_f <= key_b:
                settle(heap_f, dist_f, dist_b)
            else:
                settle(heap_b, dist_b, dist_f)
        return best

    def search_space(self, s: int) -> dict[int, float]:
        """Upward search space of ``s``: hub vertex -> distance.

        This is the building block for CH-based hub labelling.
        """
        dist = {s: 0.0}
        heap: list[tuple[float, int]] = [(0.0, s)]
        out: dict[int, float] = {}
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF):
                continue
            out[u] = d
            for v, w in self._up_adj[u]:
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return out

    def index_bytes(self) -> int:
        """Approximate memory footprint of the upward graph."""
        entries = sum(len(lst) for lst in self._up_adj)
        return entries * 16 + self.rank.nbytes  # (int64, float64) per edge
