"""Hub labelling — the exact label-based index standing in for H2H.

H2H [Ouyang et al., 2018] combines tree decomposition with 2-hop labelling.
We reproduce its query interface and trade-offs with CH-based hub labels
[Abraham et al., 2011]: each vertex ``v`` stores its upward CH search space
as a label ``L(v) = {(h, d(v, h))}``; for any pair the true distance is

    d(s, t) = min over h in L(s) ∩ L(t) of  d_s(h) + d_t(h)

because the maximum-rank vertex of a shortest path appears in both upward
search spaces.  Queries are exact, search-free label scans — the same
"large index, very fast exact query" profile the paper measures for H2H.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .ch import ContractionHierarchy
from .dijkstra import INF


class HubLabels:
    """Exact 2-hop labels built from a contraction hierarchy.

    Parameters
    ----------
    graph:
        The road network.
    ch:
        Optionally a prebuilt *exact* :class:`ContractionHierarchy`; one is
        constructed when omitted.
    prune:
        When true, label entries provably useless for any query (their
        distance already dominated through higher hubs) are dropped,
        shrinking the index at no accuracy cost.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        ch: ContractionHierarchy | None = None,
        prune: bool = True,
        seed: int | None = 0,
    ) -> None:
        if ch is None:
            ch = ContractionHierarchy(graph, epsilon=0.0, seed=seed)
        if ch.epsilon != 0.0:
            raise ValueError("hub labels require an exact CH (epsilon == 0)")
        self.graph = graph
        self._hubs: list[np.ndarray] = []
        self._dists: list[np.ndarray] = []

        # Build labels in decreasing rank order so pruning can use the
        # already-final labels of higher-ranked hubs.
        order = np.argsort(-ch.rank)
        pending: list[tuple[int, dict[int, float]] | None] = [None] * graph.n
        for v in order:
            pending[v] = (v, ch.search_space(int(v)))
        self._hubs = [np.empty(0, dtype=np.int64)] * graph.n
        self._dists = [np.empty(0, dtype=np.float64)] * graph.n
        for v in order:
            v = int(v)
            space = pending[v][1]
            if prune:
                space = self._pruned(v, space)
            hubs = np.fromiter(space.keys(), dtype=np.int64, count=len(space))
            dists = np.fromiter(space.values(), dtype=np.float64, count=len(space))
            idx = np.argsort(hubs)
            self._hubs[v] = hubs[idx]
            self._dists[v] = dists[idx]

    def _pruned(self, v: int, space: dict[int, float]) -> dict[int, float]:
        """Drop entries whose distance is matched via an existing label."""
        kept: dict[int, float] = {}
        for h, d in space.items():
            if h == v:
                kept[h] = d
                continue
            via = self._query_labels(self._label_of(h), self._pack(kept))
            if via <= d + 1e-12:
                continue
            kept[h] = d
        return kept

    def _label_of(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        return self._hubs[v], self._dists[v]

    @staticmethod
    def _pack(space: dict[int, float]) -> tuple[np.ndarray, np.ndarray]:
        hubs = np.fromiter(space.keys(), dtype=np.int64, count=len(space))
        dists = np.fromiter(space.values(), dtype=np.float64, count=len(space))
        idx = np.argsort(hubs)
        return hubs[idx], dists[idx]

    @staticmethod
    def _query_labels(
        a: tuple[np.ndarray, np.ndarray], b: tuple[np.ndarray, np.ndarray]
    ) -> float:
        hubs_a, dist_a = a
        hubs_b, dist_b = b
        if hubs_a.size == 0 or hubs_b.size == 0:
            return INF
        common, ia, ib = np.intersect1d(
            hubs_a, hubs_b, assume_unique=True, return_indices=True
        )
        if common.size == 0:
            return INF
        return float(np.min(dist_a[ia] + dist_b[ib]))

    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance via label intersection."""
        if s == t:
            return 0.0
        return self._query_labels(self._label_of(s), self._label_of(t))

    def label_size(self, v: int) -> int:
        return int(self._hubs[v].size)

    def average_label_size(self) -> float:
        return float(np.mean([h.size for h in self._hubs]))

    def index_bytes(self) -> int:
        """Total label memory (hub ids + distances)."""
        return int(sum(h.nbytes + d.nbytes for h, d in zip(self._hubs, self._dists)))
