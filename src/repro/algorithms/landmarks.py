"""Landmark selection and the LT (landmark / triangle-inequality) estimator.

The paper's LT baseline (from ALT [13]) precomputes a ``|U| x |V|`` distance
matrix from a landmark set ``U`` and estimates the distance between ``s``
and ``t`` as the tightest triangle-inequality bound over landmarks::

    max_u |d(u, s) - d(u, t)|  <=  d(s, t)  <=  min_u d(u, s) + d(u, t)

LT uses the lower bound (which is also the admissible ALT heuristic).  The
same landmark machinery drives the paper's landmark-based training-sample
selection (Sec. V-B).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .dijkstra import sssp_many


def select_landmarks(
    graph: Graph,
    k: int,
    *,
    strategy: str = "farthest",
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Choose ``k`` landmark vertices.

    Strategies
    ----------
    ``"farthest"``
        Iteratively add the vertex farthest (in network distance) from the
        current landmark set — the paper's recommended method, covering
        regions the existing landmarks miss.
    ``"random"``
        Uniform random vertices.
    ``"degree"``
        The ``k`` highest-degree vertices (important intersections).
    """
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= {graph.n}, got k={k}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    if strategy == "random":
        return rng.choice(graph.n, size=k, replace=False).astype(np.int64)
    if strategy == "degree":
        return np.argsort(-graph.degrees(), kind="stable")[:k].astype(np.int64)
    if strategy == "farthest":
        return _farthest_selection(graph, k, rng)
    raise ValueError(f"unknown landmark strategy {strategy!r}")


def _farthest_selection(
    graph: Graph, k: int, rng: np.random.Generator
) -> np.ndarray:
    first = int(rng.integers(graph.n))
    landmarks = [first]
    min_dist = sssp_many(graph, [first])[0]
    min_dist = np.where(np.isfinite(min_dist), min_dist, -1.0)
    while len(landmarks) < k:
        nxt = int(np.argmax(min_dist))
        if min_dist[nxt] <= 0:
            # Graph exhausted (e.g. tiny component); fill randomly.
            remaining = np.setdiff1d(np.arange(graph.n), landmarks)
            fill = rng.choice(remaining, size=k - len(landmarks), replace=False)
            landmarks.extend(int(v) for v in fill)
            break
        landmarks.append(nxt)
        dist = sssp_many(graph, [nxt])[0]
        dist = np.where(np.isfinite(dist), dist, -1.0)
        min_dist = np.minimum(min_dist, dist)
        min_dist[nxt] = 0.0
    return np.asarray(landmarks, dtype=np.int64)


class LTEstimator:
    """Landmark/triangle-inequality distance estimator (the paper's LT).

    Precomputes the ``|U| x |V|`` landmark distance matrix; queries cost
    ``O(|U|)`` per pair and need no graph search.
    """

    def __init__(
        self,
        graph: Graph,
        num_landmarks: int,
        *,
        strategy: str = "farthest",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.landmarks = select_landmarks(
            graph, num_landmarks, strategy=strategy, seed=seed
        )
        self.table = sssp_many(graph, self.landmarks)

    @property
    def num_landmarks(self) -> int:
        return int(self.landmarks.size)

    def lower_bound(self, s: int, t: int) -> float:
        """Tightest triangle lower bound — LT's distance estimate."""
        return float(np.max(np.abs(self.table[:, s] - self.table[:, t])))

    def upper_bound(self, s: int, t: int) -> float:
        """Tightest triangle upper bound (through the best landmark)."""
        return float(np.min(self.table[:, s] + self.table[:, t]))

    def estimate(self, s: int, t: int) -> float:
        """LT's estimate of ``d(s, t)`` — the lower bound, as in the paper."""
        return self.lower_bound(s, t)

    def estimate_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorised lower-bound estimates for ``(k, 2)`` pair array."""
        pairs = np.asarray(pairs, dtype=np.int64)
        diff = self.table[:, pairs[:, 0]] - self.table[:, pairs[:, 1]]
        return np.max(np.abs(diff), axis=0)

    def heuristic_to(self, t: int) -> np.ndarray:
        """Admissible ALT heuristic ``h(v) >= 0`` towards target ``t``.

        ``h(v) = max_u |d(u, v) - d(u, t)|`` never overestimates ``d(v, t)``,
        so A* with this heuristic stays exact.
        """
        return np.max(np.abs(self.table - self.table[:, [t]]), axis=0)

    def index_bytes(self) -> int:
        """Memory footprint of the landmark table."""
        return int(self.table.nbytes)
