"""Exact network-distance kNN and range queries (ground truth).

Used to score the approximate indexes of Sec. VI: a Dijkstra expansion from
the source settles targets in increasing true-distance order, so stopping
after ``k`` targets (or past the range threshold) is exact.

Result-ordering contract (shared with :class:`repro.core.index.EmbeddingTreeIndex`
and :mod:`repro.serving`):

* **kNN** returns targets in ascending ``(distance, vertex id)`` order and
  silently returns ``min(k, #reachable unique targets)`` results when the
  target set (or the reachable part of it) is smaller than ``k``.
* **Range** returns the matching targets as ascending sorted vertex ids.
* Target sets are treated as *sets*: duplicate ids contribute one result;
  unreachable targets are never returned.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph import Graph


def knn_true(graph: Graph, source: int, targets: np.ndarray, k: int) -> np.ndarray:
    """The ``k`` targets nearest to ``source`` by true network distance.

    Targets settle in ascending distance order; with positive edge weights
    every vertex at a given distance is already queued (with its final
    distance) when the first of them pops, so the heap's ``(d, id)`` tuple
    comparison yields ascending ``(distance, vertex id)`` output.  Returns
    ``min(k, #reachable unique targets)`` results — fewer than ``k`` when
    the heap drains first — matching ``EmbeddingTreeIndex.knn_query``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    is_target = np.zeros(graph.n, dtype=bool)
    is_target[np.asarray(targets, dtype=np.int64)] = True
    dist = np.full(graph.n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(graph.n, dtype=bool)
    found: list[int] = []
    while heap and len(found) < k:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if is_target[u]:
            found.append(u)
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return np.array(found, dtype=np.int64)


def range_true(
    graph: Graph, source: int, targets: np.ndarray, tau: float
) -> np.ndarray:
    """All targets within true network distance ``tau`` of ``source``.

    Returns ascending sorted vertex ids (the range contract); duplicate
    target ids contribute a single result.
    """
    if tau < 0:
        raise ValueError(f"tau must be >= 0, got {tau}")
    is_target = np.zeros(graph.n, dtype=bool)
    is_target[np.asarray(targets, dtype=np.int64)] = True
    dist = np.full(graph.n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(graph.n, dtype=bool)
    found: list[int] = []
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        if d > tau:
            break  # everything still queued is farther than tau
        settled[u] = True
        if is_target[u]:
            found.append(u)
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return np.array(sorted(found), dtype=np.int64)
