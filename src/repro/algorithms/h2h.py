"""H2H: tree-decomposition-based 2-hop labelling (Ouyang et al., SIGMOD'18).

The paper's fastest exact baseline.  Construction:

1. **Tree decomposition** by minimum-degree elimination: vertices are
   eliminated in degree order; eliminating ``v`` connects its remaining
   neighbours with fill-in edges carrying through-``v`` distances.  The bag
   ``X(v)`` is ``{v} + N_up(v)`` (v's neighbours at elimination time) and
   v's tree parent is its earliest-eliminated up-neighbour.
2. **Ancestor labels**, computed root-down: the ancestors of ``v`` form a
   chain, every up-neighbour of ``v`` lies on it, and

       d(v, a) = min over u in N_up(v) of  w'(v, u) + d(u, a)

   over augmented weights ``w'``, which is exact for every ancestor ``a``
   (the H2H invariant).  Each vertex stores distances to its whole
   ancestor chain, indexed by depth.

Queries: ``d(s, t) = min over x in X(lca(s,t)) of d(s, x) + d(t, x)`` —
an ``O(treewidth)`` scan over two arrays, no graph search.

The repo also ships CH-based hub labels (`hub_labels.py`); H2H typically
has larger labels but an even smaller candidate set per query.  Both are
exact, and the benchmark registry exposes both.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph import Graph
from .dijkstra import INF


class H2HIndex:
    """Exact H2H distance index over an undirected weighted graph.

    Parameters
    ----------
    graph:
        The road network (need not be connected — cross-component queries
        return ``inf``).
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = graph.n
        self._order = np.empty(n, dtype=np.int64)  # elimination rank
        self.parent = np.full(n, -1, dtype=np.int64)
        self._bags: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        self._bag_weights: list[np.ndarray] = [np.empty(0, dtype=np.float64)] * n
        self._eliminate()
        self.depth = np.zeros(n, dtype=np.int64)
        self._root_of = np.empty(n, dtype=np.int64)
        self._anc_dist: list[np.ndarray] = [np.empty(0, dtype=np.float64)] * n
        self._bag_depths: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        self._build_labels()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _eliminate(self) -> None:
        """Minimum-degree elimination with through-vertex fill-in."""
        g = self.graph
        adj: list[dict[int, float]] = [dict() for _ in range(g.n)]
        for e in g.edges():
            adj[e.u][e.v] = min(adj[e.u].get(e.v, INF), e.weight)
            adj[e.v][e.u] = min(adj[e.v].get(e.u, INF), e.weight)

        heap = [(len(adj[v]), v) for v in range(g.n)]
        heapq.heapify(heap)
        eliminated = np.zeros(g.n, dtype=bool)
        rank = 0
        while heap:
            deg, v = heapq.heappop(heap)
            if eliminated[v]:
                continue
            if deg != len(adj[v]):
                heapq.heappush(heap, (len(adj[v]), v))
                continue
            self._order[v] = rank
            rank += 1
            eliminated[v] = True

            up = sorted(adj[v].keys())
            self._bags[v] = np.asarray(up, dtype=np.int64)
            self._bag_weights[v] = np.array([adj[v][u] for u in up])
            # Fill-in: connect every pair of up-neighbours through v.
            for i, a in enumerate(up):
                wa = adj[v][a]
                for b in up[i + 1 :]:
                    via = wa + adj[v][b]
                    if via < adj[a].get(b, INF):
                        adj[a][b] = via
                        adj[b][a] = via
                del adj[a][v]
            adj[v].clear()

        # Parent = earliest-eliminated up-neighbour (all are eliminated
        # after v, so the minimum rank among them is the tree parent).
        for v in range(g.n):
            bag = self._bags[v]
            if bag.size:
                self.parent[v] = int(bag[np.argmin(self._order[bag])])

    def _build_labels(self) -> None:
        """Root-down dynamic program over the elimination tree."""
        n = self.graph.n
        topdown = np.argsort(-self._order)  # roots (last eliminated) first
        chain: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        for v in topdown:
            v = int(v)
            p = int(self.parent[v])
            if p == -1:
                self.depth[v] = 0
                self._root_of[v] = v
                self._anc_dist[v] = np.zeros(1, dtype=np.float64)
                self._bag_depths[v] = np.empty(0, dtype=np.int64)
                chain[v] = np.array([v], dtype=np.int64)
                continue
            self.depth[v] = self.depth[p] + 1
            self._root_of[v] = self._root_of[p]
            chain[v] = np.append(chain[p], np.int64(v))
            bag = self._bags[v]
            wgt = self._bag_weights[v]
            bag_depths = self.depth[bag]
            self._bag_depths[v] = bag_depths

            k = int(self.depth[v]) + 1
            dist = np.full(k, INF, dtype=np.float64)
            dist[-1] = 0.0
            # d(v, a) at ancestor depth j: min over up-neighbours u of
            # w'(v,u) + d(u, a) (Ouyang et al.'s two-sided recurrence).
            # When j <= depth(u), d(u, a) is u's label at depth j (a == u
            # handled by the label's own final 0 entry).  When a lies
            # strictly *below* u on the chain, u's label does not cover
            # it, but a's label covers u: d(u, a) = d(a, u) at depth(u).
            for u, w in zip(bag, wgt):
                lab_u = self._anc_dist[int(u)]
                m = lab_u.size
                np.minimum(dist[:m], w + lab_u, out=dist[:m])
                for j in range(m, k - 1):  # perf: loop-ok (bounded by treewidth * height)
                    cand = w + self._anc_dist[int(chain[v][j])][m - 1]
                    if cand < dist[j]:
                        dist[j] = cand
            self._anc_dist[v] = dist

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca(self, a: int, b: int) -> int:
        while self.depth[a] > self.depth[b]:
            a = int(self.parent[a])
        while self.depth[b] > self.depth[a]:
            b = int(self.parent[b])
        while a != b:
            a = int(self.parent[a])
            b = int(self.parent[b])
        return a

    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance in O(treewidth)."""
        if s == t:
            return 0.0
        if self._root_of[s] != self._root_of[t]:
            return INF
        lca = self._lca(s, t)
        lab_s = self._anc_dist[s]
        lab_t = self._anc_dist[t]
        d_lca = int(self.depth[lca])
        # Candidates: the LCA itself plus every vertex in its bag — all of
        # them ancestors of both s and t, so both labels cover them.
        best = lab_s[d_lca] + lab_t[d_lca]
        for depth in self._bag_depths[lca]:
            cand = lab_s[depth] + lab_t[depth]
            if cand < best:
                best = cand
        return float(best)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def treewidth_bound(self) -> int:
        """Max bag size = (treewidth upper bound given the order)."""
        return max((b.size for b in self._bags), default=0)

    def tree_height(self) -> int:
        return int(self.depth.max()) + 1 if self.graph.n else 0

    def average_label_size(self) -> float:
        return float(np.mean([lab.size for lab in self._anc_dist]))

    def index_bytes(self) -> int:
        """Label arrays + bag depth arrays (what queries touch)."""
        labels = sum(lab.nbytes for lab in self._anc_dist)
        bags = sum(b.nbytes for b in self._bag_depths)
        return int(labels + bags)
