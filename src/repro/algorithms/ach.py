"""ACH: approximate contraction hierarchies (the paper's baseline [12]).

ACH is CH with an ``epsilon``-relaxed witness test: when contracting ``v``,
a shortcut for the pair ``(u, w)`` is skipped whenever a replacement path of
length at most ``(1 + epsilon) * (w(u,v) + w(v,w))`` exists.  Queries run on
the resulting (smaller) hierarchy and return distances that may exceed the
truth by a bounded relative error.

Implemented by parameterising :class:`~repro.algorithms.ch.ContractionHierarchy`;
this module provides the named wrapper the benchmark harness registers.
"""

from __future__ import annotations

from ..graph import Graph
from .ch import ContractionHierarchy


class ApproximateCH(ContractionHierarchy):
    """CH with ``epsilon``-bounded approximate shortcuts.

    ``epsilon=0.1`` reproduces the configuration the paper reports.
    """

    def __init__(
        self,
        graph: Graph,
        epsilon: float = 0.1,
        *,
        witness_hop_cap: int = 60,
        seed: int | None = 0,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(
                f"ApproximateCH needs epsilon > 0 (got {epsilon}); "
                "use ContractionHierarchy for the exact index"
            )
        super().__init__(
            graph,
            epsilon=epsilon,
            witness_hop_cap=witness_hop_cap,
            seed=seed,
        )
