"""Dijkstra-family exact shortest-path algorithms.

These serve three roles in the reproduction:

* the classical baseline whose latency motivates the paper,
* the ground-truth oracle that labels training samples
  (:func:`sssp_many`, backed by scipy's C implementation), and
* building blocks for CH / ALT / hub labels.

All functions treat the graph as undirected with positive weights, matching
the paper's setting.
"""

from __future__ import annotations

import heapq

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..graph import Graph

#: Distance value used for unreachable vertices.
INF = float("inf")


def dijkstra(graph: Graph, source: int, target: int | None = None) -> np.ndarray | float:
    """Single-source Dijkstra with optional early termination.

    With ``target`` given, returns the shortest distance to it (``inf`` when
    unreachable) and stops as soon as the target is settled; otherwise
    returns the full distance array.
    """
    dist = np.full(graph.n, INF, dtype=np.float64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(graph.n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if target is not None and u == target:
            return d
        nbrs = graph.neighbors(u)
        wgts = graph.neighbor_weights(u)
        for v, w in zip(nbrs, wgts):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    if target is not None:
        return float(dist[target])
    return dist


def dijkstra_path(graph: Graph, source: int, target: int) -> tuple[float, list[int]]:
    """Shortest distance and one shortest path (vertex sequence).

    Returns ``(inf, [])`` when the target is unreachable.
    """
    dist = np.full(graph.n, INF, dtype=np.float64)
    parent = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(graph.n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if u == target:
            break
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if not np.isfinite(dist[target]):
        return INF, []
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return float(dist[target]), path


def bidirectional_dijkstra(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra point-to-point distance.

    Searches alternately from both endpoints and stops once the best meeting
    distance cannot be improved (``top_f + top_b >= best``), which is the
    standard correct stopping rule on undirected graphs.
    """
    if source == target:
        return 0.0
    dist_f = {source: 0.0}
    dist_b = {target: 0.0}
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    best = INF

    def expand(
        heap: list[tuple[float, int]],
        dist: dict[int, float],
        settled: set[int],
        other_dist: dict[int, float],
    ) -> float:
        nonlocal best
        d, u = heapq.heappop(heap)
        if u in settled:
            return d
        settled.add(u)
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            v = int(v)
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
            if v in other_dist:
                best = min(best, nd + other_dist[v])
        return d

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            expand(heap_f, dist_f, settled_f, dist_b)
        else:
            expand(heap_b, dist_b, settled_b, dist_f)
    return best


def sssp_rows(matrix: sparse.csr_matrix, sources: np.ndarray) -> np.ndarray:
    """Distance rows for ``sources`` against a prebuilt scipy CSR matrix.

    This is the single SSSP kernel shared by the serial labelling path and
    the :mod:`repro.parallel` worker processes — both call exactly this
    function on bit-identical CSR arrays, which is what makes the parallel
    gather bit-identical to the serial one regardless of worker count.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size == 0:
        return np.empty((0, int(matrix.shape[0])), dtype=np.float64)
    return np.asarray(
        csgraph.dijkstra(matrix, directed=False, indices=sources),
        dtype=np.float64,
    )


def sssp_many(graph: Graph, sources: np.ndarray | list[int]) -> np.ndarray:
    """Distances from each source to every vertex, via scipy's C Dijkstra.

    Returns an array of shape ``(len(sources), n)``; unreachable entries are
    ``inf``.  This is the labelling oracle for training-sample generation —
    one SSSP per landmark/source is far cheaper than per-pair queries.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size == 0:
        return np.empty((0, graph.n), dtype=np.float64)
    return sssp_rows(graph.to_csr_matrix(), sources)


def pair_distances(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """Exact distances for an array of ``(source, target)`` pairs.

    Groups pairs by source so each distinct source costs one SSSP run.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (k, 2), got {pairs.shape}")
    unique_sources, inverse = np.unique(pairs[:, 0], return_inverse=True)
    dists = sssp_many(graph, unique_sources)
    return dists[inverse, pairs[:, 1]]


def eccentricity(graph: Graph, source: int) -> float:
    """Largest finite shortest-path distance from ``source``."""
    dist = dijkstra(graph, source)
    finite = dist[np.isfinite(dist)]
    return float(finite.max()) if finite.size else 0.0


def graph_diameter_estimate(graph: Graph, *, probes: int = 4, seed: int = 0) -> float:
    """Cheap diameter lower bound via repeated farthest-vertex sweeps."""
    rng = np.random.default_rng(seed)
    u = int(rng.integers(graph.n))
    best = 0.0
    for _ in range(probes):
        dist = dijkstra(graph, u)
        dist = np.where(np.isfinite(dist), dist, -1.0)
        far = int(np.argmax(dist))
        best = max(best, float(dist[far]))
        u = far
    return best
