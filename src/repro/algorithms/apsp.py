"""SILC-style all-pairs distance index (Samet et al., SIGMOD'08).

The paper's related work cites SILC as the extreme point of the
space/time trade-off for kNN: precompute *everything*, answer in O(1).
This module provides that corner honestly: a dense ``|V| x |V|`` distance
matrix with O(1) lookups and an explicit quadratic memory cost — the cost
whose infeasibility at road-network scale (Sec. III-B of the paper)
motivates embeddings in the first place.

A ``memory_limit`` guard refuses construction beyond a byte budget,
reproducing the scalability wall instead of silently swapping.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .dijkstra import sssp_many


class AllPairsIndex:
    """Dense all-pairs shortest-distance matrix with O(1) queries.

    Parameters
    ----------
    graph:
        The road network.
    memory_limit:
        Maximum matrix size in bytes (default 512 MB); a graph whose
        ``8 n^2`` exceeds it raises ``MemoryError`` — the paper's
        ``Theta(|V|^2)`` infeasibility argument, made executable.
    """

    def __init__(self, graph: Graph, *, memory_limit: int = 512 * 1024**2) -> None:
        needed = 8 * graph.n * graph.n
        if needed > memory_limit:
            raise MemoryError(
                f"all-pairs matrix needs {needed / 1024**2:.0f} MB "
                f"(> limit {memory_limit / 1024**2:.0f} MB); this is the "
                "Theta(|V|^2) wall that motivates RNE"
            )
        self.graph = graph
        self.matrix = sssp_many(graph, np.arange(graph.n))

    def query(self, s: int, t: int) -> float:
        """Exact distance, O(1)."""
        return float(self.matrix[s, t])

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        return self.matrix[pairs[:, 0], pairs[:, 1]]

    def knn(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """Exact kNN by scanning one precomputed row."""
        targets = np.asarray(targets, dtype=np.int64)
        dists = self.matrix[source, targets]
        return targets[np.argsort(dists, kind="stable")[:k]]

    def range_query(self, source: int, targets: np.ndarray, tau: float) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.int64)
        return np.sort(targets[self.matrix[source, targets] <= tau])

    def index_bytes(self) -> int:
        return int(self.matrix.nbytes)
