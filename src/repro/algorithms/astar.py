"""A* search with geometric and landmark (ALT) heuristics.

The paper's reference [13] introduces ALT: A* guided by the landmark
triangle-inequality lower bound.  We provide plain A* with a Euclidean
heuristic (admissible when edge weights are at least straight-line lengths)
and ALT A* using :class:`~repro.algorithms.landmarks.LTEstimator`.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..graph import Graph
from .dijkstra import INF
from .landmarks import LTEstimator


def astar(
    graph: Graph,
    source: int,
    target: int,
    heuristic: Callable[[int], float],
) -> float:
    """Generic A* point-to-point distance.

    ``heuristic(v)`` must be an admissible lower bound on ``d(v, target)``
    for the result to be exact.  Returns ``inf`` when unreachable.
    """
    if source == target:
        return 0.0
    dist = {source: 0.0}
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    settled: set[int] = set()
    while heap:
        _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            return dist[u]
        du = dist[u]
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            v = int(v)
            nd = du + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd + heuristic(v), v))
    return INF


def astar_euclidean(graph: Graph, source: int, target: int) -> float:
    """A* with straight-line heuristic (requires graph coordinates)."""
    if graph.coords is None:
        raise ValueError("astar_euclidean requires vertex coordinates")
    coords = graph.coords
    goal = coords[target]

    def h(v: int) -> float:
        return float(np.linalg.norm(coords[v] - goal))

    return astar(graph, source, target, h)


def astar_alt(graph: Graph, lt: LTEstimator, source: int, target: int) -> float:
    """ALT: A* with the landmark triangle-inequality heuristic.

    Exact, and typically settles far fewer vertices than Dijkstra because
    the landmark bound is much tighter than the Euclidean one on road
    networks.
    """
    h_table = lt.heuristic_to(target)

    def h(v: int) -> float:
        return float(h_table[v])

    return astar(graph, source, target, h)
