"""Distance oracle via well-separated pair decomposition (paper's [27]).

Sankaranarayanan & Samet's oracle partitions all vertex pairs into
well-separated block pairs over a quadtree of the vertices' spatial
positions.  Each stored block pair carries one network distance between
block representatives; any query ``(s, t)`` resolves to the unique stored
pair whose blocks contain ``s`` and ``t``, giving an epsilon-approximate
distance in ``O(log |V|)`` without any graph search.

Two properties of the original are deliberately reproduced:

* the index is *large* — ``O(|V| / epsilon^2)`` block pairs — and
* construction does not scale to big graphs,

which is exactly why the paper only evaluates Distance Oracle on its
smallest dataset.  The harness mirrors that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph
from .dijkstra import sssp_many


@dataclass
class _QuadNode:
    id: int
    xmin: float
    ymin: float
    xmax: float
    ymax: float
    vertices: np.ndarray
    children: list["_QuadNode"] = field(default_factory=list)
    rep: int = -1

    @property
    def diameter(self) -> float:
        return float(np.hypot(self.xmax - self.xmin, self.ymax - self.ymin))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def centre(self) -> tuple[float, float]:
        return (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))


def _block_gap(a: _QuadNode, b: _QuadNode) -> float:
    """Minimum Euclidean distance between the two bounding boxes."""
    dx = max(a.xmin - b.xmax, b.xmin - a.xmax, 0.0)
    dy = max(a.ymin - b.ymax, b.ymin - a.ymax, 0.0)
    return float(np.hypot(dx, dy))


class DistanceOracle:
    """Epsilon-approximate WSPD distance oracle.

    Parameters
    ----------
    graph:
        Road network with vertex coordinates (required).
    epsilon:
        Approximation knob: blocks ``A, B`` are well separated when
        ``max(diam(A), diam(B)) <= (epsilon / 2) * gap(A, B)``.  Smaller
        epsilon means more, smaller block pairs — a bigger index and lower
        error.  The paper runs ``epsilon = 0.5`` on BJ.
    max_pairs:
        Safety cap; construction raises ``MemoryError`` beyond it instead of
        silently exploding, reproducing the oracle's scalability wall.
    """

    def __init__(
        self,
        graph: Graph,
        epsilon: float = 0.5,
        *,
        max_pairs: int = 5_000_000,
    ) -> None:
        if graph.coords is None:
            raise ValueError("DistanceOracle requires vertex coordinates")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        self.graph = graph
        self.epsilon = float(epsilon)
        self._max_pairs = int(max_pairs)

        self._nodes: list[_QuadNode] = []
        self._root = self._build_quadtree(np.arange(graph.n, dtype=np.int64))
        self._assign_representatives()
        self._pairs: dict[tuple[int, int], tuple[int, int]] = {}
        self._decompose(self._root, self._root)
        self._distances = self._resolve_distances()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_quadtree(self, vertices: np.ndarray) -> _QuadNode:
        coords = self.graph.coords
        xmin, ymin = coords[vertices].min(axis=0)
        xmax, ymax = coords[vertices].max(axis=0)
        pad = max(xmax - xmin, ymax - ymin, 1.0) * 1e-9
        root = _QuadNode(0, xmin - pad, ymin - pad, xmax + pad, ymax + pad, vertices)
        self._nodes.append(root)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.vertices.size <= 1:
                continue
            cx, cy = node.centre()
            if node.diameter <= 1e-9:  # coincident points: stop splitting
                continue
            pts = coords[node.vertices]
            east = pts[:, 0] >= cx
            north = pts[:, 1] >= cy
            quadrants = (
                (~east & ~north, node.xmin, node.ymin, cx, cy),
                (east & ~north, cx, node.ymin, node.xmax, cy),
                (~east & north, node.xmin, cy, cx, node.ymax),
                (east & north, cx, cy, node.xmax, node.ymax),
            )
            for mask, x0, y0, x1, y1 in quadrants:
                if not mask.any():
                    continue
                child = _QuadNode(
                    len(self._nodes), x0, y0, x1, y1, node.vertices[mask]
                )
                self._nodes.append(child)
                node.children.append(child)
                stack.append(child)
        return root

    def _assign_representatives(self) -> None:
        coords = self.graph.coords
        for node in self._nodes:
            cx, cy = node.centre()
            pts = coords[node.vertices]
            offsets = np.hypot(pts[:, 0] - cx, pts[:, 1] - cy)
            node.rep = int(node.vertices[np.argmin(offsets)])

    def _well_separated(self, a: _QuadNode, b: _QuadNode) -> bool:
        gap = _block_gap(a, b)
        return max(a.diameter, b.diameter) <= 0.5 * self.epsilon * gap

    def _decompose(self, a: _QuadNode, b: _QuadNode) -> None:
        stack = [(a, b)]
        while stack:
            a, b = stack.pop()
            if a.vertices.size == 1 and b.vertices.size == 1 and a.rep == b.rep:
                continue  # the (v, v) pair is never queried
            if self._well_separated(a, b) or (a.is_leaf and b.is_leaf):
                self._pairs[(a.id, b.id)] = (a.rep, b.rep)
                if len(self._pairs) > self._max_pairs:
                    raise MemoryError(
                        f"oracle exceeded max_pairs={self._max_pairs}; "
                        "this reproduces Distance Oracle's scalability wall"
                    )
                continue
            # Split the block with the larger diameter (leaves can't split).
            split_a = (a.diameter >= b.diameter and not a.is_leaf) or b.is_leaf
            if split_a:
                stack.extend((child, b) for child in a.children)
            else:
                stack.extend((a, child) for child in b.children)

    def _resolve_distances(self) -> dict[tuple[int, int], float]:
        """Network distances for all stored representative pairs.

        Pairs are grouped by source representative so each distinct source
        costs exactly one SSSP run (scipy's C Dijkstra).
        """
        by_source: dict[int, list[tuple[tuple[int, int], int]]] = {}
        for key, (ra, rb) in self._pairs.items():
            by_source.setdefault(ra, []).append((key, rb))
        sources = np.array(sorted(by_source), dtype=np.int64)
        table = sssp_many(self.graph, sources)
        row = {int(s): i for i, s in enumerate(sources)}
        out: dict[tuple[int, int], float] = {}
        for ra, items in by_source.items():
            dists = table[row[ra]]
            for key, rb in items:
                out[key] = float(dists[rb])
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _child_containing(self, node: _QuadNode, v: int) -> _QuadNode:
        x, y = self.graph.coords[v]
        cx, cy = node.centre()
        east = x >= cx
        north = y >= cy
        for child in node.children:
            c_east = child.xmin >= cx - 1e-12
            c_north = child.ymin >= cy - 1e-12
            if c_east == east and c_north == north:
                return child
        # Quadrant empty of other points can't happen for a contained vertex,
        # but guard against float edge cases by scanning membership.
        for child in node.children:
            if v in child.vertices:
                return child
        raise RuntimeError(f"quadtree descent lost vertex {v}")

    def query(self, s: int, t: int) -> float:
        """Approximate distance: replay the decomposition descent.

        The descent follows exactly the splits made during construction, so
        it always terminates at a stored block pair.
        """
        if s == t:
            return 0.0
        a, b = self._root, self._root
        while True:
            key = (a.id, b.id)
            if key in self._distances:
                return self._distances[key]
            split_a = (a.diameter >= b.diameter and not a.is_leaf) or b.is_leaf
            if split_a:
                a = self._child_containing(a, s)
            else:
                b = self._child_containing(b, t)

    def knn(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets by oracle distance (brute-force scan).

        The original supports incremental kNN over the quadtree; a scan over
        ``targets`` preserves its accuracy profile, which is what Fig. 16
        compares.
        """
        targets = np.asarray(targets, dtype=np.int64)
        dists = np.array([self.query(source, int(t)) for t in targets])
        order = np.argsort(dists, kind="stable")[:k]
        return targets[order]

    @property
    def num_pairs(self) -> int:
        return len(self._pairs)

    def index_bytes(self) -> int:
        """Approximate memory: two ids + a distance per stored pair."""
        return len(self._pairs) * 24 + len(self._nodes) * 48
