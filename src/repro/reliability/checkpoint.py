"""Resumable training checkpoints and divergence rollback.

The multi-stage pipeline (phase-1 per-level hierarchy training, the vertex
phase, the joint polish, fine-tuning) used to be all-or-nothing: a crash in
the last stage threw away everything.  This module provides

* :class:`CheckpointManager` — a directory of per-stage artifacts (written
  through :mod:`~repro.reliability.artifacts`, so each one is atomic and
  self-validating) with *resume-from-latest-valid*: corrupt checkpoints are
  skipped, not trusted;
* state packing helpers that capture embedding matrices, per-level Adam
  moments and the RNG stream position, making a resumed run bit-identical
  to an uninterrupted one;
* :func:`run_with_recovery` — divergence detection (non-finite loss, or an
  error regression beyond ``regression_factor`` × the recent best) with
  rollback to the pre-stage snapshot and a learning-rate backoff under a
  bounded retry budget.

Deliberately free of ``repro.core`` imports: it consumes plain arrays,
objects with ``.m / .v / .t`` (Adam states) and results with ``.mse``
lists, so the dependency arrow stays core → reliability.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from . import faults
from .artifacts import ArtifactError, load_artifact, save_artifact

__all__ = [
    "CheckpointManager",
    "RetryPolicy",
    "StageOutcome",
    "TrainingDiverged",
    "abort_on_nonfinite",
    "diverged",
    "pack_state",
    "restore_rng",
    "rng_state",
    "run_with_recovery",
    "unpack_state",
]

R = TypeVar("R")


class TrainingDiverged(RuntimeError):
    """Training produced non-finite or regressing loss beyond the budget."""


# ----------------------------------------------------------------------
# state packing
# ----------------------------------------------------------------------
def pack_state(
    matrices: Sequence[np.ndarray],
    adam_states: Optional[Sequence[Any]] = None,
    *,
    version: Optional[int] = None,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Pack embedding matrices (+ optional Adam moments) for an artifact.

    Returns ``(arrays, meta_fragment)``; the fragment carries the Adam step
    counters, which are scalars and live more naturally in the manifest.
    ``version`` — when given — records the embedding version the state
    belongs to (``meta["model_version"]``), so live-update journals can
    tie a checkpoint to a specific published embedding.
    """
    arrays: Dict[str, np.ndarray] = {}
    for level, matrix in enumerate(matrices):
        arrays[f"local_{level}"] = np.asarray(matrix)
    meta: Dict[str, Any] = {"num_levels": len(list(matrices))}
    if version is not None:
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        meta["model_version"] = int(version)
    if adam_states is not None:
        for level, state in enumerate(adam_states):
            arrays[f"adam_m_{level}"] = np.asarray(state.m)
            arrays[f"adam_v_{level}"] = np.asarray(state.v)
        meta["adam_t"] = [int(state.t) for state in adam_states]
    return arrays, meta


def unpack_state(
    arrays: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    matrices: Sequence[np.ndarray],
    adam_states: Optional[Sequence[Any]] = None,
) -> Optional[int]:
    """Restore packed state *in place* into ``matrices`` / ``adam_states``.

    Shape mismatches (a checkpoint from a different architecture or
    hierarchy) raise :class:`ArtifactError` rather than silently writing
    misaligned parameters.  Returns the embedding version the checkpoint
    was packed with (``meta["model_version"]``), or ``None`` for
    checkpoints written before live updates existed.
    """
    if meta.get("num_levels") != len(list(matrices)):
        raise ArtifactError(
            f"checkpoint has {meta.get('num_levels')} levels, "
            f"model has {len(list(matrices))}"
        )
    for level, matrix in enumerate(matrices):
        key = f"local_{level}"
        if key not in arrays:
            raise ArtifactError(f"checkpoint is missing array '{key}'")
        if arrays[key].shape != matrix.shape:
            raise ArtifactError(
                f"checkpoint array '{key}' has shape {arrays[key].shape}, "
                f"model expects {matrix.shape}"
            )
        matrix[...] = arrays[key]
    if adam_states is not None:
        counters = meta.get("adam_t")
        if counters is None or len(counters) != len(list(adam_states)):
            raise ArtifactError("checkpoint is missing Adam step counters")
        for level, state in enumerate(adam_states):
            for prefix, target in (("adam_m", state.m), ("adam_v", state.v)):
                key = f"{prefix}_{level}"
                if key not in arrays or arrays[key].shape != target.shape:
                    raise ArtifactError(
                        f"checkpoint Adam state '{key}' is missing or misshaped"
                    )
                target[...] = arrays[key]
            state.t = int(counters[level])
    raw_version = meta.get("model_version")
    if raw_version is None:
        return None
    if (
        isinstance(raw_version, bool)
        or not isinstance(raw_version, int)
        or raw_version < 0
    ):
        raise ArtifactError(
            f"checkpoint carries invalid model version {raw_version!r}"
        )
    return int(raw_version)


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-serialisable snapshot of the generator's stream position."""
    return dict(rng.bit_generator.state)


def restore_rng(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Rewind ``rng`` to a snapshot taken with :func:`rng_state`."""
    rng.bit_generator.state = state


# ----------------------------------------------------------------------
# checkpoint directory
# ----------------------------------------------------------------------
class CheckpointManager:
    """A directory of atomic, validated per-stage training checkpoints.

    Parameters
    ----------
    directory:
        Created if missing.  Checkpoints are ``<stage>.ckpt.npz`` files.
    graph:
        When given, every checkpoint embeds (and later enforces) the
        graph's fingerprint, so checkpoints cannot resume onto a
        different network.
    """

    SUFFIX = ".ckpt.npz"

    def __init__(self, directory: str | os.PathLike, *, graph: Any = None) -> None:
        self.directory = os.fspath(directory)
        self._graph = graph
        #: ``(path, reason)`` for checkpoints rejected during :meth:`latest`.
        self.skipped: List[Tuple[str, str]] = []
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, stage: str) -> str:
        if not stage or os.sep in stage or stage.startswith("."):
            raise ValueError(f"bad stage name {stage!r}")
        return os.path.join(self.directory, f"{stage}{self.SUFFIX}")

    def save(
        self,
        stage: str,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, Any],
        *,
        step: int,
    ) -> str:
        """Atomically write the checkpoint for ``stage`` (ordinal ``step``)."""
        path = self.path_for(stage)
        save_artifact(
            path,
            arrays,
            kind="checkpoint",
            graph=self._graph,
            meta={**meta, "stage": stage, "step": int(step)},
        )
        faults.fire("checkpoint.saved", stage)
        return path

    def load(self, stage: str) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        arrays, manifest = load_artifact(
            self.path_for(stage), expect_kind="checkpoint", graph=self._graph
        )
        return arrays, manifest["meta"]

    def stages_on_disk(self) -> List[str]:
        names = [
            entry[: -len(self.SUFFIX)]
            for entry in sorted(os.listdir(self.directory))
            if entry.endswith(self.SUFFIX)
        ]
        return names

    def latest(
        self,
    ) -> Optional[Tuple[str, Dict[str, np.ndarray], Dict[str, Any]]]:
        """Highest-``step`` checkpoint that passes full validation.

        Corrupt or mismatched files are recorded in :attr:`skipped` and
        ignored — a crash mid-write (or bit rot) degrades resume to the
        previous stage instead of poisoning it.
        """
        self.skipped = []
        best: Optional[Tuple[int, str, Dict[str, np.ndarray], Dict[str, Any]]] = None
        for stage in self.stages_on_disk():
            try:
                arrays, meta = self.load(stage)
            except ArtifactError as exc:
                self.skipped.append((self.path_for(stage), str(exc)))
                continue
            step = int(meta.get("step", -1))
            if best is None or step > best[0]:
                best = (step, stage, arrays, meta)
        if best is None:
            return None
        return best[1], best[2], best[3]

    def clear(self) -> None:
        """Delete every checkpoint (called after a successful final save)."""
        for stage in self.stages_on_disk():
            os.remove(self.path_for(stage))


# ----------------------------------------------------------------------
# divergence detection and recovery
# ----------------------------------------------------------------------
def diverged(
    history: Sequence[float],
    *,
    regression_factor: float = 5.0,
    window: int = 5,
) -> bool:
    """Whether a per-epoch loss history shows divergence.

    Non-finite values always count.  Otherwise the last value must not
    exceed ``regression_factor`` times the best loss of the trailing
    ``window`` epochs — plain noise passes, an exploding optimiser does not.
    """
    values = [float(v) for v in history]
    if not values:
        return False
    if any(not math.isfinite(v) for v in values):
        return True
    if len(values) < 2:
        return False
    recent = values[-(window + 1) : -1]
    return values[-1] > regression_factor * min(recent)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs for :func:`run_with_recovery`."""

    max_retries: int = 2
    lr_backoff: float = 0.5
    regression_factor: float = 5.0
    window: int = 5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not (0.0 < self.lr_backoff < 1.0):
            raise ValueError(f"lr_backoff must be in (0, 1), got {self.lr_backoff}")
        if self.regression_factor <= 1.0:
            raise ValueError(
                f"regression_factor must be > 1, got {self.regression_factor}"
            )


@dataclass
class StageOutcome:
    """What :func:`run_with_recovery` settled on for one training stage."""

    result: Any
    attempts: int = 1
    lr_scale: float = 1.0
    notes: List[str] = field(default_factory=list)


def abort_on_nonfinite(stage: str = "training") -> Callable[[int, float, float], None]:
    """An ``on_epoch`` hook that aborts a stage the moment loss goes NaN/inf.

    Without it a 10-epoch stage burns 9 more epochs on garbage before the
    post-stage divergence check notices.
    """

    def hook(epoch: int, mse: float, mean_rel_error: float) -> None:
        if not (math.isfinite(mse) and math.isfinite(mean_rel_error)):
            raise TrainingDiverged(
                f"{stage}: non-finite loss at epoch {epoch} "
                f"(mse={mse}, mean_rel_error={mean_rel_error})"
            )

    return hook


def run_with_recovery(
    attempt: Callable[[float], R],
    snapshot: Callable[[], Any],
    restore: Callable[[Any], None],
    *,
    policy: RetryPolicy = RetryPolicy(),
    stage: str = "stage",
    history_of: Optional[Callable[[R], Sequence[float]]] = None,
) -> StageOutcome:
    """Run one training stage with rollback-and-backoff on divergence.

    ``attempt(lr_scale)`` runs the stage (mutating the model in place) and
    returns an object whose ``.mse`` is the per-epoch loss history; it may
    also raise :class:`TrainingDiverged` (e.g. via
    :func:`abort_on_nonfinite`) to bail out early.  On divergence the model
    is restored from the pre-stage snapshot and the stage retried with the
    learning rate scaled down by ``policy.lr_backoff``, at most
    ``policy.max_retries`` times; exhausting the budget restores the last
    good state and raises.

    ``history_of`` overrides where the loss history is read from (for
    results that track a different metric, e.g. fine-tuning's per-round
    validation errors).
    """
    snap = snapshot()
    scale = 1.0
    notes: List[str] = []
    for attempt_no in range(1, policy.max_retries + 2):
        reason: Optional[str] = None
        try:
            result = attempt(scale)
        except TrainingDiverged as exc:
            reason = str(exc)
        else:
            if history_of is not None:
                history = [float(v) for v in history_of(result)]
            else:
                history = [float(v) for v in getattr(result, "mse", [])]
            if not diverged(
                history,
                regression_factor=policy.regression_factor,
                window=policy.window,
            ):
                return StageOutcome(result, attempt_no, scale, notes)
            tail = ", ".join(f"{v:.4g}" for v in history[-3:])
            reason = f"loss history diverged (last epochs: {tail})"
        restore(snap)
        next_scale = scale * policy.lr_backoff
        notes.append(
            f"{stage}: attempt {attempt_no} diverged — {reason}; "
            f"rolled back, retrying at lr scale {next_scale:g}"
        )
        scale = next_scale
    raise TrainingDiverged(
        f"{stage}: still diverging after {policy.max_retries + 1} attempts "
        f"(lr scaled down to {scale / policy.lr_backoff:g}); "
        "model restored to the last good state"
    )
