"""Reliability layer: crash-safe artifacts, resumable training, degradation.

Four cooperating pieces (see ``docs/RELIABILITY.md``):

* :mod:`~repro.reliability.artifacts` — atomic ``.npz`` artifacts with a
  JSON manifest, per-array CRC32 checksums and a graph fingerprint, so a
  truncated / bit-flipped / wrong-graph file raises :class:`ArtifactError`
  instead of silently mis-answering queries.
* :mod:`~repro.reliability.checkpoint` — per-stage training checkpoints
  with resume-from-latest and divergence rollback.
* :mod:`~repro.reliability.faults` — a deterministic fault-injection
  harness the tests use to prove atomicity and resume actually work.
* :mod:`~repro.reliability.fallback` — :class:`ResilientOracle`, a serving
  wrapper that validates the artifact against the live graph and falls
  back to exact Dijkstra when validation fails.

Exports are resolved lazily (PEP 562) so that low-level modules
(``graph/io.py`` imports :mod:`.artifacts`) never drag the serving layer —
and with it ``repro.core`` — into their import chain.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    # artifacts
    "ArtifactError": ".artifacts",
    "SCHEMA_VERSION": ".artifacts",
    "graph_fingerprint": ".artifacts",
    "load_artifact": ".artifacts",
    "save_artifact": ".artifacts",
    # checkpoint
    "CheckpointManager": ".checkpoint",
    "RetryPolicy": ".checkpoint",
    "StageOutcome": ".checkpoint",
    "TrainingDiverged": ".checkpoint",
    "diverged": ".checkpoint",
    "run_with_recovery": ".checkpoint",
    # faults
    "FaultInjector": ".faults",
    "InjectedFault": ".faults",
    "corrupt_file": ".faults",
    "installed": ".faults",
    "truncate_file": ".faults",
    # fallback
    "OracleStats": ".fallback",
    "ResilientOracle": ".fallback",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module, __name__), name)


def __dir__() -> list[str]:
    return __all__
