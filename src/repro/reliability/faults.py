"""Deterministic fault injection for crash-safety and recovery tests.

The artifact and checkpoint layers announce their irreversible IO steps by
calling :func:`fire` with a stable event name (``"artifact.pre_replace"``,
``"checkpoint.saved"``, ...).  In production no injector is installed and
:func:`fire` is a single ``is None`` check.  Under test, an installed
:class:`FaultInjector` either records the event stream (to enumerate every
crash boundary of a run) or raises :class:`InjectedFault` at a chosen
occurrence of a chosen event — a ``kill -9`` stand-in that aborts the
process mid-operation at a precisely reproducible point.

File corruption helpers (:func:`corrupt_file`, :func:`truncate_file`) are
seeded and byte-deterministic so a failing corruption test replays exactly.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "corrupt_file",
    "fire",
    "installed",
    "truncate_file",
]


class InjectedFault(RuntimeError):
    """A simulated crash / IO failure raised by the fault harness.

    Deliberately *not* an ``OSError`` subclass: production code must never
    accidentally swallow it in an IO-retry path — it models the process
    dying, and tests expect it to propagate to the very top.
    """


@dataclass
class FaultInjector:
    """Records reliability events and optionally crashes at one of them.

    Parameters
    ----------
    crash_at:
        Mapping ``event name -> occurrence number`` (1-based).  When the
        n-th :func:`fire` of that event happens, :class:`InjectedFault` is
        raised.  An empty mapping makes the injector a pure recorder.
    """

    crash_at: Dict[str, int] = field(default_factory=dict)
    log: List[Tuple[str, str]] = field(default_factory=list)
    _counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def recorder(cls) -> "FaultInjector":
        """An injector that only records the event stream."""
        return cls()

    @classmethod
    def crash_on(cls, event: str, occurrence: int = 1) -> "FaultInjector":
        """An injector that crashes at the ``occurrence``-th ``event``."""
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        return cls(crash_at={event: occurrence})

    def on_event(self, event: str, detail: str) -> None:
        self.log.append((event, detail))
        count = self._counts.get(event, 0) + 1
        self._counts[event] = count
        if self.crash_at.get(event) == count:
            raise InjectedFault(
                f"injected crash at occurrence {count} of '{event}' ({detail})"
            )

    def events(self) -> List[str]:
        """Event names seen so far, in order (details stripped)."""
        return [event for event, _ in self.log]


#: The currently installed injector; ``None`` in production.
_ACTIVE: Optional[FaultInjector] = None


def fire(event: str, detail: str = "") -> None:
    """Announce a reliability event; crashes if an injector says so."""
    if _ACTIVE is not None:
        _ACTIVE.on_event(event, detail)


@contextlib.contextmanager
def installed(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def corrupt_file(path: str | os.PathLike, *, seed: int = 0, nbytes: int = 1) -> None:
    """Flip ``nbytes`` bytes of ``path`` in place, deterministically.

    Offsets and XOR masks come from a seeded generator, so a given
    ``(file size, seed)`` always corrupts the same bytes.  Masks are drawn
    from ``1..255`` so every chosen byte really changes.
    """
    if nbytes < 1:
        raise ValueError(f"nbytes must be >= 1, got {nbytes}")
    with open(path, "r+b") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            raise ValueError(f"cannot corrupt empty file {os.fspath(path)!r}")
        rng = np.random.default_rng(seed)
        offsets = rng.integers(0, size, size=nbytes)
        masks = rng.integers(1, 256, size=nbytes)
        for offset, mask in zip(offsets, masks):
            fh.seek(int(offset))
            byte = fh.read(1)[0]
            fh.seek(int(offset))
            fh.write(bytes([byte ^ int(mask)]))


def truncate_file(path: str | os.PathLike, *, fraction: float = 0.5) -> None:
    """Truncate ``path`` to ``fraction`` of its size (a torn write)."""
    if not (0.0 <= fraction < 1.0):
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(int(size * fraction))
