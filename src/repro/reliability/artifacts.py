"""Crash-safe, self-validating ``.npz`` artifacts.

Every persisted artefact of the system (trained embeddings, full RNE
indexes, training checkpoints) goes through this module, which guarantees:

* **Atomicity** — data is written to a temp file in the same directory,
  fsync'd, then moved into place with ``os.replace``.  A crash at any
  point leaves either the previous artifact or no artifact, never a torn
  file under the final name.
* **Integrity** — a JSON manifest (stored inside the archive) records a
  schema version, the artifact kind, and per-array shape / dtype / CRC32.
  :func:`load_artifact` re-verifies every byte, so truncation or bit rot
  surfaces as a typed :class:`ArtifactError` instead of wrong distances.
* **Graph binding** — artifacts trained against a graph embed its
  fingerprint (``n``, ``m``, CRC32 of the edge arrays).  Loading against a
  *different* graph — the silent-wrong-answer failure mode of learned
  indexes — is rejected.

The module deliberately depends only on numpy and the stdlib (plus the
fault hooks) so the graph IO layer can use it without importing the model
stack.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

import numpy as np

from . import faults

if TYPE_CHECKING:  # import-light: only the type, never the graph stack
    from ..graph.graph import Graph

__all__ = [
    "ArtifactError",
    "SCHEMA_VERSION",
    "artifact_version",
    "graph_fingerprint",
    "load_artifact",
    "save_artifact",
    "validate_embedding_payload",
]

#: Bump when the manifest layout changes incompatibly.
SCHEMA_VERSION = 1

#: Archive member holding the JSON manifest (uint8 bytes).
_MANIFEST_KEY = "__manifest__"


class ArtifactError(RuntimeError):
    """A persisted artifact is missing, corrupt, or bound to another graph.

    Raised *instead of* returning data whenever an artifact cannot be
    proven valid — the serving layer treats it as "fall back to exact".
    """


def graph_fingerprint(graph: "Graph") -> Dict[str, int]:
    """Identity of a graph for artifact binding: ``n``, ``m``, weight hash.

    The hash covers endpoints *and* weights of the canonical undirected
    edge list, so reweighting a single road changes the fingerprint.
    """
    us, vs, ws = graph.edge_array()
    digest = zlib.crc32(np.ascontiguousarray(us).tobytes())
    digest = zlib.crc32(np.ascontiguousarray(vs).tobytes(), digest)
    digest = zlib.crc32(np.ascontiguousarray(ws).tobytes(), digest)
    return {"n": int(graph.n), "m": int(graph.m), "weight_hash": int(digest)}


def _array_checksum(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


def artifact_version(manifest: Mapping[str, Any]) -> int:
    """Embedding version recorded in an artifact manifest.

    Artifacts written before live updates existed carry no version and
    revive as version ``0``; anything present must be a non-negative
    integer (a stamp that cannot be ordered would defeat the staleness
    contract, so malformed values raise instead of defaulting).
    """
    meta = manifest.get("meta") or {}
    raw = meta.get("version", 0)
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 0:
        raise ArtifactError(
            f"artifact carries invalid embedding version {raw!r} "
            "(expected a non-negative integer)"
        )
    return int(raw)


def save_artifact(
    path: str | os.PathLike,
    arrays: Mapping[str, np.ndarray],
    *,
    kind: str,
    graph: Optional["Graph"] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Atomically persist ``arrays`` with a validating manifest.

    Parameters
    ----------
    arrays:
        Named arrays (scalars are fine; they round-trip as 0-d arrays).
    kind:
        Artifact type tag (``"embedding"``, ``"rne"``, ``"checkpoint"``);
        :func:`load_artifact` refuses kind mismatches.
    graph:
        When given, the graph's fingerprint is embedded and enforced at
        load time.
    meta:
        Extra JSON-serialisable payload (config echoes, RNG state, ...).
    """
    if _MANIFEST_KEY in arrays:
        raise ValueError(f"array name {_MANIFEST_KEY!r} is reserved")
    path = os.fspath(path)
    named = {name: np.asarray(value) for name, value in arrays.items()}
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "arrays": {
            name: {
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
                "crc32": _array_checksum(arr),
            }
            for name, arr in named.items()
        },
        "graph": graph_fingerprint(graph) if graph is not None else None,
        "meta": meta if meta is not None else {},
    }
    payload = np.frombuffer(
        json.dumps(manifest, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )

    faults.fire("artifact.pre_write", path)
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **{_MANIFEST_KEY: payload}, **named)
            fh.flush()
            os.fsync(fh.fileno())
        faults.fire("artifact.pre_replace", path)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    _fsync_directory(os.path.dirname(path) or ".")
    faults.fire("artifact.post_replace", path)


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platform without directory fds; rename is still atomic
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_artifact(
    path: str | os.PathLike,
    *,
    expect_kind: Optional[str] = None,
    graph: Optional["Graph"] = None,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Load and fully verify an artifact written by :func:`save_artifact`.

    Returns ``(arrays, manifest)``.  Raises :class:`ArtifactError` — never
    returns partial data — when the file is missing, truncated, bit-flipped,
    schema-incompatible, of the wrong kind, or bound to a different graph.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if _MANIFEST_KEY not in data.files:
                raise ArtifactError(
                    f"{path}: no manifest — not a reliability artifact "
                    "(legacy or foreign .npz); re-save it with the current "
                    "version to get integrity checking"
                )
            try:
                manifest = json.loads(bytes(data[_MANIFEST_KEY]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ArtifactError(f"{path}: manifest does not parse: {exc}") from exc
            _check_manifest(path, manifest, expect_kind)
            arrays: Dict[str, np.ndarray] = {}
            for name, spec in manifest["arrays"].items():
                if name not in data.files:
                    raise ArtifactError(
                        f"{path}: array '{name}' listed in manifest is missing"
                    )
                arr = np.array(data[name])
                _check_array(path, name, arr, spec)
                arrays[name] = arr
    except ArtifactError:
        raise
    except (OSError, EOFError, zipfile.BadZipFile, zlib.error, ValueError, KeyError) as exc:
        # np.load raises a zoo of exceptions on damaged archives; collapse
        # them all into the one typed error callers are promised.
        raise ArtifactError(
            f"{path}: artifact unreadable ({exc.__class__.__name__}: {exc})"
        ) from exc
    if graph is not None:
        _check_graph(path, manifest, graph)
    return arrays, manifest


def _check_manifest(
    path: str, manifest: Any, expect_kind: Optional[str]
) -> None:
    if not isinstance(manifest, dict) or "arrays" not in manifest:
        raise ArtifactError(f"{path}: manifest is malformed")
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    if expect_kind is not None and manifest.get("kind") != expect_kind:
        raise ArtifactError(
            f"{path}: artifact kind is {manifest.get('kind')!r}, "
            f"expected {expect_kind!r}"
        )


def _check_array(path: str, name: str, arr: np.ndarray, spec: Any) -> None:
    if list(arr.shape) != list(spec["shape"]) or arr.dtype.str != spec["dtype"]:
        raise ArtifactError(
            f"{path}: array '{name}' has shape {arr.shape} dtype {arr.dtype}, "
            f"manifest says shape {tuple(spec['shape'])} dtype {spec['dtype']}"
        )
    checksum = _array_checksum(arr)
    if checksum != spec["crc32"]:
        raise ArtifactError(
            f"{path}: checksum mismatch for array '{name}' "
            f"(stored {spec['crc32']}, computed {checksum}) — artifact is corrupt"
        )


def validate_embedding_payload(
    path: str | os.PathLike,
    matrix: np.ndarray,
    p: np.ndarray | float,
    *,
    expect_n: Optional[int] = None,
) -> Tuple[np.ndarray, float]:
    """Validate a loaded ``(matrix, p)`` embedding payload.

    Shared by every loader that revives a queryable model: the matrix must
    be 2-d and fully finite, ``p`` a finite scalar ``>= 1`` (the serving
    metrics; fractional-``p`` ablations are an in-memory experiment, not a
    persisted artefact), and with ``expect_n`` the row count must match the
    live graph.  Violations raise :class:`ArtifactError` so callers never
    serve distances from a half-trusted payload.
    """
    path = os.fspath(path)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ArtifactError(
            f"{path}: embedding matrix must be 2-d, got shape {matrix.shape}"
        )
    if matrix.size and not np.isfinite(matrix).all():
        raise ArtifactError(f"{path}: embedding matrix contains NaN/inf values")
    if expect_n is not None and matrix.shape[0] != expect_n:
        raise ArtifactError(
            f"{path}: embedding has {matrix.shape[0]} rows "
            f"for a graph of {expect_n} vertices"
        )
    p_arr = np.asarray(p, dtype=np.float64)
    if p_arr.ndim != 0:
        raise ArtifactError(f"{path}: metric order p must be a scalar")
    p_val = float(p_arr)
    if not np.isfinite(p_val) or p_val < 1.0:
        raise ArtifactError(
            f"{path}: metric order p must be finite and >= 1, got {p_val}"
        )
    return matrix, p_val


def _check_graph(path: str, manifest: Dict[str, Any], graph: "Graph") -> None:
    stored = manifest.get("graph")
    if stored is None:
        raise ArtifactError(
            f"{path}: artifact carries no graph fingerprint but a graph "
            "binding check was requested"
        )
    live = graph_fingerprint(graph)
    if stored != live:
        raise ArtifactError(
            f"{path}: artifact was built for a different graph "
            f"(stored n={stored.get('n')} m={stored.get('m')} "
            f"hash={stored.get('weight_hash')}, live n={live['n']} "
            f"m={live['m']} hash={live['weight_hash']})"
        )
