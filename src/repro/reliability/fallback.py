"""Graceful-degradation serving: learned answers when safe, exact otherwise.

Learned distance oracles give no per-query guarantees — a stale or corrupt
embedding answers *confidently and wrongly*.  :class:`ResilientOracle`
closes that hole for serving:

* at construction it loads the RNE artifact through the validating
  artifact layer (checksums + graph fingerprint) and optionally probes the
  model's error on sampled pairs against exact Dijkstra ground truth;
* if the artifact is rejected, or the probed mean relative error exceeds
  the caller's bound, the oracle *degrades*: every query is served by the
  exact algorithms instead, and counters record the fallback rate so
  operators can alarm on it;
* healthy oracles serve O(d) learned answers with zero added overhead
  beyond one counter increment.

Degradation is all-or-nothing by design: per-query error detection would
require the exact answer per query, which is exactly the cost the learned
index exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..algorithms.dijkstra import bidirectional_dijkstra, dijkstra, pair_distances
from ..core.pipeline import RNE
from ..graph import Graph
from .artifacts import ArtifactError

__all__ = ["OracleStats", "ResilientOracle"]


@dataclass
class OracleStats:
    """Serving counters: how often the exact fallback carried a query."""

    model_queries: int = 0
    fallback_queries: int = 0
    degraded: bool = False
    degraded_reason: Optional[str] = None
    probe_mean_rel_error: Optional[float] = None
    notes: list[str] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return self.model_queries + self.fallback_queries

    @property
    def fallback_rate(self) -> float:
        total = self.total_queries
        return self.fallback_queries / total if total else 0.0


class ResilientOracle:
    """Distance oracle that falls back to exact search when trust is lost.

    Parameters
    ----------
    graph:
        The live road network queries refer to.  This is the source of
        truth; the artifact must prove it belongs to it.
    artifact_path:
        A saved :class:`~repro.core.pipeline.RNE` artifact.  Corrupt,
        truncated, or wrong-graph artifacts degrade the oracle instead of
        raising.
    rne:
        Alternatively, an already-loaded (trusted) RNE.
    error_bound:
        Optional mean-relative-error budget.  When set, ``probe_pairs``
        random pairs are labelled exactly and the model must beat the
        bound, else the oracle degrades.
    probe_pairs:
        Number of validation pairs for the error probe.
    seed:
        Seed for the probe-pair sample (determinism contract of the repo).
    """

    def __init__(
        self,
        graph: Graph,
        artifact_path: Optional[str] = None,
        *,
        rne: Optional[RNE] = None,
        error_bound: Optional[float] = None,
        probe_pairs: int = 64,
        seed: int = 0,
    ) -> None:
        if (artifact_path is None) == (rne is None):
            raise ValueError("provide exactly one of artifact_path or rne")
        if error_bound is not None and error_bound <= 0:
            raise ValueError(f"error_bound must be > 0, got {error_bound}")
        self.graph = graph
        self.stats = OracleStats()
        self.rne: Optional[RNE] = rne
        self.error_bound = error_bound
        if artifact_path is not None:
            try:
                self.rne = RNE.load(artifact_path, graph)
            except ArtifactError as exc:
                self._degrade(f"artifact rejected: {exc}")
        if self.rne is not None and error_bound is not None:
            self._probe(probe_pairs, seed)

    # ------------------------------------------------------------------
    # health management
    # ------------------------------------------------------------------
    def _degrade(self, reason: str) -> None:
        self.rne = None
        self.stats.degraded = True
        self.stats.degraded_reason = reason
        self.stats.notes.append(reason)

    def _probe(self, probe_pairs: int, seed: int) -> None:
        """Compare the model against exact distances on sampled pairs."""
        if probe_pairs < 1:
            raise ValueError(f"probe_pairs must be >= 1, got {probe_pairs}")
        rne = self.rne
        if rne is None:  # pragma: no cover - guarded by the caller
            return
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, self.graph.n, size=(probe_pairs, 2))
        exact = pair_distances(self.graph, pairs)
        ok = np.isfinite(exact) & (exact > 0)
        if not ok.any():
            self.stats.notes.append("error probe skipped: no reachable pairs")
            return
        model = rne.query_pairs(pairs[ok])
        mean_rel = float(np.mean(np.abs(model - exact[ok]) / exact[ok]))
        self.stats.probe_mean_rel_error = mean_rel
        if self.error_bound is not None and mean_rel > self.error_bound:
            self._degrade(
                f"probed mean relative error {mean_rel:.4f} exceeds "
                f"bound {self.error_bound:.4f}"
            )

    @property
    def healthy(self) -> bool:
        """Whether queries are currently served by the learned model."""
        return self.rne is not None

    # ------------------------------------------------------------------
    # queries — learned when healthy, exact otherwise
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Point-to-point distance; exact bidirectional Dijkstra on fallback."""
        if self.rne is not None:
            self.stats.model_queries += 1
            return self.rne.query(s, t)
        self.stats.fallback_queries += 1
        return bidirectional_dijkstra(self.graph, int(s), int(t))

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Batched distances; exact grouped SSSP on fallback."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += pairs.shape[0]
            return self.rne.query_pairs(pairs)
        self.stats.fallback_queries += pairs.shape[0]
        return pair_distances(self.graph, pairs)

    def range_query(self, source: int, targets: np.ndarray, tau: float) -> np.ndarray:
        """Targets within ``tau`` of ``source``; exact network distances on fallback."""
        targets = np.asarray(targets, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += 1
            return self.rne.range_query(source, targets, tau)
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        self.stats.fallback_queries += 1
        dist = self._sssp(source)
        return np.sort(targets[dist[targets] <= tau])

    def knn(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets; exact on fallback."""
        targets = np.asarray(targets, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += 1
            return self.rne.knn(source, targets, k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.stats.fallback_queries += 1
        dist = self._sssp(source)
        order = np.argsort(dist[targets], kind="stable")
        return targets[order[: min(k, targets.size)]]

    def knn_join(self, sources: np.ndarray, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets per source; one exact SSSP per source on fallback."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += sources.size
            return self.rne.knn_join(sources, targets, k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.stats.fallback_queries += sources.size
        k_eff = min(k, targets.size)
        out = np.empty((sources.size, k_eff), dtype=np.int64)
        for row, source in enumerate(sources):
            dist = self._sssp(int(source))
            order = np.argsort(dist[targets], kind="stable")
            out[row] = targets[order[:k_eff]]
        return out

    def _sssp(self, source: int) -> np.ndarray:
        dist = dijkstra(self.graph, int(source))
        return np.asarray(dist, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "model" if self.healthy else "fallback"
        return (
            f"ResilientOracle(mode={mode}, "
            f"fallback_rate={self.stats.fallback_rate:.3f})"
        )
