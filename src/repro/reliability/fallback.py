"""Graceful-degradation serving: learned answers when safe, exact otherwise.

Learned distance oracles give no per-query guarantees — a stale or corrupt
embedding answers *confidently and wrongly*.  :class:`ResilientOracle`
closes that hole for serving:

* at construction it loads the RNE artifact through the validating
  artifact layer (checksums + graph fingerprint) and optionally probes the
  model's error on sampled pairs against exact Dijkstra ground truth;
* if the artifact is rejected, or the probed mean relative error exceeds
  the caller's bound, the oracle *degrades*: every query is served by the
  exact algorithms instead, and counters record the fallback rate so
  operators can alarm on it;
* healthy oracles serve O(d) learned answers with zero added overhead
  beyond one counter increment.

Degradation is all-or-nothing by design: per-query error detection would
require the exact answer per query, which is exactly the cost the learned
index exists to avoid.

Both modes route through a :class:`~repro.serving.engine.BatchQueryEngine`
(healthy: vectorised embedding serving; degraded: cached-SSSP exact
serving), so fallback traffic is batched and observable exactly like
learned traffic — ``serving_snapshot()`` exposes per-op latency
percentiles and cache hit rates on top of the fallback counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..algorithms.dijkstra import bidirectional_dijkstra, pair_distances
from ..core.index import PreparedTargets
from ..core.pipeline import RNE
from ..graph import Graph
from ..serving.engine import BatchQueryEngine
from .artifacts import ArtifactError, graph_fingerprint

__all__ = ["OracleStats", "ResilientOracle"]


@dataclass
class OracleStats:
    """Serving counters: how often the exact fallback carried a query."""

    model_queries: int = 0
    fallback_queries: int = 0
    degraded: bool = False
    degraded_reason: Optional[str] = None
    probe_mean_rel_error: Optional[float] = None
    notes: list[str] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return self.model_queries + self.fallback_queries

    @property
    def fallback_rate(self) -> float:
        total = self.total_queries
        return self.fallback_queries / total if total else 0.0


class ResilientOracle:
    """Distance oracle that falls back to exact search when trust is lost.

    Parameters
    ----------
    graph:
        The live road network queries refer to.  This is the source of
        truth; the artifact must prove it belongs to it.
    artifact_path:
        A saved :class:`~repro.core.pipeline.RNE` artifact.  Corrupt,
        truncated, or wrong-graph artifacts degrade the oracle instead of
        raising.
    rne:
        Alternatively, an already-loaded (trusted) RNE.
    error_bound:
        Optional mean-relative-error budget.  When set, ``probe_pairs``
        random pairs are labelled exactly and the model must beat the
        bound, else the oracle degrades.
    probe_pairs:
        Number of validation pairs for the error probe.
    seed:
        Seed for the probe-pair sample (determinism contract of the repo).
    row_cache_size / sssp_cache_size:
        Passed to the serving engine's hot-row and SSSP-tree LRUs.
    """

    def __init__(
        self,
        graph: Graph,
        artifact_path: Optional[str] = None,
        *,
        rne: Optional[RNE] = None,
        error_bound: Optional[float] = None,
        probe_pairs: int = 64,
        seed: int = 0,
        row_cache_size: int = 256,
        sssp_cache_size: int = 32,
    ) -> None:
        if (artifact_path is None) == (rne is None):
            raise ValueError("provide exactly one of artifact_path or rne")
        if error_bound is not None and error_bound <= 0:
            raise ValueError(f"error_bound must be > 0, got {error_bound}")
        self.graph = graph
        self.stats = OracleStats()
        self.rne: Optional[RNE] = rne
        self.error_bound = error_bound
        self._row_cache_size = row_cache_size
        self._sssp_cache_size = sssp_cache_size
        if artifact_path is not None:
            try:
                self.rne = RNE.load(artifact_path, graph)
            except ArtifactError as exc:
                self._degrade(f"artifact rejected: {exc}")
        if self.rne is not None and error_bound is not None:
            self._probe(probe_pairs, seed)
        self.engine = self._make_engine()

    # ------------------------------------------------------------------
    # health management
    # ------------------------------------------------------------------
    def _make_engine(self) -> BatchQueryEngine:
        model = self.rne.model if self.rne is not None else None
        index = self.rne.index if self.rne is not None else None
        return BatchQueryEngine(
            model=model,
            index=index,
            graph=self.graph,
            row_cache_size=self._row_cache_size,
            sssp_cache_size=self._sssp_cache_size,
            version=int(self.rne.version) if self.rne is not None else 0,
        )

    def apply_update(
        self,
        new_graph: Graph,
        *,
        probe_pairs: int = 64,
        seed: int = 0,
    ) -> dict:
        """Adopt a live update: new graph, already-published embedding.

        Called by :class:`repro.live.LiveUpdateManager` *after* the RNE's
        embedding and version were swapped in place.  The oracle switches
        its source of truth to ``new_graph``, advances the engine to the
        RNE's current version (purging version-keyed hot rows and — since
        the graph changed — cached SSSP trees), and, when an
        ``error_bound`` is configured, re-probes the updated model against
        exact distances on the new graph; a model that no longer beats the
        bound degrades to exact serving right here rather than after the
        first wrong answer.

        A degraded oracle still adopts the new graph — its exact fallback
        must not keep answering from the old road network.

        Returns the engine's invalidation counts.
        """
        if new_graph.n != self.graph.n:
            raise ValueError(
                f"updated graph has {new_graph.n} vertices, "
                f"oracle serves {self.graph.n}"
            )
        graph_changed = graph_fingerprint(new_graph) != graph_fingerprint(self.graph)
        self.graph = new_graph
        if self.rne is not None:
            target_version = max(int(self.rne.version), self.engine.version)
        else:
            target_version = self.engine.version
        # SSSP trees hold *exact* distances: they only go stale when the
        # road network itself changed, not when the embedding moved.
        counts = self.engine.set_version(
            target_version, graph=new_graph if graph_changed else None
        )
        self.stats.notes.append(
            f"live update adopted at version {counts['to_version']} "
            f"({counts['hot_rows_purged']} hot rows, "
            f"{counts['sssp_dropped']} SSSP trees invalidated)"
        )
        if self.rne is not None and self.error_bound is not None:
            self._probe(probe_pairs, seed)
        return counts

    def _degrade(self, reason: str) -> None:
        self.rne = None
        self.stats.degraded = True
        self.stats.degraded_reason = reason
        self.stats.notes.append(reason)
        if getattr(self, "engine", None) is not None:
            # Drop the learned engine; keep serving exactly (fresh caches).
            self.engine = self._make_engine()

    def _probe(self, probe_pairs: int, seed: int) -> None:
        """Compare the model against exact distances on sampled pairs."""
        if probe_pairs < 1:
            raise ValueError(f"probe_pairs must be >= 1, got {probe_pairs}")
        rne = self.rne
        if rne is None:  # pragma: no cover - guarded by the caller
            return
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, self.graph.n, size=(probe_pairs, 2))
        exact = pair_distances(self.graph, pairs)
        ok = np.isfinite(exact) & (exact > 0)
        if not ok.any():
            self.stats.notes.append("error probe skipped: no reachable pairs")
            return
        model = rne.query_pairs(pairs[ok])
        mean_rel = float(np.mean(np.abs(model - exact[ok]) / exact[ok]))
        self.stats.probe_mean_rel_error = mean_rel
        if self.error_bound is not None and mean_rel > self.error_bound:
            self._degrade(
                f"probed mean relative error {mean_rel:.4f} exceeds "
                f"bound {self.error_bound:.4f}"
            )

    @property
    def healthy(self) -> bool:
        """Whether queries are currently served by the learned model."""
        return self.rne is not None

    # ------------------------------------------------------------------
    # queries — learned when healthy, exact otherwise
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Point-to-point distance; exact bidirectional Dijkstra on fallback."""
        if self.rne is not None:
            self.stats.model_queries += 1
            return self.rne.query(s, t)
        self.stats.fallback_queries += 1
        return bidirectional_dijkstra(self.graph, int(s), int(t))

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Batched distances; exact cached-SSSP serving on fallback."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += pairs.shape[0]
            return self.engine.distances(pairs)
        self.stats.fallback_queries += pairs.shape[0]
        return self.engine.exact_distances(pairs)

    def prepare(self, targets: Union[np.ndarray, PreparedTargets]) -> PreparedTargets:
        """Preprocess a target set for repeated kNN/range serving."""
        return self.engine.prepare(targets)

    def range_query(
        self,
        source: int,
        targets: Union[np.ndarray, PreparedTargets],
        tau: float,
    ) -> np.ndarray:
        """Targets within ``tau`` of ``source`` (ascending sorted ids).

        Exact network distances on fallback; both modes follow the shared
        range contract (sorted ids, duplicates deduplicated).
        """
        one = np.array([source], dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += 1
            return self.engine.range_query(one, targets, tau)[0]
        self.stats.fallback_queries += 1
        return self.engine.exact_range(one, targets, tau)[0]

    def knn(
        self,
        source: int,
        targets: Union[np.ndarray, PreparedTargets],
        k: int,
    ) -> np.ndarray:
        """k nearest targets; exact on fallback.

        Both modes follow the shared kNN contract: ascending
        ``(distance, id)`` order, ``min(k, #unique targets)`` results (the
        exact path additionally excludes unreachable targets).
        """
        one = np.array([source], dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += 1
            return self.engine.knn(one, targets, k)[0]
        self.stats.fallback_queries += 1
        return self.engine.exact_knn(one, targets, k)[0]

    def knn_batch(
        self,
        sources: np.ndarray,
        targets: Union[np.ndarray, PreparedTargets],
        k: int,
    ) -> List[np.ndarray]:
        """Batched kNN for many sources — one engine call either mode."""
        sources = np.asarray(sources, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += sources.size
            return self.engine.knn(sources, targets, k)
        self.stats.fallback_queries += sources.size
        return self.engine.exact_knn(sources, targets, k)

    def range_batch(
        self,
        sources: np.ndarray,
        targets: Union[np.ndarray, PreparedTargets],
        tau: float,
    ) -> List[np.ndarray]:
        """Batched range query for many sources — one engine call either mode."""
        sources = np.asarray(sources, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += sources.size
            return self.engine.range_query(sources, targets, tau)
        self.stats.fallback_queries += sources.size
        return self.engine.exact_range(sources, targets, tau)

    def knn_join(self, sources: np.ndarray, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets per source; one cached SSSP per source on fallback.

        Returns a ``(len(sources), min(k, #unique targets))`` matrix in
        ascending ``(distance, id)`` row order.  Unlike :meth:`knn_batch`
        the fallback keeps unreachable targets (at infinite distance) so
        rows stay rectangular.
        """
        sources = np.asarray(sources, dtype=np.int64)
        if self.rne is not None:
            self.stats.model_queries += sources.size
            return self.rne.knn_join(sources, targets, k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.stats.fallback_queries += sources.size
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        k_eff = min(k, targets.size)
        out = np.empty((sources.size, k_eff), dtype=np.int64)
        for row, source in enumerate(sources):
            dist = self._sssp(int(source))
            order = np.lexsort((targets, dist[targets]))
            out[row] = targets[order[:k_eff]]
        return out

    def _sssp(self, source: int) -> np.ndarray:
        return self.engine.sssp_row(int(source))

    # ------------------------------------------------------------------
    # serving observability
    # ------------------------------------------------------------------
    def serving_snapshot(self) -> dict:
        """Engine-level serving stats (latency percentiles, cache hit rates)."""
        return self.engine.snapshot()

    def serving_report(self) -> str:
        """Human-readable serving stats table."""
        return self.engine.report()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "model" if self.healthy else "fallback"
        return (
            f"ResilientOracle(mode={mode}, "
            f"fallback_rate={self.stats.fallback_rate:.3f})"
        )
