"""Batched query-serving engine over a trained RNE (see ``docs/SERVING.md``).

The paper's central claim (Sec. III) is that queries are O(d) vector ops;
this module makes that claim measurable by serving whole batches through
single numpy passes instead of per-query Python loops:

* ``distances`` — a ``(B, 2)`` pair batch is one fancy-index + one Lp
  reduction.
* ``knn`` / ``range_query`` — many sources against one
  :class:`~repro.core.index.PreparedTargets` set via *array-wide frontier
  expansion*: bounds for every (source, tree-node) pair in the live
  frontier are computed in one vectorised pass per tree level (range) or
  one leaf-bound matrix (kNN), then candidate member distances are
  gathered flat and split per source.
* ``exact_*`` — ground-truth serving for degraded mode, amortising one
  cached SSSP tree per distinct source.

Batched kNN/range results are **bit-identical** to the per-query
``knn_prepared`` / ``range_prepared`` paths: per-row Lp reductions are
bitwise deterministic, candidate sets are provable supersets of the
answers, and the shared ``(distance, id)`` / sorted-ids ordering contract
resolves ties identically (property-tested in ``tests/serving``).

Caching: an LRU of *hot rows* — full embedding-distance rows from a source
to a prepared target set, promoted once a source repeats — lets repeated
sources skip the frontier entirely; an LRU of *SSSP trees* does the same
for exact serving.  All operations record latency/throughput into a
:class:`~repro.serving.stats.ServingStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..algorithms.dijkstra import sssp_many
from ..core.index import EmbeddingTreeIndex, PreparedTargets
from ..core.model import RNEModel, lp_distance
from ..devtools.contracts import shapes
from ..graph import Graph
from .cache import LRUCache
from .stats import ServingStats

__all__ = ["BatchQueryEngine"]

Targets = Union[np.ndarray, PreparedTargets]

#: Element budget for (sources x nodes x d) bound tensors; chunks the
#: source axis so batched frontiers never materialise huge intermediates.
_CHUNK_ELEMS = 4_000_000

#: Float-safety margin on kNN pruning radii: inflating the cut-off only
#: *adds* candidates (final selection is by actual member distances), so a
#: tiny slack absorbs Lp rounding without ever changing results.
_UB_SLACK = 1e-9


def _flat_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices ``[s0, s0+1, ..., s0+c0-1, s1, ...]`` for ragged gathers."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts, counts)
        + np.repeat(starts, counts)
    )


class BatchQueryEngine:
    """Vectorised batch serving for distance, kNN and range queries.

    Parameters
    ----------
    model:
        The learned embedding (``None`` for an exact-only engine).
    index:
        Tree index over the same embedding; enables frontier-pruned
        batched kNN/range.  Without it those fall back to brute rows.
    graph:
        The road network; required for the ``exact_*`` fallback path.
    row_cache_size:
        Capacity of the hot-row LRU (entries are ``(prepared target set,
        source)`` distance rows).  ``0`` disables it.
    sssp_cache_size:
        Capacity of the exact SSSP-tree LRU.  ``0`` disables it.
    version:
        Embedding version this engine serves (``RNE.version``).  Hot-row
        cache keys embed it, so entries computed against one embedding can
        never answer queries against another — staleness after a live
        update is impossible *by construction*, not by best-effort
        flushing.  Bumped via :meth:`set_version`.
    """

    def __init__(
        self,
        *,
        model: Optional[RNEModel] = None,
        index: Optional[EmbeddingTreeIndex] = None,
        graph: Optional[Graph] = None,
        row_cache_size: int = 256,
        sssp_cache_size: int = 32,
        version: int = 0,
    ) -> None:
        if model is None and graph is None:
            raise ValueError("BatchQueryEngine needs a model and/or a graph")
        if index is not None and model is not None:
            if index.matrix is not model.matrix and index.matrix.shape != model.matrix.shape:
                raise ValueError("index and model cover different embeddings")
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        self.model = model
        self.index = index
        self.graph = graph
        self.version = int(version)
        self.stats = ServingStats()
        self.hot_rows = self.stats.register_cache(
            LRUCache(row_cache_size, name="hot_rows")
        )
        self.sssp = self.stats.register_cache(LRUCache(sssp_cache_size, name="sssp"))
        # Promote-on-second-touch bookkeeping: sources seen once per
        # (version, prepared set); a repeat miss pays one full-row pass
        # and caches it.
        self._touched: "OrderedDict[Tuple[int, int, int], None]" = OrderedDict()
        self._touch_capacity = max(4 * row_cache_size, 64)

    @classmethod
    def from_rne(cls, rne: Any, *, graph: Optional[Graph] = None, **kwargs: Any) -> "BatchQueryEngine":
        """Build an engine from a trained :class:`~repro.core.pipeline.RNE`."""
        kwargs.setdefault("version", int(getattr(rne, "version", 0)))
        return cls(
            model=rne.model,
            index=rne.index,
            graph=graph if graph is not None else getattr(rne, "graph", None),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def set_version(
        self, version: int, *, graph: Optional[Graph] = None
    ) -> Dict[str, int]:
        """Adopt a new embedding version (and optionally a new graph).

        Called by :class:`repro.live.LiveUpdateManager` after publishing an
        updated embedding.  Hot-row entries keyed to older versions become
        unreachable immediately (keys embed the version) and are purged
        eagerly to free their memory; the promote-on-second-touch ledger is
        reset for the same reason.  When ``graph`` is given the road
        network itself changed, so cached SSSP trees are dropped too —
        otherwise they stay, because exact distances do not depend on the
        embedding.

        Versions are required to advance monotonically: serving an *older*
        embedding than the caches have seen would break the staleness
        contract, so a regression raises instead of corrupting state.

        Returns the invalidation counts per structure.
        """
        if version < self.version:
            raise ValueError(
                f"version must not regress (engine at {self.version}, "
                f"asked to adopt {version})"
            )
        stale_version = self.version
        self.version = int(version)
        dropped_rows = self.hot_rows.purge(
            lambda key: bool(
                isinstance(key, tuple) and key and key[0] != self.version
            )
        )
        dropped_touches = len(self._touched)
        self._touched.clear()
        dropped_sssp = 0
        if graph is not None:
            self.graph = graph
            dropped_sssp = len(self.sssp)
            self.sssp.clear()
        counts = {
            "from_version": int(stale_version),
            "to_version": int(self.version),
            "hot_rows_purged": int(dropped_rows),
            "touch_ledger_dropped": int(dropped_touches),
            "sssp_dropped": int(dropped_sssp),
        }
        return counts

    # ------------------------------------------------------------------
    # target preparation
    # ------------------------------------------------------------------
    def prepare(self, targets: Targets) -> PreparedTargets:
        """Prepare (or pass through) a target set for repeated queries."""
        if isinstance(targets, PreparedTargets):
            return targets
        with self.stats.timed("prepare", int(np.asarray(targets).size)):
            if self.index is not None:
                return self.index.prepare(np.asarray(targets, dtype=np.int64))
            n = self.model.n if self.model is not None else self._graph_or_raise().n
            return PreparedTargets.flat(n, np.asarray(targets, dtype=np.int64))

    # ------------------------------------------------------------------
    # learned (embedding) serving
    # ------------------------------------------------------------------
    @shapes(pairs="(b,2):int", ret="(b,):float")
    def distances(self, pairs: np.ndarray) -> np.ndarray:
        """Approximate distances for a ``(B, 2)`` pair batch — one numpy pass."""
        model = self._model_or_raise()
        pairs = np.asarray(pairs, dtype=np.int64)
        with self.stats.timed("distances", pairs.shape[0]):
            return model.query_pairs(pairs)

    @shapes(sources="(s,):int")
    def knn(self, sources: np.ndarray, targets: Targets, k: int) -> List[np.ndarray]:
        """Batched k nearest targets for every source (embedding metric).

        Returns one id array per source, each in ascending
        ``(distance, id)`` order with ``min(k, #unique targets)`` entries —
        bit-identical to per-query ``EmbeddingTreeIndex.knn_prepared``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        model = self._model_or_raise()
        prepared = self.prepare(targets)
        sources = np.asarray(sources, dtype=np.int64)
        with self.stats.timed("knn", sources.size):
            k_eff = min(k, prepared.m)
            if sources.size == 0 or k_eff == 0:
                return [np.empty(0, dtype=np.int64) for _ in range(sources.size)]
            rows, miss_idx = self._cached_rows(model, prepared, sources)
            out: List[Optional[np.ndarray]] = [None] * sources.size
            for i, row in rows.items():  # perf: loop-ok (cache hits only)
                order = np.lexsort((prepared.ids, row))[:k_eff]
                out[i] = prepared.ids[order]
            if miss_idx.size:
                miss_results = self._knn_frontier(
                    model, prepared, sources[miss_idx], k_eff
                )
                for j, res in zip(miss_idx, miss_results):  # perf: loop-ok (scatter)
                    out[int(j)] = res
            return [r for r in out if r is not None]

    @shapes(sources="(s,):int")
    def range_query(
        self, sources: np.ndarray, targets: Targets, tau: float
    ) -> List[np.ndarray]:
        """Batched range query (embedding metric, sorted-ids contract).

        Returns, per source, the ascending sorted ids of targets within
        embedding distance ``tau`` — bit-identical to per-query
        ``EmbeddingTreeIndex.range_prepared``.
        """
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        model = self._model_or_raise()
        prepared = self.prepare(targets)
        sources = np.asarray(sources, dtype=np.int64)
        with self.stats.timed("range", sources.size):
            if sources.size == 0 or prepared.m == 0:
                return [np.empty(0, dtype=np.int64) for _ in range(sources.size)]
            rows, miss_idx = self._cached_rows(model, prepared, sources)
            out: List[Optional[np.ndarray]] = [None] * sources.size
            for i, row in rows.items():  # perf: loop-ok (cache hits only)
                out[i] = prepared.ids[row <= tau]
            if miss_idx.size:
                miss_results = self._range_frontier(
                    model, prepared, sources[miss_idx], tau
                )
                for j, res in zip(miss_idx, miss_results):  # perf: loop-ok (scatter)
                    out[int(j)] = res
            return [r for r in out if r is not None]

    # ------------------------------------------------------------------
    # exact (fallback) serving
    # ------------------------------------------------------------------
    @shapes(pairs="(b,2):int", ret="(b,):float")
    def exact_distances(self, pairs: np.ndarray) -> np.ndarray:
        """True network distances, one cached SSSP tree per distinct source."""
        graph = self._graph_or_raise()
        pairs = np.asarray(pairs, dtype=np.int64)
        with self.stats.timed("exact_distances", pairs.shape[0]):
            out = np.empty(pairs.shape[0], dtype=np.float64)
            # perf: loop-ok (one SSSP per distinct source; gather vectorised)
            for s in np.unique(pairs[:, 0]):
                sel = pairs[:, 0] == s
                out[sel] = self._sssp_row(graph, int(s))[pairs[sel, 1]]
            return out

    @shapes(sources="(s,):int")
    def exact_knn(
        self, sources: np.ndarray, targets: Targets, k: int
    ) -> List[np.ndarray]:
        """Batched exact kNN ((distance, id) contract; unreachable excluded)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        graph = self._graph_or_raise()
        prepared = self.prepare(targets)
        sources = np.asarray(sources, dtype=np.int64)
        with self.stats.timed("exact_knn", sources.size):
            out = []
            # perf: loop-ok (one cached SSSP tree per source)
            for s in sources:
                d = self._sssp_row(graph, int(s))[prepared.ids]
                finite = np.isfinite(d)
                ids, d = prepared.ids[finite], d[finite]
                order = np.lexsort((ids, d))[: min(k, ids.size)]
                out.append(ids[order])
            return out

    @shapes(sources="(s,):int")
    def exact_range(
        self, sources: np.ndarray, targets: Targets, tau: float
    ) -> List[np.ndarray]:
        """Batched exact range query (sorted-ids contract)."""
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        graph = self._graph_or_raise()
        prepared = self.prepare(targets)
        sources = np.asarray(sources, dtype=np.int64)
        with self.stats.timed("exact_range", sources.size):
            out = []
            # perf: loop-ok (one cached SSSP tree per source)
            for s in sources:
                d = self._sssp_row(graph, int(s))[prepared.ids]
                out.append(prepared.ids[d <= tau])
            return out

    def sssp_row(self, source: int) -> np.ndarray:
        """Exact distances from ``source`` to every vertex (LRU-cached)."""
        return self._sssp_row(self._graph_or_raise(), int(source))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe stats dump (ops, latency percentiles, cache hit rates)."""
        return self.stats.snapshot()

    def report(self) -> str:
        """Human-readable stats table."""
        return self.stats.report()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _model_or_raise(self) -> RNEModel:
        if self.model is None:
            raise ValueError("engine has no model; use the exact_* operations")
        return self.model

    def _graph_or_raise(self) -> Graph:
        if self.graph is None:
            raise ValueError("engine has no graph; exact serving unavailable")
        return self.graph

    def _sssp_row(self, graph: Graph, source: int) -> np.ndarray:
        row = self.sssp.get(source)
        if row is None:
            row = sssp_many(graph, np.array([source], dtype=np.int64))[0]
            self.sssp.put(source, row)
        return row

    def _cached_rows(
        self,
        model: RNEModel,
        prepared: PreparedTargets,
        sources: np.ndarray,
    ) -> Tuple[Dict[int, np.ndarray], np.ndarray]:
        """Split a source batch into cache hits and frontier misses.

        Returns ``(hits, miss_idx)`` where ``hits`` maps batch positions to
        full distance rows and ``miss_idx`` indexes the remaining sources.
        Second-touch misses pay one full-row pass and enter the cache so
        subsequent batches hit.
        """
        hits: Dict[int, np.ndarray] = {}
        miss: List[int] = []
        promote: List[int] = []
        # Keys embed the engine's embedding version: a row cached against
        # version v is unreachable at v+1, so a live update can never serve
        # stale distances out of this cache.
        # perf: loop-ok (per-source cache bookkeeping; row maths is vectorised)
        for i, s in enumerate(sources):
            key = (self.version, prepared.token, int(s))
            row = self.hot_rows.get(key)
            if row is not None:
                hits[i] = row
                continue
            if self.hot_rows.capacity and key in self._touched:
                promote.append(i)
            else:
                self._touch(key)
            miss.append(i)
        if promote:
            promote_sources = sources[np.array(promote, dtype=np.int64)]
            rows = self._full_rows(model, prepared, promote_sources)
            # perf: loop-ok (cache insertion per promoted source)
            for i, row in zip(promote, rows):
                self.hot_rows.put(
                    (self.version, prepared.token, int(sources[i])), row
                )
                hits[i] = row
                miss.remove(i)
        return hits, np.array(miss, dtype=np.int64)

    def _touch(self, key: Tuple[int, int, int]) -> None:
        if key in self._touched:
            self._touched.move_to_end(key)
        else:
            self._touched[key] = None
        while len(self._touched) > self._touch_capacity:
            self._touched.popitem(last=False)

    def _full_rows(
        self,
        model: RNEModel,
        prepared: PreparedTargets,
        sources: np.ndarray,
    ) -> np.ndarray:
        """(S, m) embedding distances from each source to every target id."""
        t_vecs = model.matrix[prepared.ids]
        out = np.empty((sources.size, prepared.m), dtype=np.float64)
        step = max(1, _CHUNK_ELEMS // max(1, prepared.m * model.d))
        # perf: loop-ok (memory chunking; each chunk is one vector pass)
        for start in range(0, sources.size, step):
            block = model.matrix[sources[start : start + step]]
            out[start : start + step] = lp_distance(
                block[:, None, :] - t_vecs[None, :, :], model.p
            )
        return out

    # -- batched frontiers ---------------------------------------------
    def _knn_frontier(
        self,
        model: RNEModel,
        prepared: PreparedTargets,
        sources: np.ndarray,
        k_eff: int,
    ) -> List[np.ndarray]:
        """Exact batched kNN via a leaf-bound matrix (see docs/SERVING.md).

        For each source the leaves are ranked by lower bound; walking that
        ranking until ``k_eff`` members are covered yields an upper bound
        ``ub`` on the k-th distance (the running max of centre-distance +
        radius), so every answer lies in a leaf with bound <= ``ub`` — the
        candidate set is a provable superset and the final ``(distance,
        id)`` lexsort over actual member distances is exact.
        """
        index = self.index
        if index is None or not prepared.has_tree:
            rows = self._full_rows(model, prepared, sources)
            out = []
            # perf: loop-ok (top-k selection per row)
            for row in rows:
                order = np.lexsort((prepared.ids, row))[:k_eff]
                out.append(prepared.ids[order])
            return out
        leaf_ids = prepared.leaf_ids
        member_flat = prepared.member_flat
        member_offsets = prepared.member_offsets
        if leaf_ids is None or member_flat is None or member_offsets is None:
            raise ValueError("prepared targets lack tree structure")
        centres = index.node_centres[leaf_ids]
        radii = index.node_radii[leaf_ids]
        counts = np.diff(member_offsets)
        results: List[np.ndarray] = []
        step = max(1, _CHUNK_ELEMS // max(1, leaf_ids.size * model.d))
        # perf: loop-ok (memory chunking over sources; body is vectorised)
        for start in range(0, sources.size, step):
            chunk = sources[start : start + step]
            q = model.matrix[chunk]
            cd = lp_distance(q[:, None, :] - centres[None, :, :], model.p)
            lb = np.maximum(cd - radii[None, :], 0.0)
            order = np.argsort(lb, axis=1, kind="stable")
            cum = np.cumsum(counts[order], axis=1)
            cut = np.minimum((cum < k_eff).sum(axis=1), leaf_ids.size - 1)
            running_ub = np.maximum.accumulate(
                np.take_along_axis(cd + radii[None, :], order, axis=1), axis=1
            )
            ub = running_ub[np.arange(chunk.size), cut]
            ub = ub + _UB_SLACK * (1.0 + np.abs(ub))
            active = lb <= ub[:, None]
            src_idx, leaf_idx = np.nonzero(active)
            gather = _flat_gather(member_offsets[leaf_idx], counts[leaf_idx])
            cand_ids = member_flat[gather]
            cand_src = np.repeat(src_idx, counts[leaf_idx])
            d = lp_distance(
                model.matrix[cand_ids] - q[cand_src], model.p
            )
            sel = np.lexsort((cand_ids, d, cand_src))
            seg_counts = np.bincount(cand_src, minlength=chunk.size)
            seg_off = np.concatenate(([0], np.cumsum(seg_counts)))
            sorted_ids = cand_ids[sel]
            # perf: loop-ok (per-source segment slicing of sorted output)
            for i in range(chunk.size):
                lo = int(seg_off[i])
                results.append(sorted_ids[lo : lo + min(k_eff, int(seg_counts[i]))])
        return results

    def _range_frontier(
        self,
        model: RNEModel,
        prepared: PreparedTargets,
        sources: np.ndarray,
        tau: float,
    ) -> List[np.ndarray]:
        """Exact batched range via level-synchronous frontier descent.

        Maintains a flat array of live (source, tree-node) pairs; one
        vectorised bound pass per tree level prunes and expands it — the
        surviving leaf set is *identical* to what the per-query descent
        visits, so the results are bit-for-bit the same.
        """
        index = self.index
        if index is None or not prepared.has_tree:
            rows = self._full_rows(model, prepared, sources)
            # perf: loop-ok (per-row threshold filter)
            return [prepared.ids[row <= tau] for row in rows]
        node_active = prepared.node_active
        leaf_pos = prepared.leaf_pos
        member_flat = prepared.member_flat
        member_offsets = prepared.member_offsets
        if (
            node_active is None
            or leaf_pos is None
            or member_flat is None
            or member_offsets is None
        ):
            raise ValueError("prepared targets lack tree structure")
        results: List[np.ndarray] = []
        roots = np.asarray(index.hierarchy.root_ids(), dtype=np.int64)
        counts = np.diff(member_offsets)
        step = max(1, _CHUNK_ELEMS // max(1, max(roots.size, 64) * model.d))
        # perf: loop-ok (memory chunking over sources; body is vectorised)
        for start in range(0, sources.size, step):
            chunk = sources[start : start + step]
            q = model.matrix[chunk]
            f_src = np.repeat(np.arange(chunk.size, dtype=np.int64), roots.size)
            f_node = np.tile(roots, chunk.size)
            # perf: loop-ok (one vectorised pass per tree level)
            for _level in range(index.leaf_level + 1):
                if f_src.size == 0:
                    break
                alive = node_active[f_node]
                f_src, f_node = f_src[alive], f_node[alive]
                bound = np.maximum(
                    lp_distance(
                        q[f_src] - index.node_centres[f_node], model.p
                    )
                    - index.node_radii[f_node],
                    0.0,
                )
                keep = bound <= tau
                f_src, f_node = f_src[keep], f_node[keep]
                if _level == index.leaf_level:
                    break
                child_counts = (
                    index.child_offsets[f_node + 1] - index.child_offsets[f_node]
                )
                gather = _flat_gather(index.child_offsets[f_node], child_counts)
                f_src = np.repeat(f_src, child_counts)
                f_node = index.child_flat[gather]
            # Surviving frontier entries are target-holding leaves.
            positions = leaf_pos[f_node]
            gather = _flat_gather(member_offsets[positions], counts[positions])
            cand_ids = member_flat[gather]
            cand_src = np.repeat(f_src, counts[positions])
            d = lp_distance(model.matrix[cand_ids] - q[cand_src], model.p)
            hit = d <= tau
            cand_ids, cand_src = cand_ids[hit], cand_src[hit]
            sel = np.lexsort((cand_ids, cand_src))
            seg_counts = np.bincount(cand_src, minlength=chunk.size)
            seg_off = np.concatenate(([0], np.cumsum(seg_counts)))
            sorted_ids = cand_ids[sel]
            # perf: loop-ok (per-source segment slicing of sorted output)
            for i in range(chunk.size):
                results.append(sorted_ids[int(seg_off[i]) : int(seg_off[i + 1])])
        return results
