"""Serving observability: per-operation counters and latency histograms.

Every :class:`~repro.serving.engine.BatchQueryEngine` operation records
(wall-clock seconds, items served) into a :class:`ServingStats`.  Latencies
go into fixed log-spaced histograms, so percentile estimates (p50/p99) cost
O(#bins) memory regardless of traffic volume — the standard production
trade-off (exact min/max are tracked separately).  ``snapshot()`` returns a
JSON-safe dict consumed by ``BENCH_serving.json`` and the ``rne serve``
front door.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from .cache import LRUCache

__all__ = ["LatencyHistogram", "OpStats", "ServingStats"]


class LatencyHistogram:
    """Log-spaced latency histogram with conservative percentile estimates.

    Bins span ``lo`` .. ``hi`` seconds with ``bins_per_decade`` bins per
    decade; samples outside the span clamp to the edge bins.  Percentiles
    return the *upper edge* of the bin holding the requested quantile, so
    reported p50/p99 never understate the true latency by more than one
    bin width (~33% at the default resolution).
    """

    def __init__(
        self,
        *,
        lo: float = 1e-7,
        hi: float = 100.0,
        bins_per_decade: int = 8,
    ) -> None:
        if not 0 < lo < hi:
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if bins_per_decade < 1:
            raise ValueError(f"bins_per_decade must be >= 1, got {bins_per_decade}")
        decades = np.log10(hi / lo)
        num_edges = int(np.ceil(decades * bins_per_decade)) + 1
        self.edges = lo * np.power(10.0, np.arange(num_edges) / bins_per_decade)
        self.counts = np.zeros(num_edges + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        bin_idx = int(np.searchsorted(self.edges, seconds, side="left"))
        self.counts[bin_idx] += 1
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def percentile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 100]; 0.0 when empty."""
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(np.ceil(q / 100.0 * self.count)))
        cum = np.cumsum(self.counts)
        bin_idx = int(np.searchsorted(cum, rank, side="left"))
        if bin_idx == 0:
            return float(self.edges[0])
        if bin_idx >= self.edges.size:
            # overflow bin: the exact max is the tightest honest answer
            return float(self.max if self.max is not None else self.edges[-1])
        return float(self.edges[bin_idx])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class OpStats:
    """Counters + latency histogram for one serving operation."""

    def __init__(self) -> None:
        self.calls = 0
        self.items = 0
        self.seconds = 0.0
        self.histogram = LatencyHistogram()

    def record(self, seconds: float, items: int) -> None:
        """Record one call serving ``items`` queries in ``seconds``."""
        self.calls += 1
        self.items += int(items)
        self.seconds += seconds
        self.histogram.record(seconds)

    @property
    def queries_per_second(self) -> float:
        """Throughput over the time actually spent inside the operation."""
        return self.items / self.seconds if self.seconds > 0 else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "calls": self.calls,
            "items": self.items,
            "seconds": self.seconds,
            "p50_us": self.histogram.percentile(50) * 1e6,
            "p99_us": self.histogram.percentile(99) * 1e6,
            "mean_us": self.histogram.mean * 1e6,
            "max_us": (self.histogram.max or 0.0) * 1e6,
            "queries_per_second": self.queries_per_second,
        }


class ServingStats:
    """All observability state of one engine: ops and registered caches."""

    #: Keep only this many most-recent live-update records in memory.
    MAX_UPDATE_RECORDS = 64

    def __init__(self) -> None:
        self.ops: Dict[str, OpStats] = {}
        self.caches: Dict[str, LRUCache] = {}
        #: JSON-safe records of live model updates applied to this engine
        #: (bounded ring; see :meth:`record_update`).
        self.updates: List[Dict[str, Any]] = []

    def op(self, name: str) -> OpStats:
        """The (auto-created) stats bucket for operation ``name``."""
        if name not in self.ops:
            self.ops[name] = OpStats()
        return self.ops[name]

    def register_cache(self, cache: LRUCache) -> LRUCache:
        """Track a cache so snapshots include its hit rate."""
        self.caches[cache.name] = cache
        return cache

    def record_update(self, record: Dict[str, Any]) -> None:
        """Append one live-update record (version swap, invalidation counts).

        Bounded to :data:`MAX_UPDATE_RECORDS` entries so a long-lived
        serving process does not grow without limit; snapshots expose the
        total count separately from the retained tail.
        """
        self.updates.append(dict(record))
        overflow = len(self.updates) - self.MAX_UPDATE_RECORDS
        if overflow > 0:
            del self.updates[:overflow]

    @contextmanager
    def timed(self, name: str, items: int) -> Iterator[None]:
        """Time a block and record it against operation ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.op(name).record(time.perf_counter() - start, items)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every operation and cache."""
        return {
            "ops": {name: op.snapshot() for name, op in sorted(self.ops.items())},
            "caches": {
                name: cache.snapshot() for name, cache in sorted(self.caches.items())
            },
            "live_updates": list(self.updates),
        }

    def report(self) -> str:
        """Aligned text table of the snapshot (for CLI / bench output)."""
        lines = ["op           | calls | items | p50 us | p99 us | q/s"]
        lines.append("-" * len(lines[0]))
        for name, op in sorted(self.ops.items()):
            snap = op.snapshot()
            lines.append(
                f"{name:<12} | {snap['calls']:>5} | {snap['items']:>5} | "
                f"{snap['p50_us']:>6.1f} | {snap['p99_us']:>6.1f} | "
                f"{snap['queries_per_second']:.0f}"
            )
        for name, cache in sorted(self.caches.items()):
            snap = cache.snapshot()
            lines.append(
                f"cache {name}: hit_rate={snap['hit_rate']:.3f} "
                f"({snap['hits']} hits / {snap['misses']} misses, "
                f"size {snap['size']}/{snap['capacity']})"
            )
        return "\n".join(lines)
