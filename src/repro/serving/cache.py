"""Bounded LRU cache with hit/miss accounting for the serving engine.

The engine caches two kinds of per-source state (see ``docs/SERVING.md``):

* *hot rows* — embedding-distance vectors from a source to a prepared
  target set, promoted after a source repeats, and
* *fallback SSSP trees* — full exact distance arrays for degraded serving,
  where one cached Dijkstra tree amortises every query from that source.

Both are keyed by small tuples and hold numpy arrays; eviction is strict
least-recently-used.  Counters are exposed so the observability layer can
report hit rates per cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """A fixed-capacity least-recently-used mapping with hit counters.

    Parameters
    ----------
    capacity:
        Maximum number of entries.  ``0`` disables the cache entirely —
        every lookup is a miss and nothing is ever stored.
    name:
        Label used in stats snapshots.
    """

    def __init__(self, capacity: int, *, name: str = "cache") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not touch recency or counters."""
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (marking it most recent) or ``None``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/update an entry, evicting the least recent beyond capacity."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries; counters are preserved."""
        self.invalidations += len(self._data)
        self._data.clear()

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        The live-update path uses this to evict entries keyed to a stale
        embedding version while keeping still-valid ones (e.g. SSSP trees
        when only the model, not the graph, changed).  Returns the number
        of entries dropped; they count as *invalidations*, not evictions —
        capacity pressure and staleness are different signals.
        """
        stale = [key for key in self._data if predicate(key)]
        for key in stale:
            del self._data[key]
        self.invalidations += len(stale)
        return len(stale)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of the cache's counters and occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
            "size": len(self._data),
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(name={self.name!r}, size={len(self._data)}/"
            f"{self.capacity}, hit_rate={self.hit_rate:.3f})"
        )
