"""Batched query serving: engine, caching, micro-batching, observability.

See ``docs/SERVING.md`` for the architecture and the result-ordering
contract shared with :mod:`repro.core.index` and
:mod:`repro.algorithms.knn`.
"""

from .cache import LRUCache
from .engine import BatchQueryEngine
from .frontdoor import MicroBatcher, Query, parse_query, serve_lines
from .stats import LatencyHistogram, OpStats, ServingStats

__all__ = [
    "BatchQueryEngine",
    "LRUCache",
    "LatencyHistogram",
    "MicroBatcher",
    "OpStats",
    "Query",
    "ServingStats",
    "parse_query",
    "serve_lines",
]
