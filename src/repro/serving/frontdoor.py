"""Micro-batching front door: text queries in, batched engine calls out.

``rne serve`` reads one query per line from a stream and ``rne query
--batch`` takes them from the command line; both funnel through
:class:`MicroBatcher`, which accumulates up to ``batch_size`` queries,
groups them by (operation, parameter) so each group becomes *one* engine
call, and emits answers back in input order.  This is the standard
trade-off of learned-index serving: a tiny admission delay buys
vector-width execution on the hot path.

Query grammar (one per line, ``#`` comments and blank lines skipped)::

    dist <s> <t>          approximate distance between two vertices
    knn <s> <k>           k nearest targets to s       (needs a target set)
    range <s> <tau>       targets within tau of s      (needs a target set)

Malformed lines yield ``error: <reason>`` answers (counted in stats)
without poisoning the rest of the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.index import PreparedTargets
from .engine import BatchQueryEngine

__all__ = ["Query", "MicroBatcher", "parse_query", "serve_lines"]


@dataclass(frozen=True)
class Query:
    """One parsed front-door query."""

    op: str  # "dist" | "knn" | "range"
    source: int
    #: second vertex for "dist", k for "knn", tau for "range"
    param: float


def parse_query(line: str) -> Optional[Query]:
    """Parse one query line; returns ``None`` for blanks/comments.

    Raises ``ValueError`` with a human-readable reason for malformed lines.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    op = parts[0].lower()
    if op not in ("dist", "knn", "range"):
        raise ValueError(f"unknown operation {parts[0]!r}")
    if len(parts) != 3:
        raise ValueError(f"{op} takes 2 arguments, got {len(parts) - 1}")
    try:
        source = int(parts[1])
    except ValueError:
        raise ValueError(f"bad vertex id {parts[1]!r}")
    try:
        param = int(parts[2]) if op in ("dist", "knn") else float(parts[2])
    except ValueError:
        raise ValueError(f"bad {op} parameter {parts[2]!r}")
    if op == "knn" and param < 1:
        raise ValueError(f"k must be >= 1, got {parts[2]}")
    if op == "range" and param < 0:
        raise ValueError(f"tau must be >= 0, got {parts[2]}")
    return Query(op=op, source=source, param=float(param))


def _format_ids(ids: np.ndarray) -> str:
    return " ".join(str(int(v)) for v in ids)


class MicroBatcher:
    """Accumulates queries and flushes them as grouped engine batches.

    Parameters
    ----------
    engine:
        The serving engine (or anything engine-shaped, e.g. a
        :class:`~repro.reliability.fallback.ResilientOracle`).
    targets:
        Prepared target set for kNN/range queries; without one those
        queries answer with an error line.
    batch_size:
        Flush threshold — the micro-batching window.
    """

    def __init__(
        self,
        engine: BatchQueryEngine,
        *,
        targets: Optional[Union[np.ndarray, PreparedTargets]] = None,
        batch_size: int = 256,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.engine = engine
        self.prepared = engine.prepare(targets) if targets is not None else None
        self.batch_size = batch_size
        self.errors = 0
        self._pending: List[Tuple[int, Query]] = []
        self._answers: Dict[int, str] = {}
        self._next_id = 0

    def submit(self, line: str) -> Optional[int]:
        """Queue one query line; returns its ticket or ``None`` (blank).

        Malformed lines are answered immediately with an error string.
        """
        ticket = self._next_id
        try:
            query = parse_query(line)
        except ValueError as exc:
            self.errors += 1
            self._answers[ticket] = f"error: {exc}"
            self._next_id += 1
            return ticket
        if query is None:
            return None
        self._next_id += 1
        self._pending.append((ticket, query))
        if len(self._pending) >= self.batch_size:
            self.flush()
        return ticket

    def flush(self) -> None:
        """Run every pending query group as one engine call each."""
        pending, self._pending = self._pending, []
        groups: Dict[Tuple[str, float], List[Tuple[int, Query]]] = {}
        for ticket, query in pending:
            groups.setdefault((query.op, query.param), []).append((ticket, query))
        for (op, param), entries in sorted(groups.items()):
            tickets = [t for t, _ in entries]
            sources = np.array([q.source for _, q in entries], dtype=np.int64)
            try:
                self._run_group(op, param, tickets, sources)
            except (ValueError, IndexError) as exc:
                self.errors += len(tickets)
                for ticket in tickets:
                    self._answers[ticket] = f"error: {exc}"

    def _run_group(
        self, op: str, param: float, tickets: List[int], sources: np.ndarray
    ) -> None:
        # Engines without a model (exact-only, or a degraded oracle's)
        # serve the same grammar through the exact_* operations.
        exact = self.engine.model is None
        if op == "dist":
            pairs = np.stack(
                [sources, np.full_like(sources, int(param))], axis=1
            )
            values = (
                self.engine.exact_distances(pairs)
                if exact
                else self.engine.distances(pairs)
            )
            for ticket, value in zip(tickets, values):
                self._answers[ticket] = f"{float(value):.6f}"
            return
        if self.prepared is None:
            self.errors += len(tickets)
            for ticket in tickets:
                self._answers[ticket] = "error: no target set configured"
            return
        if op == "knn":
            id_lists = (
                self.engine.exact_knn(sources, self.prepared, int(param))
                if exact
                else self.engine.knn(sources, self.prepared, int(param))
            )
        else:
            id_lists = (
                self.engine.exact_range(sources, self.prepared, param)
                if exact
                else self.engine.range_query(sources, self.prepared, param)
            )
        for ticket, ids in zip(tickets, id_lists):
            self._answers[ticket] = _format_ids(ids)

    def take(self, ticket: int) -> str:
        """The answer for ``ticket`` (flushes if still pending)."""
        if ticket not in self._answers:
            self.flush()
        return self._answers.pop(ticket)


def serve_lines(
    lines: Iterable[str],
    engine: BatchQueryEngine,
    *,
    targets: Optional[Union[np.ndarray, PreparedTargets]] = None,
    batch_size: int = 256,
) -> Iterator[str]:
    """Serve an iterable of query lines, yielding answers in input order.

    Answers are emitted per micro-batch: after every ``batch_size``
    parsed queries (and at end of input) the pending window flushes and
    its answers stream out in submission order.
    """
    batcher = MicroBatcher(engine, targets=targets, batch_size=batch_size)
    window: List[int] = []
    for line in lines:
        ticket = batcher.submit(line)
        if ticket is None:
            continue
        window.append(ticket)
        if len(window) >= batch_size:
            for t in window:
                yield batcher.take(t)
            window = []
    for t in window:
        yield batcher.take(t)
