"""Embedding training: vectorised SGD/Adam on the squared Lp-distance loss.

The paper minimises, over sampled pairs ``(s, t, phi)``,

    L = ( || v_s - v_t ||_p  -  phi )^2

with stochastic gradient descent (Function *Training* / *TrainingHier*).
The gradients are closed-form; for the recommended ``p = 1``::

    dL/dv_s = 2 (phi_hat - phi) * sign(v_s - v_t)
    dL/dv_t = -dL/dv_s

and in the hierarchical model the same gradient flows to *every ancestor's
local embedding* of ``s`` and ``t`` (the global vector is their sum), each
scaled by that level's learning rate — which is how Algorithm 1 focuses
different levels in different steps.

Two optimisers are provided.  ``"sgd"`` is the paper's; note that its
stable learning rate scales like ``1 / (2 d)`` — per-dimension gradients
are proportional to the *residual* while per-dimension parameter scale is
roughly ``distance / d``, so the safe relative step shrinks with the
embedding dimension.  ``"adam"`` (lazy, row-sparse) converges much faster
at small sample budgets and is the default; its absolute step size is
auto-scaled by the current mean residual (see ``_adam_lr_scale``) so
behaviour does not depend on the map's units or the training phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

#: Per-epoch observer hook: ``on_epoch(epoch, mse, mean_rel_error)``.
#: Used by the reliability layer for divergence aborts and checkpoint
#: bookkeeping; any exception it raises stops the training call.
EpochHook = Callable[[int, float, float], None]

import numpy as np

from ..devtools.contracts import shapes
from .hierarchical import HierarchicalRNE
from .model import RNEModel, lp_distance, lp_gradient


@dataclass
class TrainConfig:
    """Knobs shared by flat and hierarchical training."""

    epochs: int = 5
    batch_size: int = 1024
    lr: float = 0.02
    optimizer: str = "adam"  # "adam" | "sgd"
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.lr <= 0:
            raise ValueError(f"lr must be > 0, got {self.lr}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")


@dataclass
class TrainResult:
    """Per-epoch training diagnostics."""

    mse: list[float] = field(default_factory=list)
    mean_rel_error: list[float] = field(default_factory=list)

    def extend(self, other: "TrainResult") -> None:
        self.mse.extend(other.mse)
        self.mean_rel_error.extend(other.mean_rel_error)


class _Adam:
    """Lazy (row-sparse) Adam state for an embedding matrix.

    Embedding batches touch only a few rows; *dense* Adam would keep moving
    every untouched row by its decaying momentum (``m_hat / sqrt(v_hat)``
    stays O(1) even with a zero gradient), silently corrupting rarely
    sampled embeddings.  Lazy Adam updates moments and parameters only for
    the rows present in the batch — the same fix TensorFlow ships as
    ``LazyAdamOptimizer`` for embedding training.
    """

    def __init__(self, shape: tuple[int, ...], beta1: float = 0.9, beta2: float = 0.999):
        self.m = np.zeros(shape, dtype=np.float64)
        self.v = np.zeros(shape, dtype=np.float64)
        self.beta1 = beta1
        self.beta2 = beta2
        self.t = 0

    def step_rows(self, rows: np.ndarray, grad_rows: np.ndarray, lr: float) -> np.ndarray:
        """Update moments for ``rows`` only; return their parameter update."""
        self.t += 1
        self.m[rows] = self.beta1 * self.m[rows] + (1 - self.beta1) * grad_rows
        self.v[rows] = self.beta2 * self.v[rows] + (1 - self.beta2) * np.square(grad_rows)
        m_hat = self.m[rows] / (1 - self.beta1**self.t)
        v_hat = self.v[rows] / (1 - self.beta2**self.t)
        return -lr * m_hat / (np.sqrt(v_hat) + 1e-8)

    def clone(self) -> "_Adam":
        """Deep copy of moments and step counter (checkpoint snapshots)."""
        other = _Adam(self.m.shape, beta1=self.beta1, beta2=self.beta2)
        other.m = self.m.copy()
        other.v = self.v.copy()
        other.t = self.t
        return other


def _epoch_batches(
    n_samples: int, batch_size: int, shuffle: bool, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    order = rng.permutation(n_samples) if shuffle else np.arange(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


def _adam_lr_scale(pred: np.ndarray, phi: np.ndarray) -> float:
    """Adam step-size scale: the current mean absolute residual.

    Adam's per-parameter step magnitude is ~``lr`` regardless of gradient
    size, so ``lr`` must carry the problem's scale.  Scaling by the mean
    *residual* (not the mean distance) makes early coarse phases take big
    steps and late fine-tuning phases take proportionally small ones —
    without it, phase-2/3 updates are violent enough to destroy the
    hierarchy structure learned in phase 1.  A floor avoids a dead optimiser
    when the model starts out nearly perfect.
    """
    mean_phi = float(np.mean(phi)) if phi.size else 1.0
    resid = float(np.mean(np.abs(pred - phi))) if phi.size else mean_phi
    # Clamp to [1%, 100%] of the mean label: the floor keeps a nearly
    # converged model trainable, the ceiling stops a diverged model from
    # amplifying its own step size call over call.
    return float(np.clip(resid, 0.01 * mean_phi, mean_phi))


def _pair_gradient(
    vs: np.ndarray, vt: np.ndarray, phi: np.ndarray, p: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared loss math: returns (grad wrt v_s, residual, prediction)."""
    diff = vs - vt
    pred = lp_distance(diff, p)
    resid = pred - phi
    grad = 2.0 * resid[:, None] * lp_gradient(diff, p)
    return grad, resid, pred


@shapes(pairs="(k,2):int", phi="(k,):float:finite")
def train_flat(
    model: RNEModel,
    pairs: np.ndarray,
    phi: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator | int | None = None,
    *,
    on_epoch: Optional[EpochHook] = None,
) -> TrainResult:
    """Train a flat embedding table in place (paper's Function *Training*)."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    pairs = np.asarray(pairs, dtype=np.int64)
    phi = np.asarray(phi, dtype=np.float64)
    if pairs.shape[0] != phi.shape[0]:
        raise ValueError("pairs and phi must align")
    result = TrainResult()
    if pairs.shape[0] == 0:
        return result

    adam = _Adam(model.matrix.shape) if config.optimizer == "adam" else None
    lr = config.lr
    if adam is not None:
        probe = slice(0, min(len(pairs), 2048))
        lr *= _adam_lr_scale(model.query_pairs(pairs[probe]), phi[probe])

    for epoch in range(config.epochs):
        sq_sum = 0.0
        rel_sum = 0.0
        # perf: loop-ok (one iteration per batch, each fully vectorised)
        for batch in _epoch_batches(len(pairs), config.batch_size, config.shuffle, rng):
            s = pairs[batch, 0]
            t = pairs[batch, 1]
            grad, resid, pred = _pair_gradient(
                model.matrix[s], model.matrix[t], phi[batch], model.p
            )
            sq_sum += float(np.square(resid).sum())
            rel_sum += float((np.abs(resid) / np.maximum(phi[batch], 1e-12)).sum())
            rows = np.unique(np.concatenate([s, t]))
            full = np.zeros((rows.size, model.d), dtype=np.float64)
            pos = np.searchsorted(rows, s)
            np.add.at(full, pos, grad)
            pos = np.searchsorted(rows, t)
            np.add.at(full, pos, -grad)
            full /= len(batch)
            if adam is not None:
                model.matrix[rows] += adam.step_rows(rows, full, lr)  # mutation-ok (documented in-place training)
            else:
                model.matrix[rows] -= lr * full  # mutation-ok (documented in-place training)
            del pred
        result.mse.append(sq_sum / len(pairs))
        result.mean_rel_error.append(rel_sum / len(pairs))
        if on_epoch is not None:
            on_epoch(epoch, result.mse[-1], result.mean_rel_error[-1])
    return result


@shapes(pairs="(k,2):int", phi="(k,):float:finite")
def train_hierarchical(
    hmodel: HierarchicalRNE,
    pairs: np.ndarray,
    phi: np.ndarray,
    level_lrs: np.ndarray | list[float],
    config: TrainConfig,
    rng: np.random.Generator | int | None = None,
    *,
    adam_states: list[_Adam] | None = None,
    on_epoch: Optional[EpochHook] = None,
) -> TrainResult:
    """Train hierarchy local embeddings in place (Function *TrainingHier*).

    ``level_lrs`` has one relative learning rate per level; a level with
    rate 0 is frozen (its gradient is never even computed).  Passing the
    same ``adam_states`` across successive calls keeps optimiser momentum
    through the multi-step schedule of Algorithm 1.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    pairs = np.asarray(pairs, dtype=np.int64)
    phi = np.asarray(phi, dtype=np.float64)
    level_lrs = np.asarray(level_lrs, dtype=np.float64)
    if level_lrs.shape != (hmodel.num_levels,):
        raise ValueError(
            f"level_lrs must have {hmodel.num_levels} entries, got {level_lrs.shape}"
        )
    result = TrainResult()
    if pairs.shape[0] == 0:
        return result

    use_adam = config.optimizer == "adam"
    if use_adam and adam_states is None:
        adam_states = new_adam_states(hmodel)
    scale = 1.0
    if use_adam:
        probe = slice(0, min(len(pairs), 2048))
        scale = _adam_lr_scale(hmodel.query_pairs(pairs[probe]), phi[probe])

    anc = hmodel.hierarchy.anc_rows
    active = [l for l in range(hmodel.num_levels) if level_lrs[l] > 0]

    for epoch in range(config.epochs):
        sq_sum = 0.0
        rel_sum = 0.0
        # perf: loop-ok (one iteration per batch, each fully vectorised)
        for batch in _epoch_batches(len(pairs), config.batch_size, config.shuffle, rng):
            s = pairs[batch, 0]
            t = pairs[batch, 1]
            rows_s = anc[s]
            rows_t = anc[t]
            vs = np.zeros((len(batch), hmodel.d), dtype=np.float64)
            vt = np.zeros((len(batch), hmodel.d), dtype=np.float64)
            for level, matrix in enumerate(hmodel.locals):
                vs += matrix[rows_s[:, level]]
                vt += matrix[rows_t[:, level]]
            grad, resid, _ = _pair_gradient(vs, vt, phi[batch], hmodel.p)
            sq_sum += float(np.square(resid).sum())
            rel_sum += float((np.abs(resid) / np.maximum(phi[batch], 1e-12)).sum())
            for level in active:
                ls = rows_s[:, level]
                lt = rows_t[:, level]
                rows = np.unique(np.concatenate([ls, lt]))
                full = np.zeros((rows.size, hmodel.d), dtype=np.float64)
                np.add.at(full, np.searchsorted(rows, ls), grad)
                np.add.at(full, np.searchsorted(rows, lt), -grad)
                full /= len(batch)
                lr = config.lr * level_lrs[level] * scale
                if use_adam:
                    # mutation-ok (documented in-place training)
                    hmodel.locals[level][rows] += adam_states[level].step_rows(
                        rows, full, lr
                    )
                else:
                    # mutation-ok (documented in-place training)
                    hmodel.locals[level][rows] -= config.lr * level_lrs[level] * full
        result.mse.append(sq_sum / len(pairs))
        result.mean_rel_error.append(rel_sum / len(pairs))
        if on_epoch is not None:
            on_epoch(epoch, result.mse[-1], result.mean_rel_error[-1])
    return result


def new_adam_states(hmodel: HierarchicalRNE) -> list[_Adam]:
    """Fresh Adam state per level, for threading through multiple calls."""
    return [_Adam(m.shape) for m in hmodel.locals]


def clone_adam_states(states: List[_Adam]) -> List[_Adam]:
    """Deep-copied optimiser states (pre-stage snapshots for rollback)."""
    return [state.clone() for state in states]


def level_schedule(focus: int, num_levels: int, *, alpha0: float = 1.0) -> np.ndarray:
    """The paper's per-level learning-rate schedule for hierarchy step ``focus``.

    ``alpha_l = alpha0 / (|l - focus| + 1)`` — the focused level trains at
    full rate, levels farther away progressively slower, so the coarse
    structure settles before fine levels move (right side of Fig. 5).
    """
    levels = np.arange(num_levels)
    return alpha0 / (np.abs(levels - focus) + 1.0)


def vertex_only_schedule(num_levels: int, *, alpha: float = 1.0) -> np.ndarray:
    """Phase-2 schedule: freeze all sub-graph levels, train only vertices."""
    lrs = np.zeros(num_levels, dtype=np.float64)
    lrs[-1] = alpha
    return lrs
