"""Approximation-quality metrics used throughout the evaluation.

The paper reports absolute error ``e_abs = |phi_hat - phi|`` and relative
error ``e_rel = e_abs / phi`` (Sec. III-B), plus three derived views that
its figures plot: per-distance-bucket means (Fig. 8 / 17), the cumulative
error distribution (Fig. 15), and F1 for range-query result sets (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorReport:
    """Summary statistics of a batch of approximate queries."""

    mean_abs: float
    mean_rel: float
    max_rel: float
    var_rel: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"e_rel={self.mean_rel * 100:.3f}% (var {self.var_rel:.2e}, "
            f"max {self.max_rel * 100:.2f}%), e_abs={self.mean_abs:.2f} "
            f"over {self.count} queries"
        )


def absolute_errors(pred: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """``e_abs`` per query."""
    return np.abs(np.asarray(pred, dtype=float) - np.asarray(truth, dtype=float))


def relative_errors(pred: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """``e_rel`` per query; zero-distance pairs are excluded by callers."""
    truth = np.asarray(truth, dtype=float)
    return absolute_errors(pred, truth) / np.maximum(truth, 1e-12)


def error_report(pred: np.ndarray, truth: np.ndarray) -> ErrorReport:
    """Aggregate an error batch into the paper's summary statistics."""
    pred = np.asarray(pred, dtype=float)
    truth = np.asarray(truth, dtype=float)
    ok = np.isfinite(pred) & np.isfinite(truth) & (truth > 0)
    pred, truth = pred[ok], truth[ok]
    if pred.size == 0:
        return ErrorReport(0.0, 0.0, 0.0, 0.0, 0)
    e_abs = absolute_errors(pred, truth)
    e_rel = e_abs / truth
    return ErrorReport(
        mean_abs=float(e_abs.mean()),
        mean_rel=float(e_rel.mean()),
        max_rel=float(e_rel.max()),
        var_rel=float(e_rel.var()),
        count=int(pred.size),
    )


def bucketed_errors(
    pred: np.ndarray,
    truth: np.ndarray,
    bucket_ids: np.ndarray,
    num_buckets: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean ``e_rel`` / ``e_abs`` / sample count per bucket.

    Buckets with no samples report zero error (they contribute no demand in
    the active-fine-tuning selection).
    """
    pred = np.asarray(pred, dtype=float)
    truth = np.asarray(truth, dtype=float)
    bucket_ids = np.asarray(bucket_ids, dtype=np.int64)
    rel = np.zeros(num_buckets, dtype=np.float64)
    abs_ = np.zeros(num_buckets, dtype=np.float64)
    counts = np.zeros(num_buckets, dtype=np.int64)
    e_abs = absolute_errors(pred, truth)
    e_rel = e_abs / np.maximum(truth, 1e-12)
    np.add.at(rel, bucket_ids, e_rel)
    np.add.at(abs_, bucket_ids, e_abs)
    np.add.at(counts, bucket_ids, 1)
    nz = counts > 0
    rel[nz] /= counts[nz]
    abs_[nz] /= counts[nz]
    return rel, abs_, counts


def error_cdf(
    pred: np.ndarray, truth: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Cumulative share of queries whose ``e_rel`` is below each threshold.

    This is the curve of Fig. 15: e.g. "93% of queries have error < 2%".
    """
    e_rel = relative_errors(pred, truth)
    thresholds = np.asarray(thresholds, dtype=float)
    return np.array([(e_rel <= th).mean() for th in thresholds])


def f1_score(result: set[int] | np.ndarray, truth: set[int] | np.ndarray) -> float:
    """F1 of an approximate result set against the exact one (Fig. 16).

    Both empty counts as a perfect answer; only one empty as a total miss.
    """
    result = set(int(v) for v in result)
    truth = set(int(v) for v in truth)
    if not result and not truth:
        return 1.0
    if not result or not truth:
        return 0.0
    tp = len(result & truth)
    precision = tp / len(result)
    recall = tp / len(truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def distance_scale_groups(
    truth: np.ndarray, num_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Assign queries to equal-width distance-scale groups (Fig. 13 / 17).

    Returns per-query group ids and the group upper bounds, mirroring the
    paper's "x-axis = upper bound of sample distance for each group".
    """
    truth = np.asarray(truth, dtype=float)
    finite = truth[np.isfinite(truth)]
    top = float(finite.max()) if finite.size else 1.0
    edges = np.linspace(0.0, top, num_groups + 1)[1:]
    ids = np.minimum(
        np.searchsorted(edges, truth, side="left"), num_groups - 1
    )
    return ids.astype(np.int64), edges
