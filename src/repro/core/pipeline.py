"""End-to-end RNE construction — Algorithm 1 as a one-call facade.

:func:`build_rne` runs the full pipeline of the paper:

1. build the partition hierarchy (Sec. IV-A),
2. **hierarchy phase** — train the local embeddings level by level with the
   focused learning-rate schedule and sub-graph-level samples,
3. **vertex phase** — freeze the sub-graph levels and train the vertex
   level on landmark-based samples,
4. **active fine-tuning** — error-driven sample selection on grid buckets,
5. freeze everything into a flat :class:`~repro.core.model.RNEModel` plus a
   tree index for range/kNN queries.

``hierarchical=False`` skips the hierarchy and trains a flat table on
random pairs — the paper's RNE-Naive ablation arm.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..algorithms.landmarks import select_landmarks
from ..graph import Graph, PartitionHierarchy
from ..parallel import PrefetchPipeline, make_labeler, resolve_workers
from ..reliability.artifacts import (
    ArtifactError,
    artifact_version,
    load_artifact,
    save_artifact,
    validate_embedding_payload,
)
from ..reliability.checkpoint import (
    CheckpointManager,
    RetryPolicy,
    abort_on_nonfinite,
    pack_state,
    restore_rng,
    rng_state,
    run_with_recovery,
    unpack_state,
)
from .finetune import FinetuneResult, active_finetune
from .hierarchical import HierarchicalRNE
from .index import EmbeddingTreeIndex
from .metrics import ErrorReport, error_report
from .model import RNEModel, lp_distance
from .sampling import (
    DistanceLabeler,
    GridBuckets,
    landmark_samples,
    random_pair_samples,
    stage_rng as _stage_rng,
    subgraph_level_samples,
    validation_set,
)
from .training import (
    TrainConfig,
    TrainResult,
    clone_adam_states,
    level_schedule,
    new_adam_states,
    train_flat,
    train_hierarchical,
    vertex_only_schedule,
)


@dataclass
class RNEConfig:
    """All knobs of the construction pipeline, with paper-informed defaults
    scaled down to the synthetic-network sizes this repo runs."""

    d: int = 32
    p: float = 1.0
    # hierarchy
    hierarchical: bool = True
    fanout: int = 4
    leaf_size: int = 32
    # phase 1
    hier_samples_per_level: int = 15_000
    hier_epochs: int = 4
    # phase 2
    vertex_samples: int = 60_000
    vertex_epochs: int = 5
    num_landmarks: int = 100
    landmark_strategy: str = "farthest"
    # phase 2.5 (engineering addition, see DESIGN.md): after the vertex
    # phase, train ALL levels jointly on random pairs at a reduced rate.
    # The focused schedule of phase 1 can leave coarse levels slightly
    # inconsistent with the trained vertex level; a short joint polish
    # lets them co-adjust, roughly halving the pre-fine-tuning error on
    # irregular networks.  Set joint_epochs=0 for the paper's exact recipe.
    joint_epochs: int = 4
    joint_samples: int = 50_000
    joint_lr_weight: float = 0.3
    # phase 3
    active: bool = True
    finetune_rounds: int = 4
    finetune_samples: int = 8_000
    finetune_mode: str = "global"
    grid_k: int = 12
    # optimisation
    optimizer: str = "adam"
    lr: float = 0.02
    batch_size: int = 2048
    # data pipeline: `workers=None` defers to the REPRO_WORKERS environment
    # variable (default serial); `prefetch` overlaps phase-(k+1) sample
    # labelling with phase-k SGD epochs.  Neither affects trained values:
    # sampling uses per-stage RNG streams and the parallel labeler is
    # bit-identical to the serial one.
    workers: int | None = None
    prefetch: bool = True
    # evaluation
    validation_size: int = 4000
    seed: int = 0

    def train_config(self, epochs: int, *, lr: float | None = None) -> TrainConfig:
        return TrainConfig(
            epochs=epochs,
            batch_size=self.batch_size,
            lr=self.lr if lr is None else lr,
            optimizer=self.optimizer,
        )


@dataclass
class BuildHistory:
    """Everything measured during construction."""

    phase_errors: dict[str, float] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    train_results: dict[str, TrainResult] = field(default_factory=dict)
    finetune: FinetuneResult | None = None
    build_seconds: float = 0.0
    sssp_runs: int = 0
    labeling: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


class RNE:
    """A trained road-network embedding: the queryable end product."""

    def __init__(
        self,
        graph: Graph,
        model: RNEModel,
        hierarchy: PartitionHierarchy | None,
        history: BuildHistory,
        *,
        version: int = 0,
    ) -> None:
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        self.graph = graph
        self.model = model
        self.hierarchy = hierarchy
        self.history = history
        #: Monotonic embedding version; bumped by every published live
        #: update (see :mod:`repro.live`) and persisted with the artifact.
        self.version = int(version)
        self.index = (
            EmbeddingTreeIndex(hierarchy, model.matrix, model.p)
            if hierarchy is not None
            else None
        )

    # -- distance queries ------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Approximate shortest-path distance, O(d)."""
        return self.model.query(s, t)

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        return self.model.query_pairs(pairs)

    # -- spatial queries ---------------------------------------------------
    def knn(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets via the tree index (brute scan without one).

        Both paths obey the shared contract: ascending ``(distance, id)``
        order, ``min(k, #unique targets)`` results.
        """
        if self.index is not None:
            return self.index.knn_query(source, targets, k)
        return self.model.knn_brute(source, targets, k)

    def range_query(self, source: int, targets: np.ndarray, tau: float) -> np.ndarray:
        """Targets within embedding distance ``tau`` (ascending sorted ids)."""
        if self.index is not None:
            return self.index.range_query(source, targets, tau)
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        dists = self.model.distances_from(source, targets)
        return targets[dists <= tau]

    def knn_join(self, sources: np.ndarray, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets for *every* source — the paper's Uber workload.

        Returns a ``(len(sources), min(k, #unique targets))`` id array, each
        row in ascending ``(distance, id)`` order per the shared kNN
        contract (duplicate targets count once).  Vectorised over the full
        source x target distance matrix in chunks, so a 10k x 1k join is a
        handful of numpy ops rather than 10M scalar queries.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        k_eff = min(k, targets.size)
        out = np.empty((sources.size, k_eff), dtype=np.int64)
        t_vecs = self.model.matrix[targets]
        chunk = max(1, 2_000_000 // max(targets.size, 1))
        for start in range(0, sources.size, chunk):
            block = sources[start : start + chunk]
            diff = self.model.matrix[block][:, None, :] - t_vecs[None, :, :]
            dists = lp_distance(diff, self.model.p)
            # Full (distance, id) lexsort per row: unlike argpartition it
            # resolves boundary ties deterministically towards smaller ids.
            ids = np.broadcast_to(targets, dists.shape)
            order = np.lexsort((ids, dists), axis=1)[:, :k_eff]
            out[start : start + chunk] = targets[order]
        return out

    # -- persistence -------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the trained artefact (matrix, metric, tree structure).

        Written through the reliability artifact layer: atomic replace, a
        manifest with per-array checksums, and the training graph's
        fingerprint so the artifact can only be revived against the same
        network.
        """
        arrays = {"matrix": self.model.matrix, "p": np.float64(self.model.p)}
        if self.hierarchy is not None:
            arrays["anc_rows"] = self.hierarchy.anc_rows
        save_artifact(
            path,
            arrays,
            kind="rne",
            graph=self.graph,
            meta={"version": int(self.version)},
        )

    @classmethod
    def load(cls, path: str, graph: Graph) -> "RNE":
        """Revive a saved RNE against its (verified-identical) graph.

        Raises :class:`~repro.reliability.artifacts.ArtifactError` when the
        file is corrupt, truncated, schema-incompatible, or was trained on
        a different graph — a loaded RNE never silently mis-answers.
        """
        arrays, manifest = load_artifact(path, expect_kind="rne", graph=graph)
        if "matrix" not in arrays or "p" not in arrays:
            raise ArtifactError(f"{path}: RNE artifact is missing arrays")
        matrix, p = validate_embedding_payload(
            path, arrays["matrix"], arrays["p"], expect_n=graph.n
        )
        model = RNEModel(matrix, p=p)
        hierarchy = None
        if "anc_rows" in arrays:
            try:
                hierarchy = PartitionHierarchy.from_ancestor_rows(
                    graph, arrays["anc_rows"]
                )
            except ValueError as exc:
                raise ArtifactError(
                    f"{path}: stored hierarchy is inconsistent with the "
                    f"graph: {exc}"
                ) from exc
        return cls(
            graph,
            model,
            hierarchy,
            BuildHistory(),
            version=artifact_version(manifest),
        )

    # -- accounting --------------------------------------------------------
    def index_bytes(self) -> int:
        total = self.model.index_bytes()
        if self.index is not None:
            total += self.index.index_bytes()
        return total

    def validate(self, pairs: np.ndarray, phi: np.ndarray) -> ErrorReport:
        """Error report of this model on a labelled pair set."""
        return error_report(self.query_pairs(pairs), phi)


def _mean_distance_probe(
    graph: Graph, labeler: DistanceLabeler, rng: np.random.Generator
) -> float:
    _, phi = random_pair_samples(graph, 512, labeler, rng, source_pool_size=16)
    return float(np.mean(phi)) if phi.size else 1.0


def build_rne(
    graph: Graph,
    config: RNEConfig | None = None,
    *,
    seed: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> RNE:
    """Train an RNE for ``graph`` — the paper's Algorithm 1 end to end.

    ``seed`` overrides ``config.seed`` when given, so callers can vary the
    randomness without rebuilding a config.

    ``checkpoint_dir`` enables crash-safe per-stage checkpoints (each phase
    of Algorithm 1 is a stage); with ``resume=True`` the build restores the
    latest *valid* checkpoint from that directory — corrupt ones are
    skipped — and re-runs only the remaining stages.  A resumed build is
    bit-identical to an uninterrupted one because checkpoints carry the
    embedding state, the per-level Adam moments and the RNG stream
    position.  Each training stage also runs under divergence recovery:
    non-finite or regressing loss rolls the stage back and retries at a
    reduced learning rate (see :mod:`repro.reliability.checkpoint`).

    ``config.workers`` fans ground-truth labelling over a process pool and
    ``config.prefetch`` overlaps each phase's sample labelling with the
    previous phase's SGD epochs (see :mod:`repro.parallel`); both are pure
    speed knobs — the trained embedding is bit-identical for any setting.
    """
    if config is None:
        config = RNEConfig()
    if seed is not None:
        config = replace(config, seed=seed)
    rng = np.random.default_rng(config.seed)
    labeler = make_labeler(graph, workers=config.workers)
    history = BuildHistory()
    start = time.perf_counter()
    manager = (
        CheckpointManager(checkpoint_dir, graph=graph)
        if checkpoint_dir is not None
        else None
    )

    try:
        val_pairs, val_phi = validation_set(
            graph, config.validation_size, labeler,
            seed=np.random.default_rng(config.seed + 99),
        )
        mean_phi = _mean_distance_probe(graph, labeler, rng)

        if config.hierarchical:
            model, hierarchy = _build_hierarchical(
                graph, config, rng, labeler, history, val_pairs, val_phi, mean_phi,
                manager=manager, resume=resume,
            )
        else:
            model, hierarchy = _build_flat(
                graph, config, rng, labeler, history, val_pairs, val_phi, mean_phi,
                manager=manager, resume=resume,
            )
        history.labeling = labeler.snapshot()
    finally:
        labeler.close()

    history.build_seconds = time.perf_counter() - start
    history.sssp_runs = labeler.sssp_runs
    rne = RNE(graph, model, hierarchy, history)
    history.phase_errors["final"] = rne.validate(val_pairs, val_phi).mean_rel
    return rne


def _init_scale(mean_phi: float, d: int) -> float:
    """Std-dev so random init produces distances of the right magnitude.

    For L1 and normal init, ``E||x - y||_1 = d * 2 * sigma / sqrt(pi)``;
    solve for sigma at the probed mean distance.
    """
    return mean_phi * np.sqrt(np.pi) / (2.0 * d)


def _serialize_history(history: BuildHistory) -> dict[str, Any]:
    """JSON-safe fragment of the build history for checkpoint manifests."""
    return {
        "phase_errors": {k: float(v) for k, v in history.phase_errors.items()},
        "phase_seconds": {k: float(v) for k, v in history.phase_seconds.items()},
        "train_results": {
            name: {"mse": list(res.mse), "mean_rel_error": list(res.mean_rel_error)}
            for name, res in history.train_results.items()
        },
        "finetune_errors": (
            list(history.finetune.mean_rel_errors)
            if history.finetune is not None
            else None
        ),
        "notes": list(history.notes),
    }


def _restore_history(history: BuildHistory, meta: dict[str, Any]) -> None:
    history.phase_errors.update(
        {k: float(v) for k, v in meta.get("phase_errors", {}).items()}
    )
    history.phase_seconds.update(
        {k: float(v) for k, v in meta.get("phase_seconds", {}).items()}
    )
    for name, payload in meta.get("train_results", {}).items():
        history.train_results[name] = TrainResult(
            mse=[float(v) for v in payload["mse"]],
            mean_rel_error=[float(v) for v in payload["mean_rel_error"]],
        )
    if meta.get("finetune_errors"):
        history.finetune = FinetuneResult(
            mean_rel_errors=[float(v) for v in meta["finetune_errors"]],
            bucket_errors=[],
        )
    for note in meta.get("notes", []):
        if note not in history.notes:
            history.notes.append(note)


def _restore_latest(
    manager: CheckpointManager,
    stage_names: list[str],
    matrices: list[np.ndarray],
    adam_states: list[Any] | None,
    rng: np.random.Generator,
    history: BuildHistory,
) -> int:
    """Load the latest valid checkpoint into the live training state.

    Returns the index of the restored stage in ``stage_names``, or ``-1``
    when nothing usable was found (fresh start).  Corrupt or mismatched
    checkpoints are noted and skipped, never trusted.
    """
    found = manager.latest()
    for path, reason in manager.skipped:
        history.notes.append(
            f"skipped corrupt checkpoint {os.path.basename(path)}: {reason}"
        )
    if found is None:
        return -1
    stage, arrays, meta = found
    if stage not in stage_names or int(meta.get("step", -1)) != stage_names.index(stage):
        history.notes.append(
            f"checkpoint stage {stage!r} does not match this configuration; "
            "starting fresh"
        )
        return -1
    try:
        unpack_state(arrays, meta, matrices, adam_states)
    except ArtifactError as exc:
        history.notes.append(f"checkpoint {stage!r} unusable: {exc}; starting fresh")
        return -1
    restore_rng(rng, meta["rng_state"])
    _restore_history(history, meta)
    history.notes.append(f"resumed from checkpoint {stage!r}")
    return stage_names.index(stage)


def _build_hierarchical(
    graph: Graph,
    config: RNEConfig,
    rng: np.random.Generator,
    labeler: DistanceLabeler,
    history: BuildHistory,
    val_pairs: np.ndarray,
    val_phi: np.ndarray,
    mean_phi: float,
    *,
    manager: CheckpointManager | None = None,
    resume: bool = False,
) -> tuple[RNEModel, PartitionHierarchy]:
    # The hierarchy and initial embeddings are reconstructed
    # deterministically from config.seed on every call, so a resumed run
    # only needs the checkpointed matrices / Adam moments / RNG position to
    # be bit-identical to an uninterrupted one.
    hierarchy = PartitionHierarchy(
        graph, fanout=config.fanout, leaf_size=config.leaf_size, seed=rng
    )
    hmodel = HierarchicalRNE(
        hierarchy,
        config.d,
        p=config.p,
        init_scale=_init_scale(mean_phi, config.d),
        seed=rng,
    )
    adam = new_adam_states(hmodel)

    stage_names = [f"hier_level_{f}" for f in range(hierarchy.num_subgraph_levels)]
    stage_names.append("vertex")
    if config.joint_epochs > 0:
        stage_names.append("joint")
    run_finetune = config.active and graph.coords is not None
    if run_finetune:
        stage_names.append("finetune")

    resume_step = -1
    if manager is not None and resume:
        resume_step = _restore_latest(
            manager, stage_names, hmodel.locals, adam, rng, history
        )

    def pending(name: str) -> bool:
        # Skipped stages consume no RNG draws: the restored stream position
        # already accounts for everything up to and including the checkpoint.
        return stage_names.index(name) > resume_step

    def snapshot() -> tuple[Any, ...]:
        return (
            [m.copy() for m in hmodel.locals],
            clone_adam_states(adam),
            rng_state(rng),
        )

    def restore(snap: tuple[Any, ...]) -> None:
        mats, states, rstate = snap
        for matrix, saved in zip(hmodel.locals, mats):
            matrix[...] = saved
        for cur, saved in zip(adam, states):
            cur.m[...] = saved.m
            cur.v[...] = saved.v
            cur.t = saved.t
        restore_rng(rng, rstate)

    def run_stage(
        name: str,
        attempt: Callable[[float], Any],
        *,
        history_of: Callable[[Any], Sequence[float]] | None = None,
    ) -> Any:
        outcome = run_with_recovery(
            attempt, snapshot, restore, stage=name, history_of=history_of
        )
        history.notes.extend(outcome.notes)
        return outcome.result

    def checkpoint(name: str) -> None:
        if manager is None:
            return
        arrays, meta = pack_state(hmodel.locals, adam)
        meta["rng_state"] = rng_state(rng)
        meta["worker_config"] = {
            "workers": resolve_workers(config.workers),
            "prefetch": bool(config.prefetch),
        }
        meta.update(_serialize_history(history))
        manager.save(name, arrays, meta, step=stage_names.index(name))

    # Sample generation + labelling for every pending training stage is
    # queued on the prefetch pipeline: each job draws from its own
    # per-stage RNG stream (see _stage_rng), so phase-(k+1) labelling can
    # run on the background thread while phase-k SGD epochs consume the
    # main RNG — bit-identical to the synchronous order either way.
    pipeline = PrefetchPipeline(enabled=config.prefetch)
    for focus in range(hierarchy.num_subgraph_levels):
        name = f"hier_level_{focus}"
        if pending(name):
            pipeline.add(
                name,
                lambda _f=focus, _n=name: subgraph_level_samples(
                    hierarchy,
                    _f,
                    config.hier_samples_per_level,
                    labeler,
                    _stage_rng(config.seed, _n),
                ),
            )
    if pending("vertex"):
        landmarks = select_landmarks(
            graph,
            min(config.num_landmarks, graph.n),
            strategy=config.landmark_strategy,
            seed=_stage_rng(config.seed, "landmarks"),
        )
        pipeline.add(
            "vertex",
            lambda _lm=landmarks: landmark_samples(
                graph,
                _lm,
                config.vertex_samples,
                labeler,
                _stage_rng(config.seed, "vertex"),
            ),
        )
    if config.joint_epochs > 0 and pending("joint"):
        pipeline.add(
            "joint",
            lambda: random_pair_samples(
                graph,
                config.joint_samples,
                labeler,
                _stage_rng(config.seed, "joint"),
            ),
        )
    pipeline.start()

    try:
        # Phase 1: level-by-level hierarchy embedding.
        for focus in range(hierarchy.num_subgraph_levels):
            name = f"hier_level_{focus}"
            if not pending(name):
                continue
            stage_start = time.perf_counter()
            pairs, phi = pipeline.get(name)
            schedule = level_schedule(focus, hmodel.num_levels)

            def attempt(
                lr_scale: float,
                _pairs: np.ndarray = pairs,
                _phi: np.ndarray = phi,
                _schedule: np.ndarray = schedule,
                _name: str = name,
            ) -> TrainResult:
                return train_hierarchical(
                    hmodel,
                    _pairs,
                    _phi,
                    _schedule,
                    config.train_config(config.hier_epochs, lr=config.lr * lr_scale),
                    rng,
                    adam_states=adam,
                    on_epoch=abort_on_nonfinite(_name),
                )

            history.train_results[name] = run_stage(name, attempt)
            history.phase_seconds[name] = time.perf_counter() - stage_start
            if focus == hierarchy.num_subgraph_levels - 1:
                history.phase_errors["after_hierarchy"] = error_report(
                    hmodel.query_pairs(val_pairs), val_phi
                ).mean_rel
            checkpoint(name)

        # Phase 2: vertex embedding on landmark samples, coarse levels frozen.
        if pending("vertex"):
            stage_start = time.perf_counter()
            pairs, phi = pipeline.get("vertex")

            def attempt_vertex(
                lr_scale: float, _pairs: np.ndarray = pairs, _phi: np.ndarray = phi
            ) -> TrainResult:
                return train_hierarchical(
                    hmodel,
                    _pairs,
                    _phi,
                    vertex_only_schedule(hmodel.num_levels),
                    config.train_config(config.vertex_epochs, lr=config.lr * lr_scale),
                    rng,
                    adam_states=adam,
                    on_epoch=abort_on_nonfinite("vertex"),
                )

            history.train_results["vertex"] = run_stage("vertex", attempt_vertex)
            history.phase_seconds["vertex"] = time.perf_counter() - stage_start
            history.phase_errors["after_vertex"] = error_report(
                hmodel.query_pairs(val_pairs), val_phi
            ).mean_rel
            checkpoint("vertex")

        # Phase 2.5: joint all-level polish on random pairs.
        if config.joint_epochs > 0 and pending("joint"):
            stage_start = time.perf_counter()
            pairs, phi = pipeline.get("joint")

            def attempt_joint(
                lr_scale: float, _pairs: np.ndarray = pairs, _phi: np.ndarray = phi
            ) -> TrainResult:
                return train_hierarchical(
                    hmodel,
                    _pairs,
                    _phi,
                    np.full(
                        hmodel.num_levels, config.joint_lr_weight, dtype=np.float64
                    ),
                    config.train_config(config.joint_epochs, lr=config.lr * lr_scale),
                    rng,
                    adam_states=adam,
                    on_epoch=abort_on_nonfinite("joint"),
                )

            history.train_results["joint"] = run_stage("joint", attempt_joint)
            history.phase_seconds["joint"] = time.perf_counter() - stage_start
            history.phase_errors["after_joint"] = error_report(
                hmodel.query_pairs(val_pairs), val_phi
            ).mean_rel
            checkpoint("joint")
    finally:
        pipeline.close()

    # Phase 3: active fine-tuning on grid buckets.  Error-driven selection
    # depends on the live model, so it cannot be prefetched; it runs on the
    # main RNG stream like the training loops.
    if config.active:
        if graph.coords is None:
            note = "graph has no coordinates: fine-tuning skipped"
            if note not in history.notes:
                history.notes.append(note)
        elif pending("finetune"):
            stage_start = time.perf_counter()
            buckets = GridBuckets(graph, config.grid_k, seed=rng)

            def attempt_finetune(lr_scale: float) -> FinetuneResult:
                return active_finetune(
                    hmodel,
                    buckets,
                    labeler,
                    val_pairs,
                    val_phi,
                    rounds=config.finetune_rounds,
                    samples_per_round=config.finetune_samples,
                    mode=config.finetune_mode,
                    config=config.train_config(2, lr=config.lr / 2 * lr_scale),
                    seed=rng,
                )

            history.finetune = run_stage(
                "finetune",
                attempt_finetune,
                history_of=lambda r: r.mean_rel_errors,
            )
            history.phase_seconds["finetune"] = time.perf_counter() - stage_start
            history.phase_errors["after_finetune"] = history.finetune.mean_rel_errors[-1]
            checkpoint("finetune")

    return hmodel.to_model(), hierarchy


def _build_flat(
    graph: Graph,
    config: RNEConfig,
    rng: np.random.Generator,
    labeler: DistanceLabeler,
    history: BuildHistory,
    val_pairs: np.ndarray,
    val_phi: np.ndarray,
    mean_phi: float,
    *,
    manager: CheckpointManager | None = None,
    resume: bool = False,
) -> tuple[RNEModel, PartitionHierarchy | None]:
    """RNE-Naive: flat table, random pairs, no structural help."""
    model = RNEModel.random(
        graph.n,
        config.d,
        p=config.p,
        scale=_init_scale(mean_phi, config.d),
        seed=rng,
    )

    stage_names = ["flat"]
    run_finetune = config.active and graph.coords is not None
    if run_finetune:
        stage_names.append("finetune")

    resume_step = -1
    if manager is not None and resume:
        # No persisted Adam state: train_flat creates its own optimiser per
        # call, so stage-boundary resume is exact without it.
        resume_step = _restore_latest(
            manager, stage_names, [model.matrix], None, rng, history
        )

    def snapshot() -> tuple[Any, ...]:
        return (model.matrix.copy(), rng_state(rng))

    def restore(snap: tuple[Any, ...]) -> None:
        saved, rstate = snap
        model.matrix[...] = saved
        restore_rng(rng, rstate)

    def checkpoint(name: str) -> None:
        if manager is None:
            return
        arrays, meta = pack_state([model.matrix])
        meta["rng_state"] = rng_state(rng)
        meta["worker_config"] = {
            "workers": resolve_workers(config.workers),
            "prefetch": bool(config.prefetch),
        }
        meta.update(_serialize_history(history))
        manager.save(name, arrays, meta, step=stage_names.index(name))

    if resume_step < 0:
        stage_start = time.perf_counter()
        total = (
            config.hier_samples_per_level + config.vertex_samples
        )  # same sample budget as the hierarchical arm, for fair ablations
        # Single training stage: nothing to overlap, but the sample stream
        # is still per-stage so flat and hierarchical arms share conventions.
        pairs, phi = random_pair_samples(
            graph, total, labeler, _stage_rng(config.seed, "flat")
        )

        def attempt_flat(
            lr_scale: float, _pairs: np.ndarray = pairs, _phi: np.ndarray = phi
        ) -> TrainResult:
            return train_flat(
                model,
                _pairs,
                _phi,
                config.train_config(
                    config.hier_epochs + config.vertex_epochs,
                    lr=config.lr * lr_scale,
                ),
                rng,
                on_epoch=abort_on_nonfinite("flat"),
            )

        outcome = run_with_recovery(attempt_flat, snapshot, restore, stage="flat")
        history.notes.extend(outcome.notes)
        history.train_results["flat"] = outcome.result
        history.phase_seconds["flat"] = time.perf_counter() - stage_start
        history.phase_errors["after_flat"] = error_report(
            model.query_pairs(val_pairs), val_phi
        ).mean_rel
        checkpoint("flat")

    if run_finetune and resume_step < stage_names.index("finetune"):
        stage_start = time.perf_counter()
        buckets = GridBuckets(graph, config.grid_k, seed=rng)

        def attempt_finetune(lr_scale: float) -> FinetuneResult:
            return active_finetune(
                model,
                buckets,
                labeler,
                val_pairs,
                val_phi,
                rounds=config.finetune_rounds,
                samples_per_round=config.finetune_samples,
                mode=config.finetune_mode,
                config=config.train_config(2, lr=config.lr / 4 * lr_scale),
                seed=rng,
            )

        outcome = run_with_recovery(
            attempt_finetune,
            snapshot,
            restore,
            stage="finetune",
            history_of=lambda r: r.mean_rel_errors,
        )
        history.notes.extend(outcome.notes)
        history.finetune = outcome.result
        history.phase_seconds["finetune"] = time.perf_counter() - stage_start
        history.phase_errors["after_finetune"] = history.finetune.mean_rel_errors[-1]
        checkpoint("finetune")
    return model, None
