"""Flat (vertex-table) road network embedding model.

This is the paper's basic RNE (Sec. III): a ``|V| x d`` matrix ``M`` whose
rows are vertex embeddings, queried with the ``Lp`` vector distance

    phi_hat(s, t) = || M[s] - M[t] ||_p

with ``p = 1`` as the recommended metric.  Queries are O(d) — no graph
search — which is the entire point of the method.
"""

from __future__ import annotations

import os

import numpy as np

from ..devtools.contracts import shapes
from ..graph import io as graph_io


@shapes(diff="(...,d):float")
def lp_distance(diff: np.ndarray, p: float) -> np.ndarray:
    """``Lp`` norm along the last axis.

    Supports fractional ``p`` (the paper ablates ``p = 0.5``), for which
    this is the standard quasi-norm ``(sum |x|^p)^(1/p)``.
    """
    if p <= 0:
        raise ValueError(f"p must be > 0, got {p}")
    if p == 1.0:
        return np.abs(diff).sum(axis=-1)
    if p == 2.0:
        return np.sqrt(np.square(diff).sum(axis=-1))
    return np.power(np.power(np.abs(diff), p).sum(axis=-1), 1.0 / p)


@shapes(diff="(...,d):float")
def lp_gradient(diff: np.ndarray, p: float) -> np.ndarray:
    """Gradient of ``||diff||_p`` with respect to ``diff`` (batched).

    For ``p = 1`` this is ``sign(diff)`` — the linearity that makes the L1
    metric both expressive for planar graphs and cheap to train.  For other
    ``p`` it is ``sign(d) |d|^(p-1) / ||d||_p^(p-1)`` with the singular
    points regularised.
    """
    if p == 1.0:
        return np.sign(diff)
    norms = lp_distance(diff, p)
    norms = np.maximum(norms, 1e-12)[..., None]
    return np.sign(diff) * np.power(np.abs(diff) + 1e-12, p - 1.0) / np.power(
        norms, p - 1.0
    )


class RNEModel:
    """Embedding matrix + metric: the queryable artefact of training.

    Parameters
    ----------
    matrix:
        ``(n, d)`` float array of vertex embeddings.
    p:
        Metric order for queries (paper default: 1).
    """

    def __init__(self, matrix: np.ndarray, p: float = 1.0) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-d, got shape {matrix.shape}")
        if p <= 0:
            raise ValueError(f"p must be > 0, got {p}")
        self.matrix = matrix
        self.p = float(p)

    @classmethod
    def random(
        cls,
        n: int,
        d: int,
        *,
        p: float = 1.0,
        scale: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> "RNEModel":
        """Random-normal initialisation (used by the naive flat training)."""
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        return cls(rng.normal(scale=scale, size=(n, d)), p=p)

    @property
    def n(self) -> int:
        return self.matrix.shape[0]

    @property
    def d(self) -> int:
        return self.matrix.shape[1]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Approximate shortest-path distance between two vertices."""
        return float(lp_distance(self.matrix[s] - self.matrix[t], self.p))

    @shapes(pairs="(k,2):int", ret="(k,):float")
    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorised queries for a ``(k, 2)`` array of vertex pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        diff = self.matrix[pairs[:, 0]] - self.matrix[pairs[:, 1]]
        return lp_distance(diff, self.p)

    def distances_from(self, s: int, targets: np.ndarray | None = None) -> np.ndarray:
        """Distances from ``s`` to ``targets`` (or to every vertex)."""
        rows = self.matrix if targets is None else self.matrix[np.asarray(targets)]
        return lp_distance(rows - self.matrix[s], self.p)

    def knn_brute(self, s: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest of ``targets`` to ``s`` by embedding distance (scan).

        Follows the shared kNN contract (see :mod:`repro.core.index`):
        duplicate targets count once, output is ascending
        ``(distance, vertex id)``, and ``min(k, #unique targets)`` results
        are returned when the target set is smaller than ``k``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        dists = self.distances_from(s, targets)
        return targets[np.lexsort((targets, dists))[:k]]

    def copy(self) -> "RNEModel":
        """Independent copy (used by ablations to branch training arms)."""
        return RNEModel(self.matrix.copy(), p=self.p)

    # ------------------------------------------------------------------
    # persistence / accounting
    # ------------------------------------------------------------------
    def index_bytes(self) -> int:
        """Memory footprint — ``O(|V| * d)`` as the paper reports."""
        return int(self.matrix.nbytes)

    def save(self, path: str | os.PathLike) -> None:
        graph_io.save_embedding(path, self.matrix, p=self.p)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RNEModel":
        matrix, p = graph_io.load_embedding(path)
        return cls(matrix, p=p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RNEModel(n={self.n}, d={self.d}, p={self.p})"
