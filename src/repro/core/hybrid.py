"""Certified hybrid estimator: RNE point estimates + landmark bounds.

An extension beyond the paper (its conclusion invites combining RNE with
classical machinery): the RNE embedding answers fast but offers no
per-query guarantee, while the LT landmark table yields *certified*
triangle-inequality bounds ``lower <= d(s,t) <= upper`` at O(|U|) cost.
Combining them gives every query

* a point estimate (the RNE value, clamped into the certified interval —
  clamping can only reduce its error), and
* a hard error certificate ``(upper - lower) / lower``.

Applications that must never overestimate by more than a factor (e.g.
admission control, fare caps) can use the interval directly and fall back
to an exact method only for the few queries whose certificate is too
loose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.landmarks import LTEstimator
from ..graph import Graph
from .model import RNEModel


@dataclass(frozen=True)
class CertifiedDistance:
    """A distance estimate with a hard two-sided certificate."""

    estimate: float
    lower: float
    upper: float

    @property
    def max_relative_error(self) -> float:
        """Worst-case relative error of ``estimate`` given the bounds."""
        if self.lower <= 0:
            return float("inf") if self.upper > 0 else 0.0
        return max(
            (self.estimate - self.lower) / self.lower,
            (self.upper - self.estimate) / self.lower,
        )


class HybridEstimator:
    """RNE estimates clamped into certified landmark intervals.

    Parameters
    ----------
    model:
        A trained RNE model.
    graph:
        The road network (used to build the landmark table).
    num_landmarks:
        Landmark count for the bounding table; more landmarks tighten the
        certificates at O(|U|) extra per query.
    """

    def __init__(
        self,
        model: RNEModel,
        graph: Graph,
        *,
        num_landmarks: int = 16,
        lt: LTEstimator | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if lt is None:
            lt = LTEstimator(graph, min(num_landmarks, graph.n), seed=seed)
        self.model = model
        self.lt = lt

    def query(self, s: int, t: int) -> CertifiedDistance:
        """Certified estimate for one pair."""
        if s == t:
            return CertifiedDistance(0.0, 0.0, 0.0)
        lower = self.lt.lower_bound(s, t)
        # The bounds are equal (up to float rounding) when an endpoint is a
        # landmark; keep the interval well-ordered.
        upper = max(self.lt.upper_bound(s, t), lower)
        est = float(np.clip(self.model.query(s, t), lower, upper))
        return CertifiedDistance(est, lower, upper)

    def query_pairs(self, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised ``(estimates, lowers, uppers)`` for a pair array."""
        pairs = np.asarray(pairs, dtype=np.int64)
        table = self.lt.table
        diff = table[:, pairs[:, 0]] - table[:, pairs[:, 1]]
        lowers = np.max(np.abs(diff), axis=0)
        uppers = np.min(table[:, pairs[:, 0]] + table[:, pairs[:, 1]], axis=0)
        same = pairs[:, 0] == pairs[:, 1]
        lowers[same] = 0.0
        uppers[same] = 0.0
        np.maximum(uppers, lowers, out=uppers)  # 1-ulp crossings at landmarks
        est = np.clip(self.model.query_pairs(pairs), lowers, uppers)
        return est, lowers, uppers

    def loose_queries(self, pairs: np.ndarray, tolerance: float) -> np.ndarray:
        """Indices whose certificate exceeds ``tolerance`` relative width.

        These are the queries a caller should route to an exact method —
        typically a small fraction once |U| is moderate.
        """
        _, lowers, uppers = self.query_pairs(pairs)
        with np.errstate(divide="ignore", invalid="ignore"):
            width = (uppers - lowers) / np.where(lowers > 0, lowers, np.inf)
        return np.nonzero(width > tolerance)[0]

    def index_bytes(self) -> int:
        return self.model.index_bytes() + self.lt.index_bytes()
