"""Active fine-tuning (Sec. V-C of the paper).

After the hierarchy and vertex phases converge, errors are not uniform over
distance: randomly chosen pairs concentrate in a narrow distance band, so
other bands stay under-fitted (Fig. 8).  Active fine-tuning iterates:

1. measure per-bucket validation error (buckets = grid-pair distance
   intervals from :class:`~repro.core.sampling.GridBuckets`),
2. draw new training pairs from the worst buckets (``local``) or from every
   bucket proportionally to its error (``global``),
3. train on them — only the vertex level for the hierarchical model, the
   whole table for the flat one,

which flattens the error-versus-distance profile and lowers both the mean
and the variance of ``e_rel``.  Works on either model class so the Fig. 11
ablation can compare Naive/Hier with and without AFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..devtools.contracts import shapes
from .hierarchical import HierarchicalRNE
from .metrics import bucketed_errors
from .model import RNEModel
from .sampling import DistanceLabeler, GridBuckets, error_based_samples
from .training import (
    TrainConfig,
    new_adam_states,
    train_flat,
    train_hierarchical,
    vertex_only_schedule,
)


@dataclass
class FinetuneResult:
    """Validation trace of the fine-tuning loop (one entry per round plus a
    final post-training measurement)."""

    mean_rel_errors: list[float] = field(default_factory=list)
    bucket_errors: list[np.ndarray] = field(default_factory=list)
    #: Labelling cost attributable to this loop (labeler-counter deltas).
    sssp_runs: int = 0
    pairs_labelled: int = 0

    @property
    def rounds(self) -> int:
        return max(len(self.mean_rel_errors) - 1, 0)


class _ModelAdapter:
    """Uniform train / snapshot interface over both model classes."""

    def __init__(self, model: HierarchicalRNE | RNEModel, config: TrainConfig):
        self.model = model
        self.config = config
        if isinstance(model, HierarchicalRNE):
            self._adam = new_adam_states(model)
            self._schedule = vertex_only_schedule(model.num_levels)
        else:
            self._adam = None
            self._schedule = None

    def train(self, pairs: np.ndarray, phi: np.ndarray, rng: np.random.Generator) -> None:
        if isinstance(self.model, HierarchicalRNE):
            train_hierarchical(
                self.model, pairs, phi, self._schedule, self.config, rng,
                adam_states=self._adam,
            )
        else:
            train_flat(self.model, pairs, phi, self.config, rng)

    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        return self.model.query_pairs(pairs)

    def snapshot(self) -> np.ndarray:
        if isinstance(self.model, HierarchicalRNE):
            return self.model.locals[-1].copy()
        return self.model.matrix.copy()

    def restore(self, snap: np.ndarray) -> None:
        if isinstance(self.model, HierarchicalRNE):
            self.model.locals[-1] = snap
        else:
            self.model.matrix = snap


@shapes(val_pairs="(k,2):int", val_phi="(k,):float:finite")
def active_finetune(
    model: HierarchicalRNE | RNEModel,
    buckets: GridBuckets,
    labeler: DistanceLabeler,
    val_pairs: np.ndarray,
    val_phi: np.ndarray,
    *,
    rounds: int = 4,
    samples_per_round: int = 4000,
    mode: str = "global",
    config: TrainConfig | None = None,
    seed: int | np.random.Generator | None = 0,
    keep_best: bool = True,
) -> FinetuneResult:
    """Run the error-driven fine-tuning loop in place.

    Each round re-measures the bucketed validation error of the current
    model, draws ``samples_per_round`` pairs targeted at high-error buckets
    and trains on them.  With ``keep_best`` the model is rolled back to the
    best-validation round at the end (fine-tuning on a narrow distribution
    can overshoot).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if config is None:
        config = TrainConfig(epochs=2, batch_size=1024, lr=0.01)
    adapter = _ModelAdapter(model, config)
    val_bucket_ids = buckets.bucket_of_pairs(val_pairs)
    result = FinetuneResult()
    runs_before = labeler.sssp_runs
    pairs_before = labeler.pairs_labelled

    best_err = np.inf
    best_snapshot: np.ndarray | None = None

    def measure() -> tuple[float, np.ndarray]:
        pred = adapter.query_pairs(val_pairs)
        rel, _, _ = bucketed_errors(pred, val_phi, val_bucket_ids, buckets.num_buckets)
        mean_rel = float(np.mean(np.abs(pred - val_phi) / np.maximum(val_phi, 1e-12)))
        return mean_rel, rel

    for _ in range(rounds):
        mean_rel, rel = measure()
        result.mean_rel_errors.append(mean_rel)
        result.bucket_errors.append(rel)
        if keep_best and mean_rel < best_err:
            best_err = mean_rel
            best_snapshot = adapter.snapshot()

        pairs, phi = error_based_samples(
            buckets, rel, samples_per_round, labeler, rng, mode=mode
        )
        if pairs.shape[0] == 0:
            break
        adapter.train(pairs, phi, rng)

    mean_rel, rel = measure()
    result.mean_rel_errors.append(mean_rel)
    result.bucket_errors.append(rel)
    if keep_best and best_snapshot is not None and mean_rel > best_err:
        adapter.restore(best_snapshot)
    result.sssp_runs = labeler.sssp_runs - runs_before
    result.pairs_labelled = labeler.pairs_labelled - pairs_before
    return result
