"""Incremental model updates after edge-weight changes.

An extension beyond the paper (its framework supports it directly): road
networks change — congestion, closures, re-opened segments.  Rebuilding the
whole embedding for every change wastes the structure that did not move;
instead, :func:`update_rne` fine-tunes the *vertex level* on pairs sampled
around the changed edges, exactly the machinery of the paper's phase
②/③ restricted to the affected region.

The procedure:

1. collect the endpoint vertices of changed edges and their ``hops``-hop
   neighbourhoods (the region whose distances can have changed);
2. sample (affected vertex, random vertex) pairs, labelled on the *new*
   graph;
3. run vertex-level training (coarse levels frozen — the global layout is
   unchanged by local weight edits) with a keep-best rollback.

Returns the updated model's validation trace so callers can decide whether
a full rebuild is warranted (e.g. after massive changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph
from .hierarchical import HierarchicalRNE
from .metrics import error_report
from .sampling import DistanceLabeler, validation_set
from .training import TrainConfig, new_adam_states, train_hierarchical, vertex_only_schedule


@dataclass
class UpdateResult:
    """Validation trace of an incremental update."""

    affected_vertices: int = 0
    error_before: float = 0.0
    error_after: float = 0.0
    round_errors: list[float] = field(default_factory=list)


def affected_region(
    graph: Graph, changed_edges: np.ndarray, *, hops: int = 2
) -> np.ndarray:
    """Vertices within ``hops`` of any changed edge's endpoints."""
    changed_edges = np.asarray(changed_edges, dtype=np.int64).reshape(-1, 2)
    frontier = np.unique(changed_edges.ravel())
    seen = set(int(v) for v in frontier)
    for _ in range(hops):
        nxt = []
        for v in frontier:
            nxt.extend(int(u) for u in graph.neighbors(int(v)))
        frontier = np.array([u for u in set(nxt) if u not in seen], dtype=np.int64)
        seen.update(int(u) for u in frontier)
    return np.array(sorted(seen), dtype=np.int64)


def update_rne(
    hmodel: HierarchicalRNE,
    new_graph: Graph,
    changed_edges: np.ndarray,
    *,
    hops: int = 2,
    samples: int = 8000,
    rounds: int = 3,
    config: TrainConfig | None = None,
    validation_size: int = 1000,
    seed: int | np.random.Generator | None = 0,
) -> UpdateResult:
    """Fine-tune ``hmodel``'s vertex level against ``new_graph`` in place.

    ``new_graph`` must have the same vertex set as the trained graph (the
    usual traffic-update setting: weights change, topology does not —
    closures are modelled as very large weights).
    """
    if new_graph.n != hmodel.n:
        raise ValueError(
            f"new graph has {new_graph.n} vertices, model expects {hmodel.n}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    labeler = DistanceLabeler(new_graph)
    region = affected_region(new_graph, changed_edges, hops=hops)

    val_pairs, val_phi = validation_set(
        new_graph, validation_size, labeler, seed=np.random.default_rng(4242)
    )
    result = UpdateResult(affected_vertices=int(region.size))
    result.error_before = error_report(
        hmodel.query_pairs(val_pairs), val_phi
    ).mean_rel

    if config is None:
        config = TrainConfig(epochs=2, lr=0.01)
    adam = new_adam_states(hmodel)
    schedule = vertex_only_schedule(hmodel.num_levels)

    best_err = result.error_before
    best_vertex = hmodel.locals[-1].copy()
    for _ in range(rounds):
        s = region[rng.integers(region.size, size=samples)]
        t = rng.integers(new_graph.n, size=samples).astype(np.int64)
        pairs = np.column_stack([s, t])
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        phi = labeler.label(pairs)
        ok = np.isfinite(phi)
        train_hierarchical(
            hmodel, pairs[ok], phi[ok], schedule, config, rng, adam_states=adam
        )
        err = error_report(hmodel.query_pairs(val_pairs), val_phi).mean_rel
        result.round_errors.append(err)
        if err < best_err:
            best_err = err
            best_vertex = hmodel.locals[-1].copy()

    if result.round_errors and result.round_errors[-1] > best_err:
        hmodel.locals[-1] = best_vertex
    result.error_after = error_report(
        hmodel.query_pairs(val_pairs), val_phi
    ).mean_rel
    return result
