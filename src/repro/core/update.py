"""Incremental model updates after edge-weight changes.

An extension beyond the paper (its framework supports it directly): road
networks change — congestion, closures, re-opened segments.  Rebuilding the
whole embedding for every change wastes the structure that did not move;
instead, :func:`update_rne` fine-tunes the *vertex level* on pairs sampled
around the changed edges, exactly the machinery of the paper's phase
②/③ restricted to the affected region.

The procedure:

1. collect the endpoint vertices of changed edges and their ``hops``-hop
   neighbourhoods (the region whose distances can have changed);
2. sample exactly ``samples`` (affected vertex, random vertex) pairs per
   round through the budgeted top-up sampler, labelled on the *new* graph
   (optionally over the parallel labeling pool);
3. run vertex-level training (coarse levels frozen — the global layout is
   unchanged by local weight edits) **on a private copy** of the model,
   with per-round divergence rollback and a keep-best policy;
4. publish the winning vertex level back into ``hmodel`` with a single
   reference assignment — atomic under the GIL, so a concurrent reader
   sees either the old or the new embedding, never a torn mix.

Returns the updated model's validation trace plus the exact set of vertex
rows that changed, so the serving layer (see :mod:`repro.live`) can refresh
derived state — tree-index radii, hot-row caches — incrementally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..graph import Graph
from ..reliability.checkpoint import (
    abort_on_nonfinite,
    restore_rng,
    rng_state,
    run_with_recovery,
)
from .hierarchical import HierarchicalRNE
from .metrics import error_report
from .sampling import DistanceLabeler, _budgeted_samples, stage_rng, validation_set
from .training import (
    TrainConfig,
    TrainResult,
    clone_adam_states,
    new_adam_states,
    train_hierarchical,
    vertex_only_schedule,
)


@dataclass
class UpdateResult:
    """Validation trace and change set of an incremental update."""

    affected_vertices: int = 0
    error_before: float = 0.0
    error_after: float = 0.0
    round_errors: list[float] = field(default_factory=list)
    #: Rounds that actually trained (a starved sampler ends early).
    rounds_run: int = 0
    #: Valid labelled pairs delivered per round (== ``samples`` unless the
    #: region structurally cannot supply them).
    samples_per_round: list[int] = field(default_factory=list)
    #: Whether the keep-best policy published a new vertex level.
    published: bool = False
    #: Vertex ids whose global embedding changed (empty when unpublished).
    changed_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    train_seconds: float = 0.0
    #: Labeler counters (SSSP runs, cache hits, worker mode).
    labeling: dict[str, Any] = field(default_factory=dict)
    #: Divergence-recovery notes from the per-round training stages.
    notes: list[str] = field(default_factory=list)


def affected_region(
    graph: Graph, changed_edges: np.ndarray, *, hops: int = 2
) -> np.ndarray:
    """Vertices within ``hops`` of any changed edge's endpoints.

    Vectorised CSR frontier expansion: each hop gathers the concatenated
    neighbour lists of the whole frontier with one fancy-indexed read of
    the adjacency arrays — no per-vertex Python loop on what is the hot
    path of every live update.
    """
    changed_edges = np.asarray(changed_edges, dtype=np.int64).reshape(-1, 2)
    seen = np.zeros(graph.n, dtype=bool)
    frontier = np.unique(changed_edges.ravel())
    seen[frontier] = True
    indptr, indices, _ = graph.csr_arrays()
    for _ in range(hops):  # perf: loop-ok (one vectorised pass per hop)
        if frontier.size == 0:
            break
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        out_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(out_starts, counts)
            + np.repeat(starts, counts)
        )
        neigh = indices[gather]
        frontier = np.unique(neigh[~seen[neigh]])
        seen[frontier] = True
    return np.nonzero(seen)[0]


def update_rne(
    hmodel: HierarchicalRNE,
    new_graph: Graph,
    changed_edges: np.ndarray,
    *,
    hops: int = 2,
    samples: int = 8000,
    rounds: int = 3,
    config: TrainConfig | None = None,
    validation_size: int = 1000,
    seed: int | np.random.Generator | None = 0,
    workers: int | None = None,
    labeler: DistanceLabeler | None = None,
) -> UpdateResult:
    """Fine-tune ``hmodel``'s vertex level against ``new_graph``.

    ``new_graph`` must have the same vertex set as the trained graph (the
    usual traffic-update setting: weights change, topology does not —
    closures are modelled as very large weights).

    Training happens on a private clone; ``hmodel`` is untouched until the
    final publish, which swaps in the best-scoring vertex level with one
    reference assignment (atomic under the GIL).  The keep-best policy
    guarantees ``error_after <= error_before`` on the validation set.

    ``seed`` drives both the per-round sample draws and — via a stage
    stream (:func:`~repro.core.sampling.stage_rng`) — the validation set,
    so two updates with the same seed are bit-identical and different
    seeds validate on different pairs.  ``workers`` fans ground-truth
    labelling over the parallel pool (``None`` defers to REPRO_WORKERS);
    ``labeler`` injects a pre-warmed labeler for ``new_graph`` instead —
    the caller keeps ownership of an injected labeler's lifecycle.
    """
    if new_graph.n != hmodel.n:
        raise ValueError(
            f"new graph has {new_graph.n} vertices, model expects {hmodel.n}"
        )
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = np.random.default_rng(seed)
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        # PR 1 seed-threading rule: derived streams come from the caller's
        # seed, never from a constant (the old hard-coded 4242 stream made
        # every caller validate on the same pairs regardless of seed).
        val_rng = stage_rng(int(seed), "update_validation")
    else:
        val_rng = np.random.default_rng(int(rng.integers(np.iinfo(np.int64).max)))

    owns_labeler = labeler is None
    if labeler is None:
        # Imported lazily: repro.parallel itself imports the core sampling
        # module, so a module-level import here would be cyclic at package
        # initialisation time.
        from ..parallel import make_labeler

        labeler = make_labeler(new_graph, workers=workers)

    train_start = time.perf_counter()
    result = UpdateResult()
    try:
        region = affected_region(new_graph, changed_edges, hops=hops)
        val_pairs, val_phi = validation_set(
            new_graph, validation_size, labeler, seed=val_rng
        )
        result.affected_vertices = int(region.size)
        result.error_before = error_report(
            hmodel.query_pairs(val_pairs), val_phi
        ).mean_rel

        if region.size == 0:
            # Nothing changed — no region to train on, nothing to publish.
            result.error_after = result.error_before
            return result

        train_config = config if config is not None else TrainConfig(epochs=2, lr=0.01)
        scratch = hmodel.clone()
        adam = new_adam_states(scratch)
        schedule = vertex_only_schedule(scratch.num_levels)

        def draw(k: int) -> np.ndarray:
            s = region[rng.integers(region.size, size=k)]
            t = rng.integers(new_graph.n, size=k).astype(np.int64)
            return np.column_stack([s, t])

        def snapshot() -> tuple[Any, ...]:
            return (
                [m.copy() for m in scratch.locals],
                clone_adam_states(adam),
                rng_state(rng),
            )

        def restore(snap: tuple[Any, ...]) -> None:
            mats, states, rstate = snap
            for matrix, saved in zip(scratch.locals, mats):
                matrix[...] = saved
            for cur, saved_state in zip(adam, states):
                cur.m[...] = saved_state.m
                cur.v[...] = saved_state.v
                cur.t = saved_state.t
            restore_rng(rng, rstate)

        best_err = result.error_before
        best_vertex: np.ndarray | None = None
        for round_no in range(rounds):
            # Budgeted top-up draw: self-pairs and unreachable pairs cost a
            # re-draw, not a silent shrink of the round's training set.
            pairs, phi = _budgeted_samples(samples, draw, labeler)
            result.samples_per_round.append(int(pairs.shape[0]))
            if pairs.shape[0] == 0:
                break
            stage = f"update_round_{round_no}"

            def attempt(
                lr_scale: float,
                _pairs: np.ndarray = pairs,
                _phi: np.ndarray = phi,
                _stage: str = stage,
            ) -> TrainResult:
                return train_hierarchical(
                    scratch,
                    _pairs,
                    _phi,
                    schedule,
                    TrainConfig(
                        epochs=train_config.epochs,
                        batch_size=train_config.batch_size,
                        lr=train_config.lr * lr_scale,
                        optimizer=train_config.optimizer,
                        shuffle=train_config.shuffle,
                    ),
                    rng,
                    adam_states=adam,
                    on_epoch=abort_on_nonfinite(_stage),
                )

            outcome = run_with_recovery(attempt, snapshot, restore, stage=stage)
            result.notes.extend(outcome.notes)
            err = error_report(scratch.query_pairs(val_pairs), val_phi).mean_rel
            result.round_errors.append(err)
            result.rounds_run += 1
            if err < best_err:
                best_err = err
                best_vertex = scratch.locals[-1].copy()

        if best_vertex is not None:
            old_vertex = hmodel.locals[-1]
            row_changed = np.any(best_vertex != old_vertex, axis=1)
            if row_changed.any():
                # Atomic publish: one reference assignment under the GIL —
                # readers see the old or the new vertex level, never a mix.
                hmodel.locals[-1] = best_vertex
                result.published = True
                result.changed_rows = np.nonzero(
                    row_changed[hmodel.hierarchy.anc_rows[:, -1]]
                )[0]
        result.error_after = error_report(
            hmodel.query_pairs(val_pairs), val_phi
        ).mean_rel
        return result
    finally:
        try:
            result.labeling = labeler.snapshot()
            result.train_seconds = time.perf_counter() - train_start
        finally:
            if owns_labeler:
                labeler.close()


UpdateHook = Callable[[UpdateResult], None]
