"""RNE core: the paper's contribution — embedding models, training,
sample selection, fine-tuning, metrics and the embedding query index."""

from .analysis import (
    NormProfile,
    collapse_fraction,
    layout_correlation,
    level_contributions,
    norm_profile,
)
from .finetune import FinetuneResult, active_finetune
from .hierarchical import HierarchicalRNE
from .hybrid import CertifiedDistance, HybridEstimator
from .index import EmbeddingTreeIndex
from .metrics import (
    ErrorReport,
    absolute_errors,
    bucketed_errors,
    distance_scale_groups,
    error_cdf,
    error_report,
    f1_score,
    relative_errors,
)
from .model import RNEModel, lp_distance, lp_gradient
from .pipeline import RNE, BuildHistory, RNEConfig, build_rne
from .sampling import (
    DistanceLabeler,
    GridBuckets,
    error_based_samples,
    landmark_samples,
    random_pair_samples,
    subgraph_level_samples,
    validation_set,
)
from .update import UpdateResult, affected_region, update_rne
from .training import (
    TrainConfig,
    TrainResult,
    level_schedule,
    train_flat,
    train_hierarchical,
    vertex_only_schedule,
)

__all__ = [
    "RNE",
    "BuildHistory",
    "CertifiedDistance",
    "DistanceLabeler",
    "HybridEstimator",
    "EmbeddingTreeIndex",
    "ErrorReport",
    "FinetuneResult",
    "GridBuckets",
    "HierarchicalRNE",
    "NormProfile",
    "collapse_fraction",
    "layout_correlation",
    "level_contributions",
    "norm_profile",
    "RNEConfig",
    "RNEModel",
    "TrainConfig",
    "TrainResult",
    "UpdateResult",
    "affected_region",
    "update_rne",
    "absolute_errors",
    "active_finetune",
    "bucketed_errors",
    "build_rne",
    "distance_scale_groups",
    "error_based_samples",
    "error_cdf",
    "error_report",
    "f1_score",
    "landmark_samples",
    "level_schedule",
    "lp_distance",
    "lp_gradient",
    "random_pair_samples",
    "relative_errors",
    "subgraph_level_samples",
    "train_flat",
    "train_hierarchical",
    "validation_set",
    "vertex_only_schedule",
]
