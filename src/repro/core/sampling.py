"""Training-sample selection (Sec. V / Algorithm 2 of the paper).

Three strategies, one per training phase:

* **Sub-graph-level** — choose *cell pairs* uniformly at a given hierarchy
  level, then vertices inside each cell, so the coarse level sees all
  ``|P_l|^2`` relative positions evenly.
* **Landmark-based** — pairs ``(u in U, v in V)`` against a small landmark
  set, giving every vertex stable reference points during vertex-phase
  training.
* **Error-based (grid buckets)** — partition space into ``K x K`` grids,
  bucket all grid pairs by grid-hop distance, and draw extra samples from
  the buckets where the current model's validation error is largest
  (the *active fine-tuning* data source).

Ground-truth labelling is the expensive part: one Dijkstra per distinct
source.  :class:`DistanceLabeler` amortises it by grouping pairs by source
and caching SSSP rows, and every selection strategy funnels its sources
through small per-cell/per-grid pools so the cache actually hits.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..algorithms.dijkstra import sssp_many
from ..graph import Graph, PartitionHierarchy


class DistanceLabeler:
    """Ground-truth shortest-distance oracle with an SSSP row cache.

    ``label(pairs)`` returns exact distances for a ``(k, 2)`` pair array,
    running one SSSP per *distinct uncached source* (scipy's C Dijkstra)
    and caching rows LRU-style.
    """

    def __init__(self, graph: Graph, *, cache_size: int = 4096) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.graph = graph
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._cache_size = cache_size
        self.sssp_runs = 0

    def row(self, source: int) -> np.ndarray:
        """Distance row from ``source`` to every vertex."""
        source = int(source)
        if source in self._cache:
            self._cache.move_to_end(source)
            return self._cache[source]
        row = sssp_many(self.graph, [source])[0]
        self.sssp_runs += 1
        self._cache[source] = row
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return row

    def label(self, pairs: np.ndarray) -> np.ndarray:
        """Exact distances for each ``(source, target)`` pair."""
        pairs = np.asarray(pairs, dtype=np.int64)
        out = np.empty(len(pairs), dtype=np.float64)
        sources, inverse = np.unique(pairs[:, 0], return_inverse=True)
        # Resolve all rows up front (they may outnumber the cache capacity,
        # so the local dict — not the cache — is the source of truth here).
        resolved: dict[int, np.ndarray] = {}
        missing = []
        for s in sources:
            s = int(s)
            if s in self._cache:
                resolved[s] = self._cache[s]
                self._cache.move_to_end(s)
            else:
                missing.append(s)
        if missing:
            rows = sssp_many(self.graph, missing)
            self.sssp_runs += len(missing)
            for s, row in zip(missing, rows):
                resolved[s] = row
                self._cache[s] = row
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        for i, s in enumerate(sources):
            mask = inverse == i
            out[mask] = resolved[int(s)][pairs[mask, 1]]
        return out


def _finite_filter(pairs: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop unreachable pairs (infinite distance) — they cannot be embedded."""
    ok = np.isfinite(phi)
    return pairs[ok], phi[ok]


# ----------------------------------------------------------------------
# Phase 1: sub-graph-level selection
# ----------------------------------------------------------------------
def subgraph_level_samples(
    hierarchy: PartitionHierarchy,
    level: int,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
    *,
    sources_per_cell: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform cell-pair samples at ``level`` (Algorithm 2, lines 1-5).

    Cell pairs are drawn uniformly (probability ``1/|P_l|^2``), then one
    vertex inside each cell.  The source-side vertex comes from a small
    per-cell pool so labelling costs at most ``sources_per_cell * |P_l|``
    SSSP runs regardless of ``count``.
    """
    cells = hierarchy.cells(level)
    pools = [
        rng.choice(cell, size=min(sources_per_cell, cell.size), replace=False)
        for cell in cells
    ]
    ci = rng.integers(len(cells), size=count)
    cj = rng.integers(len(cells), size=count)
    s = np.array([rng.choice(pools[i]) for i in ci], dtype=np.int64)
    t = np.array([rng.choice(cells[j]) for j in cj], dtype=np.int64)
    pairs = np.column_stack([s, t])
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    phi = labeler.label(pairs)
    return _finite_filter(pairs, phi)


# ----------------------------------------------------------------------
# Phase 2: landmark-based selection
# ----------------------------------------------------------------------
def landmark_samples(
    graph: Graph,
    landmarks: np.ndarray,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Pairs ``(u in U, v in V)`` (Algorithm 2, lines 6-8).

    Each sample relates a vertex to a landmark; with ``|U| << |V|`` every
    landmark is hit often enough to pin the reference frame quickly.
    """
    landmarks = np.asarray(landmarks, dtype=np.int64)
    s = landmarks[rng.integers(landmarks.size, size=count)]
    t = rng.integers(graph.n, size=count).astype(np.int64)
    pairs = np.column_stack([s, t])
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    phi = labeler.label(pairs)
    return _finite_filter(pairs, phi)


def random_pair_samples(
    graph: Graph,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
    *,
    source_pool_size: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Near-uniform random pairs with bounded labelling cost.

    Sources come from a fresh uniform pool of ``source_pool_size`` vertices
    (so at most that many SSSP runs); targets are fully uniform.  Used for
    the *Random* baseline of Fig. 12 and for validation sets.
    """
    pool = rng.choice(graph.n, size=min(source_pool_size, graph.n), replace=False)
    s = pool[rng.integers(pool.size, size=count)]
    t = rng.integers(graph.n, size=count).astype(np.int64)
    pairs = np.column_stack([s, t])
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    phi = labeler.label(pairs)
    return _finite_filter(pairs, phi)


def validation_set(
    graph: Graph,
    count: int,
    labeler: DistanceLabeler,
    seed: int | np.random.Generator | None = 12345,
    *,
    source_pool_size: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Held-out labelled pairs for error evaluation."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return random_pair_samples(
        graph, count, labeler, rng, source_pool_size=source_pool_size
    )


# ----------------------------------------------------------------------
# Phase 3: grid buckets + error-based selection
# ----------------------------------------------------------------------
class GridBuckets:
    """``K x K`` spatial grid with grid-pair distance buckets (Sec. V-C).

    Vertex pairs cannot be bucketed by true distance (that would need all
    ``|V|^2`` distances), so the paper buckets *grid pairs* by the number of
    grid steps between them — Manhattan grid distance in ``[0, 2K-2]`` —
    giving ``R = 2K-1`` buckets that approximate distance intervals.

    ``sample(bucket, count)`` draws a grid pair within the bucket with
    probability proportional to ``|g_s| * |g_t|`` (so vertex pairs inside a
    bucket are uniform), then one vertex from each grid.  Source-side
    vertices come from fixed per-grid pools to keep labelling cheap.
    """

    def __init__(
        self,
        graph: Graph,
        k: int = 12,
        *,
        source_pool_size: int = 4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if graph.coords is None:
            raise ValueError("GridBuckets requires vertex coordinates")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.graph = graph
        self.k = int(k)

        coords = graph.coords
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        cell = np.clip(((coords - lo) / span * k).astype(np.int64), 0, k - 1)
        self.vertex_grid = cell[:, 1] * k + cell[:, 0]

        self.grid_vertices: dict[int, np.ndarray] = {}
        for g in np.unique(self.vertex_grid):
            self.grid_vertices[int(g)] = np.nonzero(self.vertex_grid == g)[0]
        self._pools = {
            g: rng.choice(v, size=min(source_pool_size, v.size), replace=False)
            for g, v in self.grid_vertices.items()
        }

        # Enumerate ordered non-empty grid pairs into buckets.
        self.num_buckets = 2 * k - 1
        occupied = np.array(sorted(self.grid_vertices), dtype=np.int64)
        gx = occupied % k
        gy = occupied // k
        self._bucket_pairs: list[np.ndarray] = []
        self._bucket_cumw: list[np.ndarray] = []
        hop = np.abs(gx[:, None] - gx[None, :]) + np.abs(gy[:, None] - gy[None, :])
        sizes = np.array([self.grid_vertices[int(g)].size for g in occupied])
        for b in range(self.num_buckets):
            ii, jj = np.nonzero(hop == b)
            pairs = np.column_stack([occupied[ii], occupied[jj]])
            weights = (sizes[ii] * sizes[jj]).astype(np.float64)
            self._bucket_pairs.append(pairs)
            self._bucket_cumw.append(np.cumsum(weights))

    def bucket_weight(self, bucket: int) -> float:
        """Number of vertex pairs represented by ``bucket``."""
        cumw = self._bucket_cumw[bucket]
        return float(cumw[-1]) if cumw.size else 0.0

    def nonempty_buckets(self) -> np.ndarray:
        """Indices of buckets that contain at least one grid pair."""
        return np.array(
            [b for b in range(self.num_buckets) if self.bucket_weight(b) > 0],
            dtype=np.int64,
        )

    def sample(
        self, bucket: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` vertex pairs from ``bucket`` (may return fewer if
        the bucket holds only degenerate same-vertex pairs)."""
        pairs = self._bucket_pairs[bucket]
        cumw = self._bucket_cumw[bucket]
        if pairs.shape[0] == 0:
            return np.empty((0, 2), dtype=np.int64)
        picks = np.searchsorted(cumw, rng.random(count) * cumw[-1], side="right")
        out = np.empty((count, 2), dtype=np.int64)
        for i, gp in enumerate(picks):
            gs, gt = pairs[gp]
            pool = self._pools[int(gs)]
            out[i, 0] = rng.choice(pool)
            out[i, 1] = rng.choice(self.grid_vertices[int(gt)])
        return out[out[:, 0] != out[:, 1]]

    def bucket_of_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Bucket index of each vertex pair (grid Manhattan hop count)."""
        pairs = np.asarray(pairs, dtype=np.int64)
        gs = self.vertex_grid[pairs[:, 0]]
        gt = self.vertex_grid[pairs[:, 1]]
        dx = np.abs(gs % self.k - gt % self.k)
        dy = np.abs(gs // self.k - gt // self.k)
        return dx + dy


def error_based_samples(
    buckets: GridBuckets,
    bucket_errors: np.ndarray,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
    *,
    mode: str = "global",
) -> tuple[np.ndarray, np.ndarray]:
    """Samples targeted at under-fitting buckets (Algorithm 2, lines 9-17).

    ``mode="local"`` draws everything from the single worst bucket;
    ``mode="global"`` spreads draws proportionally to each bucket's error.
    ``bucket_errors`` must have one (non-negative) entry per bucket; buckets
    with zero weight are ignored.
    """
    bucket_errors = np.asarray(bucket_errors, dtype=np.float64)
    if bucket_errors.shape != (buckets.num_buckets,):
        raise ValueError(
            f"bucket_errors must have shape ({buckets.num_buckets},), "
            f"got {bucket_errors.shape}"
        )
    weights = bucket_errors.copy()
    for b in range(buckets.num_buckets):
        if buckets.bucket_weight(b) == 0:
            weights[b] = 0.0

    if mode == "local":
        counts = np.zeros(buckets.num_buckets, dtype=np.int64)
        counts[int(np.argmax(weights))] = count
    elif mode == "global":
        total = weights.sum()
        if total <= 0:
            weights = np.array(
                [1.0 if buckets.bucket_weight(b) > 0 else 0.0
                 for b in range(buckets.num_buckets)]
            )
            total = weights.sum()
        counts = rng.multinomial(count, weights / total)
    else:
        raise ValueError(f"mode must be 'local' or 'global', got {mode!r}")

    chunks = [
        buckets.sample(b, int(c), rng)
        for b, c in enumerate(counts)
        if c > 0
    ]
    if not chunks:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64)
    pairs = np.vstack(chunks)
    phi = labeler.label(pairs)
    return _finite_filter(pairs, phi)
