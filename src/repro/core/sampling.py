"""Training-sample selection (Sec. V / Algorithm 2 of the paper).

Three strategies, one per training phase:

* **Sub-graph-level** — choose *cell pairs* uniformly at a given hierarchy
  level, then vertices inside each cell, so the coarse level sees all
  ``|P_l|^2`` relative positions evenly.
* **Landmark-based** — pairs ``(u in U, v in V)`` against a small landmark
  set, giving every vertex stable reference points during vertex-phase
  training.
* **Error-based (grid buckets)** — partition space into ``K x K`` grids,
  bucket all grid pairs by grid-hop distance, and draw extra samples from
  the buckets where the current model's validation error is largest
  (the *active fine-tuning* data source).

Every selection function delivers **exactly** the requested number of
labelled pairs whenever the graph can supply them: candidates lost to the
self-pair filter or to unreachable (infinite-distance) endpoints are
re-drawn from the same seeded stream under a bounded retry budget, so the
per-phase sample budgets of ``build_rne`` are honoured rather than silently
shrunk.

Ground-truth labelling is the expensive part: one Dijkstra per distinct
source.  :class:`DistanceLabeler` amortises it by grouping pairs by source
and caching SSSP rows, and every selection strategy funnels its sources
through small per-cell/per-grid pools so the cache actually hits.  The
labeler exposes a ``_sssp_rows`` hook so
:class:`repro.parallel.ParallelDistanceLabeler` can fan the SSSP runs over
a worker pool while inheriting the cache and accounting unchanged.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Dict, Sequence

import numpy as np

from ..algorithms.dijkstra import sssp_many
from ..graph import Graph, PartitionHierarchy

def stage_rng(seed: int, stage: str) -> np.random.Generator:
    """Independent sample stream for ``stage``, derived statelessly from the
    run seed.

    Decoupling sample generation from the main training RNG is what makes
    the prefetching pipeline deterministic: a stage's samples are identical
    whether they are drawn eagerly on the background thread, lazily on the
    caller thread, or re-derived by a resumed run — the stream depends only
    on ``(seed, stage name)``, never on when the draw happens.  Incremental
    updates reuse the same convention so their validation sets honour the
    caller's seed (see :mod:`repro.core.update`).
    """
    return np.random.default_rng([seed, zlib.crc32(stage.encode("utf-8"))])


#: Upper bound on re-draw rounds when topping up a sample budget.  Each
#: round re-draws only the deficit, so even a graph where most pairs are
#: invalid (disconnected components) converges geometrically; the bound
#: exists so a bucket that can *only* produce degenerate pairs terminates.
_MAX_RESAMPLE_ROUNDS = 64


class DistanceLabeler:
    """Ground-truth shortest-distance oracle with an SSSP row cache.

    ``label(pairs)`` returns exact distances for a ``(k, 2)`` pair array,
    running one SSSP per *distinct uncached source* (scipy's C Dijkstra)
    and caching rows LRU-style.  Counters (``sssp_runs``, ``cache_hits``,
    ``pairs_labelled``, ``label_seconds``) follow the serving-stats
    convention and are surfaced via :meth:`snapshot`.
    """

    def __init__(self, graph: Graph, *, cache_size: int = 4096) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.graph = graph
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._cache_size = cache_size
        self.sssp_runs = 0
        self.cache_hits = 0
        self.pairs_labelled = 0
        self.label_seconds = 0.0

    # -- SSSP backend ----------------------------------------------------
    def _sssp_rows(self, sources: Sequence[int]) -> np.ndarray:
        """Distance rows for ``sources`` — the hook a parallel labeler
        overrides; the serial path delegates to scipy's C Dijkstra."""
        return sssp_many(self.graph, list(sources))

    def close(self) -> None:
        """Release labelling resources (no-op for the serial labeler)."""

    def __enter__(self) -> "DistanceLabeler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- cache plumbing --------------------------------------------------
    def _store(self, source: int, row: np.ndarray) -> None:
        self._cache[source] = row
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def row(self, source: int) -> np.ndarray:
        """Distance row from ``source`` to every vertex."""
        source = int(source)
        if source in self._cache:
            self._cache.move_to_end(source)
            self.cache_hits += 1
            return self._cache[source]
        row = self._sssp_rows([source])[0]
        self.sssp_runs += 1
        self._store(source, row)
        return row

    def label(self, pairs: np.ndarray) -> np.ndarray:
        """Exact distances for each ``(source, target)`` pair.

        The gather is vectorised: pairs are grouped by distinct source via
        one argsort, then each group is filled with a single fancy-indexed
        read of its SSSP row — O(k log k) total instead of the former
        O(#sources * k) per-source boolean masking.
        """
        start = time.perf_counter()
        pairs = np.asarray(pairs, dtype=np.int64)
        out = np.empty(len(pairs), dtype=np.float64)
        if len(pairs) == 0:
            return out
        sources, inverse = np.unique(pairs[:, 0], return_inverse=True)
        # Resolve all rows up front (they may outnumber the cache capacity,
        # so the local dict — not the cache — is the source of truth here).
        resolved: Dict[int, np.ndarray] = {}
        missing: list[int] = []
        for s in sources:  # perf: loop-ok (bounded by distinct sources)
            s = int(s)
            if s in self._cache:
                resolved[s] = self._cache[s]
                self._cache.move_to_end(s)
                self.cache_hits += 1
            else:
                missing.append(s)
        if missing:
            rows = self._sssp_rows(missing)
            self.sssp_runs += len(missing)
            for s, row in zip(missing, rows):  # perf: loop-ok (per source)
                resolved[s] = row
                self._store(s, row)
        order = np.argsort(inverse, kind="stable")
        targets = pairs[:, 1]
        bounds = np.searchsorted(inverse[order], np.arange(sources.size + 1))
        for i in range(sources.size):  # perf: loop-ok (one gather per source)
            idx = order[bounds[i] : bounds[i + 1]]
            out[idx] = resolved[int(sources[i])][targets[idx]]
        self.pairs_labelled += len(pairs)
        self.label_seconds += time.perf_counter() - start
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe counters, mirroring ``ServingStats`` conventions."""
        return {
            "mode": "serial",
            "sssp_runs": self.sssp_runs,
            "cache_hits": self.cache_hits,
            "pairs_labelled": self.pairs_labelled,
            "label_seconds": self.label_seconds,
            "cache_entries": len(self._cache),
            "cache_capacity": self._cache_size,
        }


class _RaggedRows:
    """Concatenated ragged integer rows with vectorised per-row draws.

    Replaces per-element ``rng.choice`` Python loops: ``draw(idx, rng)``
    picks one uniform member from each row in ``idx`` with two array ops.
    """

    def __init__(self, rows: Sequence[np.ndarray]) -> None:
        if not rows:
            raise ValueError("need at least one row")
        self.sizes = np.array([row.size for row in rows], dtype=np.int64)
        if np.any(self.sizes == 0):
            raise ValueError("rows must be non-empty")
        self.offsets = np.zeros(len(rows), dtype=np.int64)
        np.cumsum(self.sizes[:-1], out=self.offsets[1:])
        self.flat = np.concatenate([np.asarray(r) for r in rows]).astype(np.int64)

    def draw(self, idx: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One uniform member per row index in ``idx`` (vectorised)."""
        return self.flat[self.offsets[idx] + rng.integers(self.sizes[idx])]


def _budgeted_samples(
    count: int,
    draw: Callable[[int], np.ndarray],
    labeler: DistanceLabeler,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw, label and filter until exactly ``count`` valid pairs exist.

    ``draw(k)`` produces ``(k, 2)`` candidate pairs; self-pairs and
    unreachable pairs are dropped and only the *deficit* is re-drawn, so
    the expected extra labelling work is proportional to the invalid-pair
    rate.  Bounded by :data:`_MAX_RESAMPLE_ROUNDS` rounds — a graph that
    cannot supply ``count`` valid pairs returns what it has.
    """
    pair_chunks: list[np.ndarray] = []
    phi_chunks: list[np.ndarray] = []
    have = 0
    for _ in range(_MAX_RESAMPLE_ROUNDS):  # perf: loop-ok (bounded top-up)
        need = count - have
        if need <= 0:
            break
        cand = np.asarray(draw(need), dtype=np.int64)
        if cand.shape[0] == 0:
            break  # the strategy has nothing left to offer
        cand = cand[cand[:, 0] != cand[:, 1]]
        if cand.shape[0] == 0:
            continue
        phi = labeler.label(cand)
        ok = np.isfinite(phi)
        if ok.any():
            pair_chunks.append(cand[ok])
            phi_chunks.append(phi[ok])
            have += int(ok.sum())
    if not pair_chunks:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64)
    pairs = np.vstack(pair_chunks)[:count]
    phi = np.concatenate(phi_chunks)[:count]
    return pairs, phi


# ----------------------------------------------------------------------
# Phase 1: sub-graph-level selection
# ----------------------------------------------------------------------
def subgraph_level_samples(
    hierarchy: PartitionHierarchy,
    level: int,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
    *,
    sources_per_cell: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly ``count`` uniform cell-pair samples at ``level``
    (Algorithm 2, lines 1-5).

    Cell pairs are drawn uniformly (probability ``1/|P_l|^2``), then one
    vertex inside each cell.  The source-side vertex comes from a small
    per-cell pool so labelling costs at most ``sources_per_cell * |P_l|``
    SSSP runs regardless of ``count``; dropped candidates (self-pairs,
    unreachable pairs) are re-drawn from the same pools.
    """
    cells = hierarchy.cells(level)
    pools = _RaggedRows(
        [
            rng.choice(cell, size=min(sources_per_cell, cell.size), replace=False)
            for cell in cells
        ]
    )
    members = _RaggedRows(list(cells))

    def draw(k: int) -> np.ndarray:
        ci = rng.integers(len(cells), size=k)
        cj = rng.integers(len(cells), size=k)
        s = pools.draw(ci, rng)
        t = members.draw(cj, rng)
        return np.column_stack([s, t])

    return _budgeted_samples(count, draw, labeler)


# ----------------------------------------------------------------------
# Phase 2: landmark-based selection
# ----------------------------------------------------------------------
def landmark_samples(
    graph: Graph,
    landmarks: np.ndarray,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly ``count`` pairs ``(u in U, v in V)`` (Algorithm 2, lines 6-8).

    Each sample relates a vertex to a landmark; with ``|U| << |V|`` every
    landmark is hit often enough to pin the reference frame quickly.
    """
    landmarks = np.asarray(landmarks, dtype=np.int64)

    def draw(k: int) -> np.ndarray:
        s = landmarks[rng.integers(landmarks.size, size=k)]
        t = rng.integers(graph.n, size=k).astype(np.int64)
        return np.column_stack([s, t])

    return _budgeted_samples(count, draw, labeler)


def random_pair_samples(
    graph: Graph,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
    *,
    source_pool_size: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly ``count`` near-uniform random pairs with bounded labelling.

    Sources come from a fresh uniform pool of ``source_pool_size`` vertices
    (so at most that many SSSP runs); targets are fully uniform.  Used for
    the *Random* baseline of Fig. 12 and for validation sets.
    """
    pool = rng.choice(graph.n, size=min(source_pool_size, graph.n), replace=False)

    def draw(k: int) -> np.ndarray:
        s = pool[rng.integers(pool.size, size=k)]
        t = rng.integers(graph.n, size=k).astype(np.int64)
        return np.column_stack([s, t])

    return _budgeted_samples(count, draw, labeler)


def validation_set(
    graph: Graph,
    count: int,
    labeler: DistanceLabeler,
    seed: int | np.random.Generator | None = 12345,
    *,
    source_pool_size: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Held-out labelled pairs for error evaluation."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return random_pair_samples(
        graph, count, labeler, rng, source_pool_size=source_pool_size
    )


# ----------------------------------------------------------------------
# Phase 3: grid buckets + error-based selection
# ----------------------------------------------------------------------
class GridBuckets:
    """``K x K`` spatial grid with grid-pair distance buckets (Sec. V-C).

    Vertex pairs cannot be bucketed by true distance (that would need all
    ``|V|^2`` distances), so the paper buckets *grid pairs* by the number of
    grid steps between them — Manhattan grid distance in ``[0, 2K-2]`` —
    giving ``R = 2K-1`` buckets that approximate distance intervals.

    ``sample(bucket, count)`` draws a grid pair within the bucket with
    probability proportional to ``|g_s| * |g_t|`` (so vertex pairs inside a
    bucket are uniform), then one vertex from each grid.  Source-side
    vertices come from fixed per-grid pools to keep labelling cheap.
    """

    def __init__(
        self,
        graph: Graph,
        k: int = 12,
        *,
        source_pool_size: int = 4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if graph.coords is None:
            raise ValueError("GridBuckets requires vertex coordinates")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.graph = graph
        self.k = int(k)

        coords = graph.coords
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        cell = np.clip(((coords - lo) / span * k).astype(np.int64), 0, k - 1)
        self.vertex_grid = cell[:, 1] * k + cell[:, 0]

        self.grid_vertices: dict[int, np.ndarray] = {}
        for g in np.unique(self.vertex_grid):
            self.grid_vertices[int(g)] = np.nonzero(self.vertex_grid == g)[0]
        self._pools = {
            g: rng.choice(v, size=min(source_pool_size, v.size), replace=False)
            for g, v in self.grid_vertices.items()
        }

        # Enumerate ordered non-empty grid pairs into buckets.
        self.num_buckets = 2 * k - 1
        occupied = np.array(sorted(self.grid_vertices), dtype=np.int64)
        gx = occupied % k
        gy = occupied // k
        # Flattened per-grid member / source-pool rows (occupied order) so
        # sample() can draw vertices with vectorised fancy indexing instead
        # of a per-element rng.choice loop.
        self._grid_index = np.full(k * k, -1, dtype=np.int64)
        self._grid_index[occupied] = np.arange(occupied.size, dtype=np.int64)
        member_sizes = np.array(
            [self.grid_vertices[int(g)].size for g in occupied], dtype=np.int64
        )
        self._members = _RaggedRows([self.grid_vertices[int(g)] for g in occupied])
        self._source_pools = _RaggedRows([self._pools[int(g)] for g in occupied])
        self._bucket_pairs: list[np.ndarray] = []
        self._bucket_cumw: list[np.ndarray] = []
        self._bucket_productive: list[bool] = []
        hop = np.abs(gx[:, None] - gx[None, :]) + np.abs(gy[:, None] - gy[None, :])
        sizes = member_sizes
        for b in range(self.num_buckets):  # perf: loop-ok (O(buckets) setup)
            ii, jj = np.nonzero(hop == b)
            pairs = np.column_stack([occupied[ii], occupied[jj]])
            weights = (sizes[ii] * sizes[jj]).astype(np.float64)
            self._bucket_pairs.append(pairs)
            self._bucket_cumw.append(np.cumsum(weights))
            # A grid pair can yield a non-degenerate vertex pair unless it is
            # a same-grid pair over a single-vertex grid.
            self._bucket_productive.append(
                bool(np.any((ii != jj) | (sizes[ii] > 1)))
            )

    def bucket_weight(self, bucket: int) -> float:
        """Number of vertex pairs represented by ``bucket``."""
        cumw = self._bucket_cumw[bucket]
        return float(cumw[-1]) if cumw.size else 0.0

    def nonempty_buckets(self) -> np.ndarray:
        """Indices of buckets that contain at least one grid pair."""
        return np.array(
            [b for b in range(self.num_buckets) if self.bucket_weight(b) > 0],
            dtype=np.int64,
        )

    def sample(
        self, bucket: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw exactly ``count`` vertex pairs from ``bucket``.

        Self-pair rejects are re-drawn under a bounded retry budget, so the
        full count is delivered unless the bucket holds only degenerate
        same-vertex grid pairs (then it returns what exists — possibly
        nothing).
        """
        pairs = self._bucket_pairs[bucket]
        cumw = self._bucket_cumw[bucket]
        if pairs.shape[0] == 0 or count <= 0 or not self._bucket_productive[bucket]:
            return np.empty((0, 2), dtype=np.int64)
        chunks: list[np.ndarray] = []
        have = 0
        for _ in range(_MAX_RESAMPLE_ROUNDS):  # perf: loop-ok (bounded top-up)
            need = count - have
            if need <= 0:
                break
            picks = np.searchsorted(cumw, rng.random(need) * cumw[-1], side="right")
            gi = self._grid_index[pairs[picks, 0]]
            gj = self._grid_index[pairs[picks, 1]]
            s = self._source_pools.draw(gi, rng)
            t = self._members.draw(gj, rng)
            keep = s != t
            if keep.any():
                chunks.append(np.column_stack([s[keep], t[keep]]))
                have += int(keep.sum())
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        return np.vstack(chunks)[:count]

    def bucket_of_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Bucket index of each vertex pair (grid Manhattan hop count)."""
        pairs = np.asarray(pairs, dtype=np.int64)
        gs = self.vertex_grid[pairs[:, 0]]
        gt = self.vertex_grid[pairs[:, 1]]
        dx = np.abs(gs % self.k - gt % self.k)
        dy = np.abs(gs // self.k - gt // self.k)
        return dx + dy


def error_based_samples(
    buckets: GridBuckets,
    bucket_errors: np.ndarray,
    count: int,
    labeler: DistanceLabeler,
    rng: np.random.Generator,
    *,
    mode: str = "global",
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly ``count`` samples targeted at under-fitting buckets
    (Algorithm 2, lines 9-17).

    ``mode="local"`` draws everything from the single worst bucket;
    ``mode="global"`` spreads draws proportionally to each bucket's error.
    ``bucket_errors`` must have one (non-negative) entry per bucket; buckets
    with zero weight are ignored.  Pairs lost to the self-pair or
    unreachable filters are re-drawn (bounded retries); a bucket that
    structurally cannot fill its share is dropped from subsequent rounds so
    the remaining budget flows to the buckets that can.
    """
    bucket_errors = np.asarray(bucket_errors, dtype=np.float64)
    if bucket_errors.shape != (buckets.num_buckets,):
        raise ValueError(
            f"bucket_errors must have shape ({buckets.num_buckets},), "
            f"got {bucket_errors.shape}"
        )
    if mode not in ("local", "global"):
        raise ValueError(f"mode must be 'local' or 'global', got {mode!r}")
    usable = np.array(
        [1.0 if buckets.bucket_weight(b) > 0 else 0.0
         for b in range(buckets.num_buckets)]
    )
    weights = bucket_errors * usable

    if mode == "local":
        w = np.zeros(buckets.num_buckets, dtype=np.float64)
        w[int(np.argmax(weights))] = 1.0
    else:
        w = weights.copy()
        if w.sum() <= 0:
            w = usable.copy()

    pair_chunks: list[np.ndarray] = []
    phi_chunks: list[np.ndarray] = []
    have = 0
    for _ in range(_MAX_RESAMPLE_ROUNDS):  # perf: loop-ok (bounded top-up)
        need = count - have
        total = w.sum()
        if need <= 0 or total <= 0:
            break
        counts = rng.multinomial(need, w / total)
        drawn: list[np.ndarray] = []
        for b, c in enumerate(counts):  # perf: loop-ok (bounded by #buckets)
            if c == 0:
                continue
            got = buckets.sample(b, int(c), rng)
            if got.shape[0] < int(c):
                w[b] = 0.0  # bucket cannot fill its share; stop asking
            if got.shape[0]:
                drawn.append(got)
        if not drawn:
            continue
        cand = np.vstack(drawn)
        phi = labeler.label(cand)
        ok = np.isfinite(phi)
        if ok.any():
            pair_chunks.append(cand[ok])
            phi_chunks.append(phi[ok])
            have += int(ok.sum())
    if not pair_chunks:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64)
    return np.vstack(pair_chunks)[:count], np.concatenate(phi_chunks)[:count]
