"""Hierarchical RNE model (Sec. IV of the paper).

Every node of the partition hierarchy — sub-graph cells and, at the last
level, the vertices themselves — owns a *local* embedding representing its
position among its siblings.  A vertex's *global* embedding is the sum of
the local embeddings along its ancestor chain::

    v_global = sum_l  M_l[ anc_rows[v, l] ]

The sum structure shares parameters across all vertices of a cell: coarse
levels carry the large-norm, region-scale components once for all their
descendants, which is why hierarchical training converges faster and to a
better optimum than the flat table (reproduced in Fig. 11).
"""

from __future__ import annotations

import numpy as np

from ..devtools.contracts import shapes
from ..graph import PartitionHierarchy
from .model import RNEModel, lp_distance


class HierarchicalRNE:
    """Per-level local embedding matrices over a partition hierarchy.

    Parameters
    ----------
    hierarchy:
        The aligned partition tree.
    d:
        Embedding dimension.
    p:
        Metric order for queries (1 recommended).
    init_scale:
        Standard deviation of the random-normal initialisation.  Levels are
        initialised with geometrically decaying scale — coarse levels carry
        larger norms, matching the model's intended norm hierarchy.
    """

    def __init__(
        self,
        hierarchy: PartitionHierarchy,
        d: int,
        *,
        p: float = 1.0,
        init_scale: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.hierarchy = hierarchy
        self.d = int(d)
        self.p = float(p)
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.locals: list[np.ndarray] = []
        scale = init_scale
        for level in range(hierarchy.num_levels):
            size = hierarchy.level_size(level)
            self.locals.append(rng.normal(scale=scale, size=(size, self.d)))
            scale *= 0.5

    @property
    def num_levels(self) -> int:
        return len(self.locals)

    @property
    def n(self) -> int:
        return self.hierarchy.graph.n

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @shapes(vertices="(k,):int", ret="(k,d):float")
    def global_vectors(self, vertices: np.ndarray) -> np.ndarray:
        """Global embeddings for an array of vertex ids (ancestor sums)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        rows = self.hierarchy.anc_rows[vertices]
        out = np.zeros((vertices.size, self.d), dtype=np.float64)
        for level, matrix in enumerate(self.locals):
            out += matrix[rows[:, level]]
        return out

    def global_matrix(self) -> np.ndarray:
        """Full ``(n, d)`` global embedding matrix."""
        return self.global_vectors(np.arange(self.n))

    def node_vector(self, node_id: int) -> np.ndarray:
        """Global embedding of an arbitrary hierarchy node.

        Sum of the node's own local embedding and its ancestors' — used by
        the tree-structured query index (Sec. VI).
        """
        vec = np.zeros(self.d, dtype=np.float64)
        cursor: int | None = node_id
        while cursor is not None:
            node = self.hierarchy.nodes[cursor]
            vec += self.locals[node.level][node.row]
            cursor = node.parent
        return vec

    # ------------------------------------------------------------------
    # queries (delegate through the assembled vectors)
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        vecs = self.global_vectors(np.array([s, t]))
        return float(lp_distance(vecs[0] - vecs[1], self.p))

    @shapes(pairs="(k,2):int", ret="(k,):float")
    def query_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        vs = self.global_vectors(pairs[:, 0])
        vt = self.global_vectors(pairs[:, 1])
        return lp_distance(vs - vt, self.p)

    def to_model(self) -> RNEModel:
        """Freeze into a flat :class:`RNEModel` for O(d) lookup queries.

        This is line 12-13 of Algorithm 1: after training, the hierarchy is
        collapsed to one global matrix, so query cost is identical to the
        flat model's.
        """
        return RNEModel(self.global_matrix(), p=self.p)

    def clone(self) -> "HierarchicalRNE":
        """Copy with independent local matrices but a shared hierarchy.

        Used by ablations that branch several training arms from one
        partially trained state.
        """
        other = object.__new__(HierarchicalRNE)
        other.hierarchy = self.hierarchy
        other.d = self.d
        other.p = self.p
        other.locals = [m.copy() for m in self.locals]
        return other

    def parameter_norm(self, p: float | None = None) -> float:
        """Sum of entrywise Lp norms of the local matrices.

        The paper argues this total is *smaller* than the flat model's
        ``||M||_p`` because coarse components are stored once per cell.
        """
        if p is None:
            p = self.p
        total = 0.0
        for matrix in self.locals:
            total += float(np.power(np.abs(matrix), p).sum() ** (1.0 / p))
        return total

    def index_bytes(self) -> int:
        """Memory of the *frozen* query artefact (the global matrix)."""
        return self.n * self.d * 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = "+".join(str(m.shape[0]) for m in self.locals)
        return f"HierarchicalRNE(levels={sizes}, d={self.d}, p={self.p})"
