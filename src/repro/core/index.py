"""Tree-structured embedding index for range and kNN queries (Sec. VI).

The partition tree is reused as a metric index over the *embedding* space:
every tree node stores a centre vector and a radius — the maximum Lp
distance from the centre to any member vertex's embedding — so that

    Lp(q, centre) - radius

is a valid lower bound on the embedding distance from the query to every
vertex under the node (triangle inequality).  Range queries prune nodes
whose bound exceeds the threshold; kNN queries expand nodes best-first from
a min-priority queue, exactly as Algorithm "Range/kNN" in the paper.

Results are exact with respect to *embedding* distances; their accuracy
against true network distances (F1 in Fig. 16) is the model's accuracy.

Result-ordering contract (shared with :mod:`repro.algorithms.knn` and
:mod:`repro.serving`):

* **kNN** returns targets in ascending ``(distance, vertex id)`` order —
  ties on distance break towards the smaller id — and silently returns
  ``min(k, #unique targets)`` results when the target set is smaller
  than ``k``.
* **Range** returns the matching targets as ascending sorted vertex ids.
* Target sets are treated as *sets*: duplicate ids contribute one result.

Repeated queries against the same target set should build a
:class:`PreparedTargets` once via :meth:`EmbeddingTreeIndex.prepare` and
call the ``*_prepared`` entry points; the one-shot ``range_query`` /
``knn_query`` wrappers rebuild the (O(n)) target mask on every call.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..devtools.contracts import shapes
from ..graph import PartitionHierarchy
from .model import lp_distance

#: Monotonic token source for cache-keying PreparedTargets instances.
_PREPARED_TOKENS = itertools.count()

#: Heap-entry kinds for best-first kNN.  Nodes sort *before* vertices at
#: equal keys: a node whose lower bound equals a candidate's distance may
#: still contain an equal-distance vertex with a smaller id, which the
#: ordering contract must surface first.
_NODE, _VERTEX = 0, 1


@dataclass(frozen=True)
class PreparedTargets:
    """A target set preprocessed for repeated range/kNN queries.

    Holds everything that previously had to be recomputed per query: the
    O(n) boolean membership mask, the deduplicated sorted id array, and —
    when built by an :class:`EmbeddingTreeIndex` — the per-leaf member
    lists plus a per-tree-node "subtree contains a target" flag used to
    prune traversal.

    Instances are immutable and carry a unique ``token`` so serving-layer
    caches can key cached rows by (target set, source).
    """

    n: int
    ids: np.ndarray
    mask: np.ndarray
    token: int
    #: Node ids of leaf cells containing at least one target (tree only).
    leaf_ids: Optional[np.ndarray] = None
    #: Concatenated per-leaf member ids, ascending within each leaf.
    member_flat: Optional[np.ndarray] = None
    #: ``member_offsets[j]:member_offsets[j+1]`` slices ``member_flat``
    #: for ``leaf_ids[j]``.
    member_offsets: Optional[np.ndarray] = None
    #: Per-node flag over *all* tree node ids: subtree holds >= 1 target.
    node_active: Optional[np.ndarray] = None
    #: Per-node position into ``leaf_ids`` (-1 for non-member-leaf nodes).
    leaf_pos: Optional[np.ndarray] = None

    @classmethod
    def flat(cls, n: int, targets: np.ndarray) -> "PreparedTargets":
        """Prepare a target set without tree structure (mask + ids only)."""
        ids = np.unique(np.asarray(targets, dtype=np.int64))
        if ids.size and (ids[0] < 0 or ids[-1] >= n):
            raise ValueError(
                f"target ids must be in [0, {n}), got range "
                f"[{ids[0]}, {ids[-1]}]"
            )
        mask = np.zeros(n, dtype=bool)
        mask[ids] = True
        return cls(n=n, ids=ids, mask=mask, token=next(_PREPARED_TOKENS))

    @property
    def m(self) -> int:
        """Number of distinct targets."""
        return int(self.ids.size)

    @property
    def has_tree(self) -> bool:
        """Whether per-leaf member lists are available."""
        return self.leaf_ids is not None

    def members_of(self, leaf_index: int) -> np.ndarray:
        """Target ids inside leaf ``leaf_ids[leaf_index]`` (ascending)."""
        if self.member_flat is None or self.member_offsets is None:
            raise ValueError("PreparedTargets was built without tree structure")
        start = int(self.member_offsets[leaf_index])
        end = int(self.member_offsets[leaf_index + 1])
        return self.member_flat[start:end]


class EmbeddingTreeIndex:
    """Range/kNN index over a trained embedding and its partition tree.

    Parameters
    ----------
    hierarchy:
        The partition tree (any aligned hierarchy over the same graph).
    matrix:
        ``(n, d)`` vertex embedding matrix (global embeddings).
    p:
        Metric order matching the trained model.
    """

    def __init__(
        self,
        hierarchy: PartitionHierarchy,
        matrix: np.ndarray,
        p: float = 1.0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != hierarchy.graph.n:
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows for a graph of "
                f"{hierarchy.graph.n} vertices"
            )
        self.hierarchy = hierarchy
        self.matrix = matrix
        self.p = float(p)
        # Leaf cells are the last *sub-graph* level; per-vertex tree nodes
        # are skipped in traversal (vertices are enumerated from leaf cells).
        self._leaf_level = hierarchy.num_subgraph_levels - 1
        num_nodes = len(hierarchy.nodes)
        d = matrix.shape[1]
        # Dense per-node-id arrays so the serving engine can compute bounds
        # for whole (source, node) frontiers in single numpy passes.
        self.node_centres = np.zeros((num_nodes, d), dtype=np.float64)
        self.node_radii = np.zeros(num_nodes, dtype=np.float64)
        self._centres: dict[int, np.ndarray] = {}
        self._radii: dict[int, float] = {}
        child_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        child_chunks: List[np.ndarray] = []
        # perf: loop-ok (index build is O(#tree nodes), not O(n) per query)
        for node in hierarchy.nodes:
            if node.level > self._leaf_level:
                continue
            self._recompute_node(node.id)
            if node.level < self._leaf_level:
                child_offsets[node.id + 1] = len(node.children)
                child_chunks.append(np.asarray(node.children, dtype=np.int64))
        np.cumsum(child_offsets, out=child_offsets)
        self.child_offsets = child_offsets
        self.child_flat = (
            np.concatenate(child_chunks)
            if child_chunks
            else np.empty(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    def _recompute_node(self, node_id: int) -> None:
        """(Re)derive one node's centre/radius from the current matrix.

        Shared by the constructor and :meth:`refresh_rows` so an
        incremental refresh is bit-identical to a full rebuild by
        construction — both run exactly this code on the same inputs.
        """
        node = self.hierarchy.nodes[node_id]
        members = self.matrix[node.vertices]
        centre = members.mean(axis=0)
        self.node_centres[node_id] = centre
        self.node_radii[node_id] = float(lp_distance(members - centre, self.p).max())
        self._centres[node_id] = self.node_centres[node_id]
        self._radii[node_id] = float(self.node_radii[node_id])

    @shapes(changed_vertices="(k,):int")
    def refresh_rows(self, matrix: np.ndarray, changed_vertices: np.ndarray) -> int:
        """Adopt an updated embedding matrix, recomputing only stale nodes.

        ``changed_vertices`` are the vertex ids whose rows differ from the
        matrix this index currently serves (a live update's
        ``UpdateResult.changed_rows``).  Every tree node whose subtree
        contains one of them gets its centre and radius recomputed from the
        new matrix; all other nodes are untouched — their member rows did
        not move, so their cached geometry is still exact, which keeps the
        refresh O(changed subtrees) instead of O(tree).

        Returns the number of nodes recomputed.  The caller promises the
        unchanged rows really are bit-equal between old and new matrix;
        under that contract the result is bit-identical to building a fresh
        index from ``matrix`` (tested in ``tests/live``).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != self.matrix.shape:
            raise ValueError(
                f"replacement matrix has shape {matrix.shape}, "
                f"index was built for {self.matrix.shape}"
            )
        changed = np.unique(np.asarray(changed_vertices, dtype=np.int64))
        if changed.size and (changed[0] < 0 or changed[-1] >= matrix.shape[0]):
            raise ValueError(
                f"changed vertex ids must be in [0, {matrix.shape[0]}), got "
                f"range [{changed[0]}, {changed[-1]}]"
            )
        self.matrix = matrix
        if changed.size == 0:
            return 0
        anc = self.hierarchy.anc_rows
        refreshed = 0
        # perf: loop-ok (one vectorised row-lookup per level; the inner
        # recompute loop is bounded by the number of *stale* nodes)
        for level in range(self._leaf_level + 1):
            level_ids = np.asarray(self.hierarchy.levels[level], dtype=np.int64)
            stale_rows = np.unique(anc[changed, level])
            for node_id in level_ids[stale_rows]:
                self._recompute_node(int(node_id))
            refreshed += int(stale_rows.size)
        return refreshed

    # ------------------------------------------------------------------
    def _bound(self, q: np.ndarray, node_id: int) -> float:
        """Lower bound on embedding distance from ``q`` to the node's members."""
        d = float(lp_distance(q - self.node_centres[node_id], self.p))
        return max(d - float(self.node_radii[node_id]), 0.0)

    def _roots(self) -> list[int]:
        return self.hierarchy.root_ids()

    def _child_cells(self, node_id: int) -> list[int]:
        return self.hierarchy.nodes[node_id].children

    @property
    def leaf_level(self) -> int:
        """Tree level of the leaf cells traversal stops at."""
        return self._leaf_level

    # ------------------------------------------------------------------
    @shapes(targets="(k,):int")
    def prepare(self, targets: np.ndarray) -> PreparedTargets:
        """Preprocess a target set for repeated queries.

        Computes, once: the deduplicated id array, the O(n) membership
        mask, per-leaf member lists (ascending ids within each leaf) and
        the per-node subtree-activity flags that let traversal skip whole
        subtrees containing no targets.
        """
        base = PreparedTargets.flat(self.hierarchy.graph.n, targets)
        ids = base.ids
        anc = self.hierarchy.anc_rows
        num_nodes = len(self.hierarchy.nodes)
        node_active = np.zeros(num_nodes, dtype=bool)
        # perf: loop-ok (one pass per tree level, each fully vectorised)
        for level in range(self._leaf_level + 1):
            level_ids = np.asarray(self.hierarchy.levels[level], dtype=np.int64)
            active_rows = np.unique(anc[ids, level])
            node_active[level_ids[active_rows]] = True
        leaf_rows = anc[ids, self._leaf_level] if ids.size else ids
        order = np.argsort(leaf_rows, kind="stable")
        member_flat = ids[order]
        uniq_rows, starts = np.unique(leaf_rows[order], return_index=True)
        member_offsets = np.append(starts, member_flat.size).astype(np.int64)
        leaf_level_ids = np.asarray(
            self.hierarchy.levels[self._leaf_level], dtype=np.int64
        )
        leaf_ids = leaf_level_ids[uniq_rows]
        leaf_pos = np.full(num_nodes, -1, dtype=np.int64)
        leaf_pos[leaf_ids] = np.arange(leaf_ids.size, dtype=np.int64)
        return PreparedTargets(
            n=base.n,
            ids=ids,
            mask=base.mask,
            token=base.token,
            leaf_ids=leaf_ids,
            member_flat=member_flat,
            member_offsets=member_offsets,
            node_active=node_active,
            leaf_pos=leaf_pos,
        )

    # ------------------------------------------------------------------
    @shapes(targets="(k,):int")
    def range_query(
        self,
        source: int,
        targets: np.ndarray,
        tau: float,
    ) -> np.ndarray:
        """All targets within embedding distance ``tau`` of ``source``.

        ``targets`` restricts the candidate set (the paper's ``V_T``, e.g.
        the POIs); pass ``np.arange(n)`` for all vertices.  Thin one-shot
        wrapper over :meth:`prepare` + :meth:`range_prepared` — callers
        issuing many queries against one target set should prepare once.

        Returns ascending sorted vertex ids; duplicate targets are
        deduplicated (the target set is a set).
        """
        return self.range_prepared(source, self.prepare(targets), tau)

    def range_prepared(
        self,
        source: int,
        prepared: PreparedTargets,
        tau: float,
    ) -> np.ndarray:
        """Range query against a prepared target set (sorted-ids contract)."""
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        if prepared.node_active is None or prepared.leaf_pos is None:
            raise ValueError("prepared targets lack tree structure; use prepare()")
        q = self.matrix[source]
        hits: List[np.ndarray] = []
        stack = list(self._roots())
        while stack:
            node_id = stack.pop()
            if not prepared.node_active[node_id]:
                continue  # no targets anywhere under this node
            if self._bound(q, node_id) > tau:
                continue  # triangle-inequality pruning
            node = self.hierarchy.nodes[node_id]
            if node.level == self._leaf_level:
                members = prepared.members_of(int(prepared.leaf_pos[node_id]))
                dists = lp_distance(self.matrix[members] - q, self.p)
                hits.append(members[dists <= tau])
            else:
                stack.extend(self._child_cells(node_id))
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    @shapes(targets="(m,):int")
    def knn_query(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets to ``source`` by embedding distance.

        Thin one-shot wrapper over :meth:`prepare` + :meth:`knn_prepared`.

        Returns targets ordered by ascending ``(embedding distance, id)``;
        when the heap drains first — i.e. ``k`` exceeds the number of
        distinct targets — all targets are returned (``min(k, #targets)``
        results), matching :func:`repro.algorithms.knn.knn_true`.
        """
        return self.knn_prepared(source, self.prepare(targets), k)

    def knn_prepared(
        self,
        source: int,
        prepared: PreparedTargets,
        k: int,
    ) -> np.ndarray:
        """kNN against a prepared target set ((distance, id) contract).

        Best-first expansion over the tree: nodes enter a min-priority
        queue keyed by their lower bound; popped vertices are final
        answers because no unexpanded node can contain anything closer.
        At equal keys nodes pop before vertices (an equal-bound node may
        hold an equal-distance vertex with a smaller id), and vertices
        tie-break on id — making the output deterministically sorted by
        ``(distance, vertex id)``.  Returns ``min(k, #targets)`` results.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if prepared.node_active is None or prepared.leaf_pos is None:
            raise ValueError("prepared targets lack tree structure; use prepare()")
        k_eff = min(k, prepared.m)
        if k_eff == 0:
            return np.empty(0, dtype=np.int64)
        q = self.matrix[source]
        # Entries: (key, kind, id) — see _NODE/_VERTEX ordering note above.
        heap: list[tuple[float, int, int]] = []
        for root in self._roots():
            if prepared.node_active[root]:
                heapq.heappush(heap, (self._bound(q, root), _NODE, root))
        result: List[int] = []
        while heap and len(result) < k_eff:
            _, kind, ident = heapq.heappop(heap)
            if kind == _VERTEX:
                result.append(ident)
                continue
            node = self.hierarchy.nodes[ident]
            if node.level == self._leaf_level:
                members = prepared.members_of(int(prepared.leaf_pos[ident]))
                dists = lp_distance(self.matrix[members] - q, self.p)
                # perf: loop-ok (bounded by leaf size, feeds the heap)
                for v, dist in zip(members, dists):
                    heapq.heappush(heap, (float(dist), _VERTEX, int(v)))
            else:
                for child in self._child_cells(ident):
                    if prepared.node_active[child]:
                        heapq.heappush(heap, (self._bound(q, child), _NODE, child))
        return np.array(result, dtype=np.int64)

    def index_bytes(self) -> int:
        """Extra memory on top of the embedding matrix."""
        n_nodes = len(self._centres)
        d = self.matrix.shape[1]
        return n_nodes * (d * 8 + 8)
