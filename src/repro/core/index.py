"""Tree-structured embedding index for range and kNN queries (Sec. VI).

The partition tree is reused as a metric index over the *embedding* space:
every tree node stores a centre vector and a radius — the maximum Lp
distance from the centre to any member vertex's embedding — so that

    Lp(q, centre) - radius

is a valid lower bound on the embedding distance from the query to every
vertex under the node (triangle inequality).  Range queries prune nodes
whose bound exceeds the threshold; kNN queries expand nodes best-first from
a min-priority queue, exactly as Algorithm "Range/kNN" in the paper.

Results are exact with respect to *embedding* distances; their accuracy
against true network distances (F1 in Fig. 16) is the model's accuracy.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..devtools.contracts import shapes
from ..graph import PartitionHierarchy
from .model import lp_distance


class EmbeddingTreeIndex:
    """Range/kNN index over a trained embedding and its partition tree.

    Parameters
    ----------
    hierarchy:
        The partition tree (any aligned hierarchy over the same graph).
    matrix:
        ``(n, d)`` vertex embedding matrix (global embeddings).
    p:
        Metric order matching the trained model.
    """

    def __init__(
        self,
        hierarchy: PartitionHierarchy,
        matrix: np.ndarray,
        p: float = 1.0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != hierarchy.graph.n:
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows for a graph of "
                f"{hierarchy.graph.n} vertices"
            )
        self.hierarchy = hierarchy
        self.matrix = matrix
        self.p = float(p)
        # Leaf cells are the last *sub-graph* level; per-vertex tree nodes
        # are skipped in traversal (vertices are enumerated from leaf cells).
        self._leaf_level = hierarchy.num_subgraph_levels - 1
        self._centres: dict[int, np.ndarray] = {}
        self._radii: dict[int, float] = {}
        # perf: loop-ok (index build is O(#tree nodes), not O(n) per query)
        for node in hierarchy.nodes:
            if node.level > self._leaf_level:
                continue
            members = matrix[node.vertices]
            centre = members.mean(axis=0)
            self._centres[node.id] = centre
            self._radii[node.id] = float(
                lp_distance(members - centre, self.p).max()
            )

    # ------------------------------------------------------------------
    def _bound(self, q: np.ndarray, node_id: int) -> float:
        """Lower bound on embedding distance from ``q`` to the node's members."""
        d = float(lp_distance(q - self._centres[node_id], self.p))
        return max(d - self._radii[node_id], 0.0)

    def _roots(self) -> list[int]:
        return self.hierarchy.root_ids()

    def _child_cells(self, node_id: int) -> list[int]:
        return self.hierarchy.nodes[node_id].children

    # ------------------------------------------------------------------
    @shapes(targets="(k,):int")
    def range_query(
        self,
        source: int,
        targets: np.ndarray,
        tau: float,
    ) -> np.ndarray:
        """All targets within embedding distance ``tau`` of ``source``.

        ``targets`` restricts the candidate set (the paper's ``V_T``, e.g.
        the POIs); pass ``np.arange(n)`` for all vertices.
        """
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        q = self.matrix[source]
        mask = np.zeros(self.hierarchy.graph.n, dtype=bool)
        mask[np.asarray(targets, dtype=np.int64)] = True
        out: list[int] = []
        stack = list(self._roots())
        while stack:
            node_id = stack.pop()
            if self._bound(q, node_id) > tau:
                continue  # triangle-inequality pruning
            node = self.hierarchy.nodes[node_id]
            if node.level == self._leaf_level:
                members = node.vertices[mask[node.vertices]]
                if members.size:
                    dists = lp_distance(self.matrix[members] - q, self.p)
                    out.extend(int(v) for v in members[dists <= tau])
            else:
                stack.extend(self._child_cells(node_id))
        return np.array(sorted(out), dtype=np.int64)

    @shapes(targets="(m,):int")
    def knn_query(self, source: int, targets: np.ndarray, k: int) -> np.ndarray:
        """k nearest targets to ``source`` by embedding distance.

        Best-first expansion over the tree: nodes enter a min-priority queue
        keyed by their lower bound; popped vertices are final answers
        because no unexpanded node can contain anything closer.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        q = self.matrix[source]
        mask = np.zeros(self.hierarchy.graph.n, dtype=bool)
        mask[np.asarray(targets, dtype=np.int64)] = True

        heap: list[tuple[float, int, int, int]] = []  # (key, tiebreak, kind, id)
        counter = 0
        VERTEX, NODE = 0, 1
        for root in self._roots():
            heapq.heappush(heap, (self._bound(q, root), counter, NODE, root))
            counter += 1
        result: list[int] = []
        while heap and len(result) < k:
            _, _, kind, ident = heapq.heappop(heap)
            if kind == VERTEX:
                result.append(ident)
                continue
            node = self.hierarchy.nodes[ident]
            if node.level == self._leaf_level:
                members = node.vertices[mask[node.vertices]]
                if members.size:
                    dists = lp_distance(self.matrix[members] - q, self.p)
                    # perf: loop-ok (bounded by leaf size, feeds the heap)
                    for v, d in zip(members, dists):
                        heapq.heappush(heap, (float(d), counter, VERTEX, int(v)))
                        counter += 1
            else:
                for child in self._child_cells(ident):
                    heapq.heappush(
                        heap, (self._bound(q, child), counter, NODE, child)
                    )
                    counter += 1
        return np.array(result, dtype=np.int64)

    def index_bytes(self) -> int:
        """Extra memory on top of the embedding matrix."""
        n_nodes = len(self._centres)
        d = self.matrix.shape[1]
        return n_nodes * (d * 8 + 8)
