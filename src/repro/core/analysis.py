"""Embedding diagnostics: the measurable claims of Sec. IV.

The paper argues the hierarchical model works because of its *norm
structure*: coarse levels carry large-norm components shared by all their
descendants, so (1) per-level mean norms decay monotonically from root to
vertex level, and (2) the summed parameter norm of the hierarchical model
is smaller than the flat model's ``||M||_1`` for the same represented
distances.  This module measures both, plus layout statistics used by the
Fig. 7 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hierarchical import HierarchicalRNE
from .model import lp_distance


@dataclass(frozen=True)
class NormProfile:
    """Per-level norm structure of a hierarchical embedding."""

    level_mean_norms: tuple[float, ...]
    total_parameter_norm: float
    flat_equivalent_norm: float

    @property
    def is_decaying(self) -> bool:
        """True when mean norms shrink from coarse to fine levels."""
        norms = self.level_mean_norms
        return all(a >= b for a, b in zip(norms[:-1], norms[1:]))

    @property
    def sharing_ratio(self) -> float:
        """Hierarchical parameter norm over flat-equivalent norm (< 1 means
        the tree shares coarse components, the paper's efficiency claim)."""
        if self.flat_equivalent_norm == 0:
            return 1.0
        return self.total_parameter_norm / self.flat_equivalent_norm


def norm_profile(hmodel: HierarchicalRNE) -> NormProfile:
    """Measure the norm hierarchy of a trained model.

    ``flat_equivalent_norm`` is the entrywise L1 norm of the collapsed
    global matrix — what a flat model storing the same embedding would
    hold; ``total_parameter_norm`` is what the hierarchy actually stores.
    """
    level_means = tuple(
        float(np.abs(m).sum(axis=1).mean()) for m in hmodel.locals
    )
    total = float(sum(np.abs(m).sum() for m in hmodel.locals))
    flat = float(np.abs(hmodel.global_matrix()).sum())
    return NormProfile(level_means, total, flat)


def level_contributions(hmodel: HierarchicalRNE, pairs: np.ndarray) -> np.ndarray:
    """Share of predicted distance contributed by each level.

    For each pair, the contribution of level ``l`` is the L1 distance of
    the two endpoints' level-``l`` local embeddings (0 when they share the
    ancestor — the shared component cancels).  Returned as mean fractions
    per level; coarse levels dominating long-distance pairs is the
    mechanism behind the hierarchy's fast convergence.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    anc = hmodel.hierarchy.anc_rows
    contribs = np.zeros((len(pairs), hmodel.num_levels), dtype=np.float64)
    for level, matrix in enumerate(hmodel.locals):
        rows_s = anc[pairs[:, 0], level]
        rows_t = anc[pairs[:, 1], level]
        contribs[:, level] = lp_distance(matrix[rows_s] - matrix[rows_t], 1.0)
    totals = contribs.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    return (contribs / totals).mean(axis=0)


def collapse_fraction(
    matrix: np.ndarray,
    *,
    sample: int = 2000,
    threshold: float = 0.05,
    seed: int = 0,
) -> float:
    """Share of random vertex pairs with nearly coincident embeddings.

    The Fig. 7 pathology: flat training collapses vertices into clumps,
    visible as an excess of pairs below ``threshold`` x mean pair distance.
    """
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    a = rng.integers(n, size=sample)
    b = rng.integers(n, size=sample)
    keep = a != b
    dists = np.abs(matrix[a[keep]] - matrix[b[keep]]).sum(axis=1)
    mean = dists.mean() if dists.size else 1.0
    return float((dists < threshold * mean).mean())


def layout_correlation(matrix: np.ndarray, coords: np.ndarray, *, sample: int = 4000, seed: int = 0) -> float:
    """Correlation between embedding distances and spatial distances.

    A well-trained road-network embedding preserves the global layout
    (Fig. 7c), which shows up as a high correlation; a collapsed embedding
    (Fig. 7b) decorrelates.
    """
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    a = rng.integers(n, size=sample)
    b = rng.integers(n, size=sample)
    keep = a != b
    emb = np.abs(matrix[a[keep]] - matrix[b[keep]]).sum(axis=1)
    geo = np.linalg.norm(coords[a[keep]] - coords[b[keep]], axis=1)
    if emb.std() == 0 or geo.std() == 0:
        return 0.0
    return float(np.corrcoef(emb, geo)[0, 1])
