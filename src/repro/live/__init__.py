"""Versioned live updates for a serving RNE (see ``docs/UPDATES.md``).

:class:`LiveUpdateManager` coordinates the full lifecycle of an
edge-weight update against a *serving* model: incremental retraining
(:func:`repro.core.update.update_rne`), the atomic publish of the new
embedding, subtree-local refresh of the tree index, and version-keyed
invalidation of every attached serving engine's and oracle's caches — so
post-update queries can never be answered from pre-update state.
"""

from .update import LiveUpdateManager, UpdateStats, perturb_weights

__all__ = ["LiveUpdateManager", "UpdateStats", "perturb_weights"]
