"""Live-update orchestration: retrain, publish, invalidate — in that order.

The staleness bug this module exists to prevent: ``update_rne`` used to
mutate the hierarchical model in place while serving structures built from
the *old* embedding — tree-index centres/radii, hot-row caches, prepared
targets, SSSP trees — kept answering queries.  kNN and range results were
then inconsistent with the very distances the engine reported, and cached
rows stayed wrong forever.

The fix is structural, not a flush: embeddings carry a monotonically
increasing **version** (:attr:`repro.core.pipeline.RNE.version`), serving
caches key entries by it, and :class:`LiveUpdateManager` is the single
place a version ever advances.  An update is:

1. **retrain** on a private copy of the vertex level
   (:func:`repro.core.update.update_rne` — the serving model is untouched
   and fully queryable throughout);
2. **publish** — one reference swap of the model matrix, a subtree-local
   radius refresh of the tree index
   (:meth:`~repro.core.index.EmbeddingTreeIndex.refresh_rows`, bit-identical
   to a full rebuild), and a version bump;
3. **invalidate** — every attached engine adopts the new version (stale
   hot rows become unreachable by key construction and are purged), every
   attached oracle re-binds the new graph, drops SSSP trees when the road
   network itself changed, and re-probes its error bound.

:class:`~repro.core.index.PreparedTargets` survive the swap untouched:
they depend only on tree *structure* and target ids, never on embedding
values, so in-flight prepared sets stay valid across versions (tested in
``tests/live``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.hierarchical import HierarchicalRNE
from ..core.pipeline import RNE
from ..core.training import TrainConfig
from ..core.update import UpdateResult, update_rne
from ..graph import Graph
from ..reliability.artifacts import graph_fingerprint
from ..reliability.checkpoint import CheckpointManager, pack_state
from ..reliability.fallback import ResilientOracle
from ..serving.engine import BatchQueryEngine

__all__ = ["LiveUpdateManager", "UpdateStats", "perturb_weights"]


@dataclass
class UpdateStats:
    """Everything one live update did, JSON-safe for observability.

    Surfaced through ``ServingStats.snapshot()["live_updates"]`` on every
    attached engine and printed by ``rne update``.
    """

    version_before: int = 0
    version_after: int = 0
    graph_changed: bool = False
    published: bool = False
    affected_vertices: int = 0
    changed_rows: int = 0
    index_nodes_refreshed: int = 0
    error_before: float = 0.0
    error_after: float = 0.0
    round_errors: List[float] = field(default_factory=list)
    rounds_run: int = 0
    samples_per_round: List[int] = field(default_factory=list)
    train_seconds: float = 0.0
    swap_seconds: float = 0.0
    total_seconds: float = 0.0
    engine_invalidations: List[Dict[str, int]] = field(default_factory=list)
    labeling: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    checkpoint_path: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (everything already JSON-serialisable)."""
        return {
            "version_before": self.version_before,
            "version_after": self.version_after,
            "graph_changed": self.graph_changed,
            "published": self.published,
            "affected_vertices": self.affected_vertices,
            "changed_rows": self.changed_rows,
            "index_nodes_refreshed": self.index_nodes_refreshed,
            "error_before": self.error_before,
            "error_after": self.error_after,
            "round_errors": list(self.round_errors),
            "rounds_run": self.rounds_run,
            "samples_per_round": list(self.samples_per_round),
            "train_seconds": self.train_seconds,
            "swap_seconds": self.swap_seconds,
            "total_seconds": self.total_seconds,
            "engine_invalidations": [dict(c) for c in self.engine_invalidations],
            "labeling": dict(self.labeling),
            "notes": list(self.notes),
            "checkpoint_path": self.checkpoint_path,
        }

    def report(self) -> str:
        """Human-readable one-update summary (CLI output)."""
        lines = [
            f"version   {self.version_before} -> {self.version_after}"
            f" ({'published' if self.published else 'kept previous embedding'})",
            f"graph     {'changed' if self.graph_changed else 'unchanged'}",
            f"region    {self.affected_vertices} vertices affected, "
            f"{self.changed_rows} embedding rows changed, "
            f"{self.index_nodes_refreshed} index nodes refreshed",
            f"error     {self.error_before:.4f} -> {self.error_after:.4f} "
            f"(rounds: {', '.join(f'{e:.4f}' for e in self.round_errors) or '-'})",
            f"timing    train {self.train_seconds * 1e3:.1f} ms, "
            f"swap {self.swap_seconds * 1e3:.2f} ms, "
            f"total {self.total_seconds * 1e3:.1f} ms",
        ]
        for counts in self.engine_invalidations:
            lines.append(
                f"engine    v{counts.get('from_version')} -> "
                f"v{counts.get('to_version')}: "
                f"{counts.get('hot_rows_purged', 0)} hot rows purged, "
                f"{counts.get('sssp_dropped', 0)} SSSP trees dropped"
            )
        if self.checkpoint_path:
            lines.append(f"journal   {self.checkpoint_path}")
        for note in self.notes:
            lines.append(f"note      {note}")
        return "\n".join(lines)


def perturb_weights(
    graph: Graph,
    *,
    factor: float = 2.0,
    count: int = 10,
    seed: int = 0,
) -> Tuple[Graph, np.ndarray]:
    """Scale ``count`` random edge weights by ``factor`` (traffic model).

    Returns ``(new_graph, changed_edges)`` where ``changed_edges`` is the
    ``(count, 2)`` endpoint array that :meth:`LiveUpdateManager.update`
    expects.  Topology and coordinates are preserved — this is the paper's
    road-network setting where congestion changes costs, not geometry.
    """
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    us, vs, ws = graph.edge_array()
    rng = np.random.default_rng(seed)
    picks = rng.choice(us.size, size=min(count, us.size), replace=False)
    new_ws = ws.astype(np.float64).copy()
    new_ws[picks] *= factor
    edges = list(zip(us.tolist(), vs.tolist(), new_ws.tolist()))
    new_graph = Graph(graph.n, edges, coords=graph.coords)
    changed = np.column_stack([us[picks], vs[picks]]).astype(np.int64)
    return new_graph, changed


def _vertex_view(rne: RNE) -> HierarchicalRNE:
    """A trainable hierarchical view equivalent to the RNE's flat matrix.

    The hierarchy's vertex level indexes vertices identically
    (``anc_rows[v, -1] == v``), so zero coarse levels plus a *copy* of the
    global matrix at the vertex level reproduces the model's distances
    exactly — and lets ``update_rne`` run its coarse-frozen schedule
    against a loaded artifact that no longer carries per-level locals.
    """
    hierarchy = rne.hierarchy
    if hierarchy is None:
        raise ValueError(
            "live updates need a partition hierarchy (train with one, or "
            "load an artifact that includes anc_rows)"
        )
    anc = hierarchy.anc_rows
    if not np.array_equal(anc[:, -1], np.arange(rne.graph.n)):
        raise ValueError("hierarchy vertex level is not the identity mapping")
    view = object.__new__(HierarchicalRNE)
    view.hierarchy = hierarchy
    view.d = rne.model.d
    view.p = rne.model.p
    view.locals = [
        np.zeros((hierarchy.level_size(level), rne.model.d), dtype=np.float64)
        for level in range(hierarchy.num_levels - 1)
    ]
    view.locals.append(rne.model.matrix.copy())
    return view


class LiveUpdateManager:
    """Owns the retrain → publish → invalidate lifecycle of one RNE.

    Parameters
    ----------
    rne:
        The serving model.  Must carry a partition hierarchy and tree
        index (both are present for pipeline-built and artifact-loaded
        RNEs with ``anc_rows``).
    engines:
        :class:`~repro.serving.engine.BatchQueryEngine` instances serving
        this RNE; more can be attached later.  Each must already share the
        RNE's model object — the manager publishes by rebinding
        ``model.matrix``, which only reaches engines holding that object.
    oracles:
        :class:`~repro.reliability.fallback.ResilientOracle` instances
        serving this RNE (same sharing requirement).
    checkpoints:
        Optional :class:`~repro.reliability.checkpoint.CheckpointManager`;
        when given, every published update journals the new matrix (tagged
        with its version) so a crashed server can prove which embedding it
        was serving.
    """

    def __init__(
        self,
        rne: RNE,
        *,
        engines: Tuple[BatchQueryEngine, ...] = (),
        oracles: Tuple[ResilientOracle, ...] = (),
        checkpoints: Optional[CheckpointManager] = None,
    ) -> None:
        if rne.hierarchy is None or rne.index is None:
            raise ValueError(
                "live updates need a hierarchy-backed RNE (with a tree index)"
            )
        self.rne = rne
        self.engines: List[BatchQueryEngine] = []
        self.oracles: List[ResilientOracle] = []
        self.checkpoints = checkpoints
        #: UpdateStats of every update applied through this manager.
        self.history: List[UpdateStats] = []
        for engine in engines:
            self.attach_engine(engine)
        for oracle in oracles:
            self.attach_oracle(oracle)

    # ------------------------------------------------------------------
    def attach_engine(self, engine: BatchQueryEngine) -> BatchQueryEngine:
        """Register an engine for invalidation on every future update."""
        if engine.model is not None and engine.model is not self.rne.model:
            raise ValueError(
                "engine serves a different model object; live publishes "
                "would never reach it"
            )
        if engine.version > self.rne.version:
            raise ValueError(
                f"engine is at version {engine.version}, ahead of the "
                f"model's {self.rne.version}"
            )
        self.engines.append(engine)
        return engine

    def attach_oracle(self, oracle: ResilientOracle) -> ResilientOracle:
        """Register a resilient oracle for invalidation on every update."""
        if oracle.rne is not None and oracle.rne is not self.rne:
            raise ValueError(
                "oracle serves a different RNE object; live publishes "
                "would never reach it"
            )
        self.oracles.append(oracle)
        return oracle

    # ------------------------------------------------------------------
    def update(
        self,
        new_graph: Graph,
        changed_edges: np.ndarray,
        *,
        hops: int = 2,
        samples: int = 8000,
        rounds: int = 3,
        config: Optional[TrainConfig] = None,
        validation_size: int = 1000,
        seed: int = 0,
        workers: Optional[int] = None,
    ) -> UpdateStats:
        """Run one full live update; returns its :class:`UpdateStats`.

        Serving stays available the whole time: retraining happens on a
        private copy, and the publish step is a handful of reference
        swaps plus a subtree-local index refresh (milliseconds, measured
        as ``swap_seconds``).
        """
        total_start = time.perf_counter()
        stats = UpdateStats(
            version_before=int(self.rne.version),
            version_after=int(self.rne.version),
        )
        stats.graph_changed = graph_fingerprint(new_graph) != graph_fingerprint(
            self.rne.graph
        )

        view = _vertex_view(self.rne)
        result: UpdateResult = update_rne(
            view,
            new_graph,
            changed_edges,
            hops=hops,
            samples=samples,
            rounds=rounds,
            config=config,
            validation_size=validation_size,
            seed=seed,
            workers=workers,
        )
        stats.affected_vertices = result.affected_vertices
        stats.changed_rows = int(result.changed_rows.size)
        stats.error_before = result.error_before
        stats.error_after = result.error_after
        stats.round_errors = list(result.round_errors)
        stats.rounds_run = result.rounds_run
        stats.samples_per_round = list(result.samples_per_round)
        stats.train_seconds = result.train_seconds
        stats.labeling = dict(result.labeling)
        stats.notes = list(result.notes)
        stats.published = result.published

        swap_start = time.perf_counter()
        if result.published:
            new_matrix = view.locals[-1]
            index = self.rne.index
            if index is None:  # enforced at construction, re-checked for -O runs
                raise RuntimeError("serving RNE lost its tree index mid-update")
            stats.index_nodes_refreshed = index.refresh_rows(
                new_matrix, result.changed_rows
            )
            # Reference swaps, atomic under the GIL: engines share this
            # model object, so they observe old or new, never a torn mix.
            self.rne.model.matrix = new_matrix
            self.rne.version += 1
            stats.version_after = int(self.rne.version)
        if stats.graph_changed:
            self.rne.graph = new_graph
        for engine in self.engines:
            counts = engine.set_version(
                self.rne.version,
                graph=new_graph if stats.graph_changed else None,
            )
            stats.engine_invalidations.append(counts)
        for oracle in self.oracles:
            counts = oracle.apply_update(new_graph, seed=seed)
            stats.engine_invalidations.append(counts)
        stats.swap_seconds = time.perf_counter() - swap_start

        if self.checkpoints is not None and result.published:
            arrays, meta = pack_state(
                [self.rne.model.matrix], version=self.rne.version
            )
            stats.checkpoint_path = self.checkpoints.save(
                "live_update", arrays, meta, step=self.rne.version
            )

        stats.total_seconds = time.perf_counter() - total_start
        record = stats.as_dict()
        for engine in self.engines:
            engine.stats.record_update(record)
        for oracle in self.oracles:
            oracle.engine.stats.record_update(record)
        self.history.append(stats)
        return stats
