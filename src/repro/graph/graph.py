"""Weighted-graph core used by every other subsystem.

The :class:`Graph` class stores an undirected, positively weighted graph in
compressed-sparse-row (CSR) form backed by numpy arrays.  This layout makes
neighbourhood scans, Dijkstra runs and scipy interop cheap, and keeps memory
linear in ``|V| + |E|`` — the same design constraint that motivates the paper
(an all-pairs matrix would be ``Theta(|V|^2)``).

Vertices are integers ``0..n-1``.  Optional 2-d coordinates (longitude /
latitude, or synthetic plane positions) are carried alongside because the
geometric baselines (Euclidean / Manhattan) and the grid bucketing of the
active fine-tuning phase (Sec. V-C of the paper) need them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse


class GraphError(ValueError):
    """Raised when a graph is malformed (bad endpoints, weights, shapes)."""


@dataclass(frozen=True)
class Edge:
    """A single undirected edge with its weight."""

    u: int
    v: int
    weight: float


class Graph:
    """Undirected weighted graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Each undirected edge should
        appear once; both directions are materialised internally.
    coords:
        Optional ``(n, 2)`` array of planar vertex coordinates.

    Notes
    -----
    Self-loops are rejected (they never occur on road networks and would
    corrupt shortest-path semantics).  Parallel edges are collapsed to the
    minimum weight, matching how road datasets are normally cleaned.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int, float]],
        coords: np.ndarray | None = None,
    ) -> None:
        if n <= 0:
            raise GraphError(f"graph must have at least one vertex, got n={n}")
        self.n = int(n)

        triples = [(int(u), int(v), float(w)) for u, v, w in edges]
        self._validate_edges(triples)
        triples = self._dedupe(triples)

        us = np.fromiter((t[0] for t in triples), dtype=np.int64, count=len(triples))
        vs = np.fromiter((t[1] for t in triples), dtype=np.int64, count=len(triples))
        ws = np.fromiter((t[2] for t in triples), dtype=np.float64, count=len(triples))

        # Materialise both directions, then sort by source to obtain CSR.
        src = np.concatenate([us, vs])
        dst = np.concatenate([vs, us])
        wgt = np.concatenate([ws, ws])
        order = np.argsort(src, kind="stable")
        self._dst = dst[order]
        self._wgt = wgt[order]
        self._indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(self._indptr, src + 1, 1)
        np.cumsum(self._indptr, out=self._indptr)

        self._edge_list = triples
        self.coords = self._validate_coords(coords)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _validate_edges(self, triples: Sequence[tuple[int, int, float]]) -> None:
        for u, v, w in triples:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={self.n}")
            if u == v:
                raise GraphError(f"self-loop at vertex {u} is not allowed")
            if not (w > 0) or not np.isfinite(w):
                raise GraphError(f"edge ({u}, {v}) has non-positive weight {w}")

    @staticmethod
    def _dedupe(
        triples: Sequence[tuple[int, int, float]],
    ) -> list[tuple[int, int, float]]:
        best: dict[tuple[int, int], float] = {}
        for u, v, w in triples:
            key = (u, v) if u < v else (v, u)
            if key not in best or w < best[key]:
                best[key] = w
        return [(u, v, w) for (u, v), w in sorted(best.items())]

    def _validate_coords(self, coords: np.ndarray | None) -> np.ndarray | None:
        if coords is None:
            return None
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (self.n, 2):
            raise GraphError(
                f"coords must have shape ({self.n}, 2), got {coords.shape}"
            )
        return coords

    @classmethod
    def from_networkx(cls, g: Any) -> "Graph":
        """Build from a networkx graph with ``weight`` edge attributes.

        Node labels are mapped to ``0..n-1`` in sorted order; coordinates are
        read from a ``pos`` node attribute when every node has one.
        """
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[u], index[v], float(data.get("weight", 1.0)))
            for u, v, data in g.edges(data=True)
        ]
        coords = None
        if all("pos" in g.nodes[node] for node in nodes):
            coords = np.array([g.nodes[node]["pos"] for node in nodes], dtype=float)
        return cls(len(nodes), edges, coords=coords)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self._edge_list)

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour vertex ids of ``u`` (read-only view)."""
        return self._dst[self._indptr[u] : self._indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` (read-only view)."""
        return self._wgt[self._indptr[u] : self._indptr[u + 1]]

    def degree(self, u: int) -> int:
        return int(self._indptr[u + 1] - self._indptr[u])

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self._indptr)

    def edges(self) -> Iterator[Edge]:
        """Iterate undirected edges once each."""
        for u, v, w in self._edge_list:
            yield Edge(u, v, w)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(u, v, w)`` arrays, one entry per undirected edge."""
        if not self._edge_list:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        arr = np.asarray(self._edge_list, dtype=np.float64)
        return arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64), arr[:, 2]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.neighbors(u)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises ``KeyError`` if absent."""
        nbrs = self.neighbors(u)
        hits = np.nonzero(nbrs == v)[0]
        if hits.size == 0:
            raise KeyError(f"no edge ({u}, {v})")
        return float(self.neighbor_weights(u)[hits[0]])

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_csr_matrix(self) -> sparse.csr_matrix:
        """scipy CSR adjacency matrix (symmetric)."""
        return sparse.csr_matrix(
            (self._wgt, self._dst, self._indptr), shape=(self.n, self.n)
        )

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw CSR arrays ``(indptr, indices, weights)``.

        These back :meth:`to_csr_matrix` directly (no copy), so a fork-based
        worker pool can inherit them through copy-on-write memory and
        rebuild an identical adjacency matrix without pickling the graph.
        Treat them as read-only.
        """
        return self._indptr, self._dst, self._wgt

    def to_networkx(self) -> Any:
        """Convert to ``networkx.Graph`` (weights on edges, pos on nodes)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(self._edge_list)
        if self.coords is not None:
            for i in range(self.n):
                g.nodes[i]["pos"] = tuple(self.coords[i])
        return g

    def subgraph(self, vertices: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices relabelled ``0..k-1`` in the
        given order) and the array mapping new ids back to original ids.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            raise GraphError("subgraph needs at least one vertex")
        local = {int(v): i for i, v in enumerate(vertices)}
        if len(local) != vertices.size:
            raise GraphError("subgraph vertex list contains duplicates")
        edges = [
            (local[u], local[v], w)
            for u, v, w in self._edge_list
            if u in local and v in local
        ]
        coords = self.coords[vertices] if self.coords is not None else None
        return Graph(vertices.size, edges, coords=coords), vertices

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> np.ndarray:
        """Component label per vertex (labels are 0-based, contiguous)."""
        n_comp, labels = sparse.csgraph.connected_components(
            self.to_csr_matrix(), directed=False
        )
        del n_comp
        return labels

    def is_connected(self) -> bool:
        return bool(np.all(self.connected_components() == 0))

    def largest_component(self) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on the largest connected component."""
        labels = self.connected_components()
        counts = np.bincount(labels)
        keep = np.nonzero(labels == np.argmax(counts))[0]
        return self.subgraph(keep)

    def total_weight(self) -> float:
        """Sum of all undirected edge weights."""
        return float(sum(w for _, _, w in self._edge_list))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m})"
