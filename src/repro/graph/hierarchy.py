"""Partition hierarchy: the tree behind the hierarchical RNE model.

Section IV of the paper recursively partitions the road network with fanout
``kappa`` until cells shrink below a size threshold ``delta``, producing a
tree whose internal nodes are sub-graphs and whose leaves are the original
vertices.  Every tree node owns a *local* embedding; a vertex's global
embedding is the sum of its ancestors' local embeddings.

To keep training fully vectorisable, this implementation aligns all branches
to the same depth: every vertex has exactly one ancestor at each sub-graph
level (small cells are padded down as single-child chains).  The per-vertex
ancestor rows are exposed as one ``(n, L+1)`` integer array so the trainer
can gather and scatter gradients with pure numpy indexing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..devtools.contracts import shapes
from .graph import Graph
from .partition import partition_kway


@dataclass
class HierarchyNode:
    """One tree node: a sub-graph cell (or, at the last level, a vertex)."""

    id: int
    level: int
    row: int
    parent: int | None
    vertices: np.ndarray
    children: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return int(self.vertices.size)


class PartitionHierarchy:
    """Aligned partition tree over a road network.

    Parameters
    ----------
    graph:
        The road network.
    fanout:
        Partitioning fanout ``kappa`` (> 1).
    leaf_size:
        Size threshold ``delta``: cells at or below this size stop being
        subdivided (they are chain-padded to keep levels aligned).
    max_levels:
        Optional cap on the number of sub-graph levels.
    seed:
        Seed for the partitioner's randomised phases.

    Attributes
    ----------
    num_subgraph_levels:
        ``L`` — number of sub-graph levels.  The vertex level is level ``L``
        (0-based), so there are ``L + 1`` embedded levels in total.
    levels:
        ``levels[l]`` lists the node ids at level ``l``; row order within a
        level matches each node's ``row`` attribute.  At the vertex level,
        ``row`` equals the original vertex id.
    anc_rows:
        ``(n, L + 1)`` int array: ``anc_rows[v, l]`` is the row (within
        level ``l``) of vertex ``v``'s ancestor at that level.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        fanout: int = 4,
        leaf_size: int = 64,
        max_levels: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.graph = graph
        self.fanout = fanout
        self.leaf_size = leaf_size
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

        n = graph.n
        depth = max(1, math.ceil(math.log(max(n / leaf_size, 1.0000001), fanout)))
        if max_levels is not None:
            depth = min(depth, max(1, max_levels))
        self.num_subgraph_levels = depth

        self.nodes: list[HierarchyNode] = []
        self.levels: list[list[int]] = [[] for _ in range(depth + 1)]
        self._build(rng)
        self.anc_rows = self._compute_ancestor_rows()

    # ------------------------------------------------------------------
    def _new_node(
        self, level: int, parent: int | None, vertices: np.ndarray
    ) -> HierarchyNode:
        node = HierarchyNode(
            id=len(self.nodes),
            level=level,
            row=len(self.levels[level]),
            parent=parent,
            vertices=vertices,
        )
        self.nodes.append(node)
        self.levels[level].append(node.id)
        if parent is not None:
            self.nodes[parent].children.append(node.id)
        return node

    def _build(self, rng: np.random.Generator) -> None:
        depth = self.num_subgraph_levels
        all_vertices = np.arange(self.graph.n, dtype=np.int64)

        # Level 0: partition the whole graph.
        frontier: list[HierarchyNode] = []
        for cell in self._partition_cell(all_vertices, rng):
            frontier.append(self._new_node(0, None, cell))

        # Levels 1 .. depth-1: subdivide each frontier cell.
        for level in range(1, depth):
            next_frontier: list[HierarchyNode] = []
            for node in frontier:
                if node.size <= self.leaf_size:
                    # Chain padding: one child covering the same vertices.
                    next_frontier.append(
                        self._new_node(level, node.id, node.vertices)
                    )
                    continue
                for cell in self._partition_cell(node.vertices, rng):
                    next_frontier.append(self._new_node(level, node.id, cell))
            frontier = next_frontier

        # Vertex level: one node per vertex; row == vertex id.
        owner = np.empty(self.graph.n, dtype=np.int64)
        for node in frontier:
            owner[node.vertices] = node.id
        for v in range(self.graph.n):
            self._new_node(depth, int(owner[v]), np.array([v], dtype=np.int64))

    def _partition_cell(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        k = min(self.fanout, vertices.size)
        if k <= 1:
            return [vertices]
        sub, mapping = self.graph.subgraph(vertices)
        labels = partition_kway(sub, k, seed=rng)
        cells = [mapping[labels == part] for part in range(k)]
        return [c for c in cells if c.size > 0]

    def _compute_ancestor_rows(self) -> np.ndarray:
        depth = self.num_subgraph_levels
        rows = np.empty((self.graph.n, depth + 1), dtype=np.int64)
        for node_id in self.levels[depth]:
            node = self.nodes[node_id]
            v = int(node.vertices[0])
            rows[v, depth] = node.row
            cursor = node.parent
            for level in range(depth - 1, -1, -1):
                parent = self.nodes[cursor]
                rows[v, level] = parent.row
                cursor = parent.parent
        return rows

    # ------------------------------------------------------------------
    @classmethod
    @shapes(anc_rows="(n,l):int")
    def from_ancestor_rows(cls, graph: Graph, anc_rows: np.ndarray) -> "PartitionHierarchy":
        """Reconstruct an aligned hierarchy from its ancestor-row array.

        ``anc_rows`` fully determines the tree (levels, rows, nesting), so
        a trained model can be persisted as plain arrays and revived
        without re-running the partitioner.
        """
        anc_rows = np.asarray(anc_rows, dtype=np.int64)
        if anc_rows.shape[0] != graph.n or anc_rows.ndim != 2:
            raise ValueError(
                f"anc_rows must have shape ({graph.n}, L+1), got {anc_rows.shape}"
            )
        depth = anc_rows.shape[1] - 1
        if not np.array_equal(anc_rows[:, depth], np.arange(graph.n)):
            raise ValueError("last anc_rows column must equal vertex ids")
        self = object.__new__(cls)
        self.graph = graph
        self.fanout = 0  # unknown after reconstruction; structural only
        self.leaf_size = 0
        self.num_subgraph_levels = depth
        self.nodes = []
        self.levels = [[] for _ in range(depth + 1)]
        self.anc_rows = anc_rows

        # Create nodes level by level; identify each node by its row.
        node_at: list[dict[int, int]] = [dict() for _ in range(depth + 1)]
        for level in range(depth + 1):
            rows = anc_rows[:, level]
            for row in np.unique(rows):
                vertices = np.nonzero(rows == row)[0].astype(np.int64)
                parent = None
                if level > 0:
                    parent_row = int(anc_rows[vertices[0], level - 1])
                    parent = self.levels[level - 1][parent_row]
                node = self._new_node(level, parent, vertices)
                node_at[level][int(row)] = node.id
                if node.row != int(row):
                    raise ValueError(
                        f"anc_rows rows at level {level} are not contiguous"
                    )
        return self

    @property
    def num_levels(self) -> int:
        """Total embedded levels (sub-graph levels + the vertex level)."""
        return self.num_subgraph_levels + 1

    def level_size(self, level: int) -> int:
        """Number of nodes at ``level``."""
        return len(self.levels[level])

    def level_sizes(self) -> list[int]:
        return [len(ids) for ids in self.levels]

    def cells(self, level: int) -> list[np.ndarray]:
        """Vertex sets of the cells at ``level`` (row order)."""
        return [self.nodes[i].vertices for i in self.levels[level]]

    def vertex_labels(self, level: int) -> np.ndarray:
        """Per-vertex cell row at ``level`` — i.e. ``anc_rows[:, level]``."""
        return self.anc_rows[:, level]

    def root_ids(self) -> list[int]:
        """Ids of the level-0 nodes."""
        return list(self.levels[0])

    def validate(self) -> None:
        """Raise ``ValueError`` if tree invariants are violated.

        Checked: every level exactly covers the vertex set without overlap;
        children partition their parent; the vertex level has ``row ==
        vertex id``.
        """
        n = self.graph.n
        for level in range(self.num_levels):
            seen = np.zeros(n, dtype=bool)
            for node_id in self.levels[level]:
                verts = self.nodes[node_id].vertices
                if seen[verts].any():
                    raise ValueError(f"overlap at level {level}")
                seen[verts] = True
            if not seen.all():
                raise ValueError(f"level {level} does not cover all vertices")
        for node in self.nodes:
            if node.children:
                child_union = np.concatenate(
                    [self.nodes[c].vertices for c in node.children]
                )
                if not np.array_equal(np.sort(child_union), np.sort(node.vertices)):
                    raise ValueError(f"children of node {node.id} do not partition it")
        depth = self.num_subgraph_levels
        for node_id in self.levels[depth]:
            node = self.nodes[node_id]
            if node.size != 1 or node.row != int(node.vertices[0]):
                raise ValueError(
                    f"vertex-level node {node.id} must be a singleton with "
                    f"row == vertex id"
                )
