"""Multilevel graph partitioning.

The hierarchical RNE model (Sec. IV of the paper) is built on recursive graph
partitioning; the paper uses the multilevel scheme of Karypis & Kumar [17].
This module implements that scheme from scratch:

1. **Coarsening** — repeated heavy-edge matching merges matched vertex pairs
   until the graph is small.
2. **Initial partitioning** — greedy weighted region growing on the coarsest
   graph.
3. **Uncoarsening + refinement** — the partition is projected back level by
   level and improved with boundary Kernighan–Lin / Fiduccia–Mattheyses
   style moves.

``bisect`` produces a balanced 2-way split; ``partition_kway`` applies it
recursively for arbitrary ``k``.  Both operate on vertex-weighted graphs so
that recursion and coarsening preserve balance in terms of original
vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph


@dataclass
class _Level:
    """One coarsening level: the coarse graph plus the fine->coarse map."""

    graph: "_WeightedGraph"
    fine_to_coarse: np.ndarray


class _WeightedGraph:
    """Internal adjacency-list graph with vertex weights (merge counts)."""

    def __init__(
        self,
        n: int,
        adj: list[dict[int, float]],
        vwgt: np.ndarray,
    ) -> None:
        self.n = n
        self.adj = adj
        self.vwgt = vwgt

    @classmethod
    def from_graph(cls, graph: Graph) -> "_WeightedGraph":
        adj: list[dict[int, float]] = [dict() for _ in range(graph.n)]
        for e in graph.edges():
            adj[e.u][e.v] = adj[e.u].get(e.v, 0.0) + e.weight
            adj[e.v][e.u] = adj[e.v].get(e.u, 0.0) + e.weight
        return cls(graph.n, adj, np.ones(graph.n, dtype=np.float64))

    def total_vwgt(self) -> float:
        return float(self.vwgt.sum())


def _heavy_edge_matching(
    wg: _WeightedGraph, rng: np.random.Generator
) -> np.ndarray:
    """Match each vertex with its heaviest unmatched neighbour.

    Returns ``match`` where ``match[u]`` is u's partner (or ``u`` itself if
    unmatched).  Heavier edges are contracted first because collapsing them
    loses the least cut information.
    """
    match = np.full(wg.n, -1, dtype=np.int64)
    order = rng.permutation(wg.n)
    for u in order:
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for v, w in wg.adj[u].items():
            if match[v] == -1 and w > best_w:
                best, best_w = v, w
        if best == -1:
            match[u] = u
        else:
            match[u] = best
            match[best] = u
    return match


def _contract(wg: _WeightedGraph, match: np.ndarray) -> _Level:
    """Build the coarse graph induced by a matching."""
    fine_to_coarse = np.full(wg.n, -1, dtype=np.int64)
    nxt = 0
    for u in range(wg.n):
        if fine_to_coarse[u] != -1:
            continue
        fine_to_coarse[u] = nxt
        partner = match[u]
        if partner != u:
            fine_to_coarse[partner] = nxt
        nxt += 1

    vwgt = np.zeros(nxt, dtype=np.float64)
    np.add.at(vwgt, fine_to_coarse, wg.vwgt)
    adj: list[dict[int, float]] = [dict() for _ in range(nxt)]
    for u in range(wg.n):
        cu = fine_to_coarse[u]
        for v, w in wg.adj[u].items():
            cv = fine_to_coarse[v]
            if cu == cv or u > v:
                continue
            adj[cu][cv] = adj[cu].get(cv, 0.0) + w
            adj[cv][cu] = adj[cv].get(cu, 0.0) + w
    return _Level(_WeightedGraph(nxt, adj, vwgt), fine_to_coarse)


def _initial_bisection(
    wg: _WeightedGraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Greedy region growing: grow part 0 from a random seed until it holds
    ``target_frac`` of the total vertex weight."""
    total = wg.total_vwgt()
    side = np.ones(wg.n, dtype=np.int8)
    seed = int(rng.integers(wg.n))
    frontier = [seed]
    in_part = np.zeros(wg.n, dtype=bool)
    grown = 0.0
    while frontier and grown < target_frac * total:
        # Pull the frontier vertex with the strongest connection to part 0.
        best_i, best_gain = 0, -np.inf
        for i, u in enumerate(frontier):
            gain = sum(w for v, w in wg.adj[u].items() if in_part[v])
            if gain > best_gain:
                best_i, best_gain = i, gain
        u = frontier.pop(best_i)
        if in_part[u]:
            continue
        in_part[u] = True
        side[u] = 0
        grown += wg.vwgt[u]
        for v in wg.adj[u]:
            if not in_part[v]:
                frontier.append(v)
    # Unreached vertices of a disconnected graph fall to part 1, which is
    # safe: refinement may still move them.
    return side


def _refine(
    wg: _WeightedGraph,
    side: np.ndarray,
    target_frac: float,
    *,
    passes: int = 4,
    imbalance: float = 0.1,
) -> np.ndarray:
    """Boundary KL/FM refinement.

    Repeatedly moves the boundary vertex with the best cut-gain whose move
    keeps both sides within ``imbalance`` of their target weights.  Each
    pass visits every boundary vertex at most once (FM-style locking).
    """
    total = wg.total_vwgt()
    target0 = target_frac * total
    low0 = target0 * (1.0 - imbalance)
    high0 = target0 * (1.0 + imbalance)
    weight0 = float(wg.vwgt[side == 0].sum())

    for _ in range(passes):
        moved_any = False
        locked = np.zeros(wg.n, dtype=bool)
        while True:
            best_u, best_gain = -1, 0.0
            for u in range(wg.n):
                if locked[u]:
                    continue
                internal = external = 0.0
                for v, w in wg.adj[u].items():
                    if side[v] == side[u]:
                        internal += w
                    else:
                        external += w
                if external == 0.0:
                    continue  # not a boundary vertex
                gain = external - internal
                if side[u] == 0:
                    new_w0 = weight0 - wg.vwgt[u]
                else:
                    new_w0 = weight0 + wg.vwgt[u]
                if not (low0 <= new_w0 <= high0):
                    continue
                if gain > best_gain:
                    best_u, best_gain = u, gain
            if best_u == -1:
                break
            if side[best_u] == 0:
                weight0 -= wg.vwgt[best_u]
                side[best_u] = 1
            else:
                weight0 += wg.vwgt[best_u]
                side[best_u] = 0
            locked[best_u] = True
            moved_any = True
        if not moved_any:
            break
    return side


def _bisect_weighted(
    wg: _WeightedGraph,
    target_frac: float,
    rng: np.random.Generator,
    *,
    coarsen_to: int = 48,
) -> np.ndarray:
    """Multilevel bisection of an internal weighted graph."""
    levels: list[_Level] = []
    current = wg
    while current.n > coarsen_to:
        match = _heavy_edge_matching(current, rng)
        level = _contract(current, match)
        if level.graph.n >= current.n:  # no shrink: give up coarsening
            break
        levels.append(level)
        current = level.graph

    side = _initial_bisection(current, target_frac, rng)
    side = _refine(current, side, target_frac)
    for i in range(len(levels) - 1, -1, -1):
        # Project the coarse labels onto this level's finer graph, refine.
        side = side[levels[i].fine_to_coarse]
        finer = wg if i == 0 else levels[i - 1].graph
        side = _refine(finer, side, target_frac)
    return side


def bisect(
    graph: Graph,
    *,
    target_frac: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Balanced 2-way partition of ``graph``.

    Returns an int8 array of 0/1 side labels.  ``target_frac`` is the share
    of vertices assigned side 0 (used by recursive k-way splitting for
    non-power-of-two ``k``).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if graph.n == 1:
        return np.zeros(1, dtype=np.int8)
    wg = _WeightedGraph.from_graph(graph)
    return _bisect_weighted(wg, target_frac, rng)


def partition_kway(
    graph: Graph,
    k: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` balanced parts via recursive bisection.

    Returns an int array of part labels in ``0..k-1``.  Parts are connected
    *within the quality limits of refinement* — exact connectivity is not
    guaranteed (neither does METIS guarantee it), and the hierarchy layer
    tolerates that.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    labels = np.zeros(graph.n, dtype=np.int64)
    _split(graph, np.arange(graph.n), k, 0, labels, rng)
    return labels


def _split(
    graph: Graph,
    vertices: np.ndarray,
    k: int,
    label_base: int,
    labels: np.ndarray,
    rng: np.random.Generator,
) -> None:
    if k == 1 or vertices.size <= 1:
        labels[vertices] = label_base
        return
    k_left = k // 2
    sub, mapping = graph.subgraph(vertices)
    side = bisect(sub, target_frac=k_left / k, seed=rng)
    left = mapping[side == 0]
    right = mapping[side == 1]
    if left.size == 0 or right.size == 0:
        # Degenerate split (tiny or pathological subgraph): fall back to an
        # arbitrary but balanced assignment so recursion always terminates.
        half = max(1, int(round(vertices.size * k_left / k)))
        left, right = mapping[:half], mapping[half:]
    _split(graph, left, k_left, label_base, labels, rng)
    _split(graph, right, k - k_left, label_base + k_left, labels, rng)


def cut_weight(graph: Graph, labels: np.ndarray) -> float:
    """Total weight of edges crossing between parts."""
    us, vs, ws = graph.edge_array()
    return float(ws[labels[us] != labels[vs]].sum())


def balance(labels: np.ndarray, k: int | None = None) -> float:
    """Max part size divided by ideal part size (1.0 = perfectly balanced)."""
    if k is None:
        k = int(labels.max()) + 1 if labels.size else 1
    counts = np.bincount(labels, minlength=k)
    ideal = labels.size / k
    return float(counts.max() / ideal) if ideal > 0 else 1.0
