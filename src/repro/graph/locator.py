"""Coordinate snapping: map arbitrary (x, y) positions to graph vertices.

Real queries arrive as GPS positions, not vertex ids.  ``VertexLocator``
snaps positions to their nearest road-network vertex with a KD-tree, so
the full pipeline is ``locate -> embed -> L1``, still search-free.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .graph import Graph


class VertexLocator:
    """Nearest-vertex lookup over a road network's coordinates."""

    def __init__(self, graph: Graph) -> None:
        if graph.coords is None:
            raise ValueError("VertexLocator requires vertex coordinates")
        self.graph = graph
        self._tree = cKDTree(graph.coords)

    def locate(self, x: float, y: float) -> int:
        """Vertex id nearest to ``(x, y)``."""
        _, idx = self._tree.query((x, y))
        return int(idx)

    def locate_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised snapping for a ``(k, 2)`` position array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (k, 2), got {points.shape}")
        _, idx = self._tree.query(points)
        return idx.astype(np.int64)

    def snap_error(self, x: float, y: float) -> float:
        """Euclidean gap between the position and its snapped vertex."""
        d, _ = self._tree.query((x, y))
        return float(d)
