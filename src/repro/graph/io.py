"""Graph and embedding serialisation.

Road-network benchmarks (including the paper's FLA and US-W datasets) are
published in the 9th DIMACS Implementation Challenge format: a ``.gr`` file
with ``a u v w`` arc lines and a ``.co`` file with ``v id x y`` coordinate
lines.  This module reads and writes that format so the harness can run on
the real datasets when a user supplies them, plus a simple whitespace edge
list and an ``.npz`` container for trained embeddings.
"""

from __future__ import annotations

import os
from typing import TextIO

import numpy as np

from .graph import Graph, GraphError


def load_dimacs(gr_path: str | os.PathLike, co_path: str | os.PathLike | None = None) -> Graph:
    """Load a DIMACS ``.gr`` graph, optionally with ``.co`` coordinates.

    DIMACS vertex ids are 1-based; they are shifted to 0-based.  Arcs appear
    in both directions in the files; duplicates collapse to the minimum
    weight inside :class:`Graph`.
    """
    n = None
    edges: list[tuple[int, int, float]] = []
    with open(gr_path, "r", encoding="utf-8") as fh:
        for line in fh:
            tag = line[:1]
            if tag == "c" or not line.strip():
                continue
            if tag == "p":
                parts = line.split()
                if len(parts) < 4:
                    raise GraphError(f"bad DIMACS problem line: {line!r}")
                n = int(parts[2])
            elif tag == "a":
                parts = line.split()
                if len(parts) != 4:
                    raise GraphError(f"bad DIMACS arc line: {line!r}")
                edges.append((int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])))
            else:
                raise GraphError(f"unrecognised DIMACS line: {line!r}")
    if n is None:
        raise GraphError("DIMACS file has no 'p' problem line")

    coords = None
    if co_path is not None:
        coords = np.zeros((n, 2), dtype=np.float64)
        with open(co_path, "r", encoding="utf-8") as fh:
            for line in fh:
                if line[:1] != "v":
                    continue
                parts = line.split()
                if len(parts) != 4:
                    raise GraphError(f"bad DIMACS coordinate line: {line!r}")
                coords[int(parts[1]) - 1] = (float(parts[2]), float(parts[3]))
    return Graph(n, edges, coords=coords)


def save_dimacs(graph: Graph, gr_path: str | os.PathLike, co_path: str | os.PathLike | None = None) -> None:
    """Write ``graph`` in DIMACS format (both arc directions, 1-based ids)."""
    with open(gr_path, "w", encoding="utf-8") as fh:
        _write_gr(graph, fh)
    if co_path is not None:
        if graph.coords is None:
            raise GraphError("graph has no coordinates to write")
        with open(co_path, "w", encoding="utf-8") as fh:
            fh.write(f"p aux sp co {graph.n}\n")
            for i in range(graph.n):
                x, y = graph.coords[i]
                fh.write(f"v {i + 1} {x:.6f} {y:.6f}\n")


def _write_gr(graph: Graph, fh: TextIO) -> None:
    fh.write(f"p sp {graph.n} {2 * graph.m}\n")
    for e in graph.edges():
        fh.write(f"a {e.u + 1} {e.v + 1} {e.weight:.6f}\n")
        fh.write(f"a {e.v + 1} {e.u + 1} {e.weight:.6f}\n")


def load_edge_list(path: str | os.PathLike, *, n: int | None = None) -> Graph:
    """Load a whitespace edge list: ``u v weight`` per line, 0-based ids."""
    edges: list[tuple[int, int, float]] = []
    max_id = -1
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(f"bad edge-list line: {line!r}")
            u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
            edges.append((u, v, w))
            max_id = max(max_id, u, v)
    if n is None:
        n = max_id + 1
    return Graph(n, edges)


def save_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write a whitespace edge list, one undirected edge per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for e in graph.edges():
            fh.write(f"{e.u} {e.v} {e.weight:.6f}\n")


def save_embedding(path: str | os.PathLike, matrix: np.ndarray, *, p: float = 1.0) -> None:
    """Persist an embedding matrix with its metric order ``p`` to ``.npz``."""
    np.savez_compressed(path, matrix=matrix, p=np.float64(p))


def load_embedding(path: str | os.PathLike) -> tuple[np.ndarray, float]:
    """Load an embedding saved by :func:`save_embedding`."""
    with np.load(path) as data:
        return np.array(data["matrix"]), float(data["p"])
