"""Graph and embedding serialisation.

Road-network benchmarks (including the paper's FLA and US-W datasets) are
published in the 9th DIMACS Implementation Challenge format: a ``.gr`` file
with ``a u v w`` arc lines and a ``.co`` file with ``v id x y`` coordinate
lines.  This module reads and writes that format so the harness can run on
the real datasets when a user supplies them, plus a simple whitespace edge
list and an ``.npz`` container for trained embeddings.
"""

from __future__ import annotations

import os
from typing import TextIO

import numpy as np

from ..reliability.artifacts import (
    ArtifactError,
    load_artifact,
    save_artifact,
    validate_embedding_payload,
)
from .graph import Graph, GraphError


def _check_dimacs_id(vertex: int, n: int, lineno: int, line: str) -> None:
    """1-based DIMACS vertex ids must lie in ``[1, n]``; blame the line."""
    if not (1 <= vertex <= n):
        raise GraphError(
            f"vertex id {vertex} out of range [1, {n}] "
            f"at line {lineno}: {line.rstrip()!r}"
        )


def load_dimacs(gr_path: str | os.PathLike, co_path: str | os.PathLike | None = None) -> Graph:
    """Load a DIMACS ``.gr`` graph, optionally with ``.co`` coordinates.

    DIMACS vertex ids are 1-based; they are shifted to 0-based.  Arcs appear
    in both directions in the files; duplicates collapse to the minimum
    weight inside :class:`Graph`.  Arc and coordinate vertex ids are
    validated against the problem line's ``n`` as they are read, so a bad
    file fails with the offending line instead of a downstream
    ``IndexError`` (or a silently wrapped-around coordinate).
    """
    n = None
    edges: list[tuple[int, int, float]] = []
    with open(gr_path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            tag = line[:1]
            if tag == "c" or not line.strip():
                continue
            if tag == "p":
                parts = line.split()
                if len(parts) < 4:
                    raise GraphError(f"bad DIMACS problem line: {line!r}")
                n = int(parts[2])
                if n < 1:
                    raise GraphError(
                        f"problem line declares n={n} at line {lineno}: {line.rstrip()!r}"
                    )
            elif tag == "a":
                parts = line.split()
                if len(parts) != 4:
                    raise GraphError(f"bad DIMACS arc line: {line!r}")
                if n is None:
                    raise GraphError(
                        f"arc line before the 'p' problem line at line {lineno}"
                    )
                u, v = int(parts[1]), int(parts[2])
                _check_dimacs_id(u, n, lineno, line)
                _check_dimacs_id(v, n, lineno, line)
                edges.append((u - 1, v - 1, float(parts[3])))
            else:
                raise GraphError(f"unrecognised DIMACS line: {line!r}")
    if n is None:
        raise GraphError("DIMACS file has no 'p' problem line")

    coords = None
    if co_path is not None:
        coords = np.zeros((n, 2), dtype=np.float64)
        with open(co_path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                if line[:1] != "v":
                    continue
                parts = line.split()
                if len(parts) != 4:
                    raise GraphError(f"bad DIMACS coordinate line: {line!r}")
                vertex = int(parts[1])
                _check_dimacs_id(vertex, n, lineno, line)
                coords[vertex - 1] = (float(parts[2]), float(parts[3]))
    return Graph(n, edges, coords=coords)


def save_dimacs(graph: Graph, gr_path: str | os.PathLike, co_path: str | os.PathLike | None = None) -> None:
    """Write ``graph`` in DIMACS format (both arc directions, 1-based ids)."""
    with open(gr_path, "w", encoding="utf-8") as fh:
        _write_gr(graph, fh)
    if co_path is not None:
        if graph.coords is None:
            raise GraphError("graph has no coordinates to write")
        with open(co_path, "w", encoding="utf-8") as fh:
            fh.write(f"p aux sp co {graph.n}\n")
            for i in range(graph.n):
                x, y = graph.coords[i]
                fh.write(f"v {i + 1} {x:.6f} {y:.6f}\n")


def _write_gr(graph: Graph, fh: TextIO) -> None:
    fh.write(f"p sp {graph.n} {2 * graph.m}\n")
    for e in graph.edges():
        fh.write(f"a {e.u + 1} {e.v + 1} {e.weight:.6f}\n")
        fh.write(f"a {e.v + 1} {e.u + 1} {e.weight:.6f}\n")


def load_edge_list(path: str | os.PathLike, *, n: int | None = None) -> Graph:
    """Load a whitespace edge list: ``u v weight`` per line, 0-based ids."""
    edges: list[tuple[int, int, float]] = []
    max_id = -1
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(f"bad edge-list line: {line!r}")
            u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
            edges.append((u, v, w))
            max_id = max(max_id, u, v)
    if n is None:
        n = max_id + 1
    return Graph(n, edges)


def save_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write a whitespace edge list, one undirected edge per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for e in graph.edges():
            fh.write(f"{e.u} {e.v} {e.weight:.6f}\n")


def save_embedding(path: str | os.PathLike, matrix: np.ndarray, *, p: float = 1.0) -> None:
    """Persist an embedding matrix with its metric order ``p`` to ``.npz``.

    Written through the reliability artifact layer: the write is atomic and
    the file carries a manifest with per-array checksums, so a truncated or
    bit-flipped file is rejected at load time.
    """
    save_artifact(
        path,
        {"matrix": np.asarray(matrix), "p": np.float64(p)},
        kind="embedding",
    )


def load_embedding(
    path: str | os.PathLike, *, expect_n: int | None = None
) -> tuple[np.ndarray, float]:
    """Load and validate an embedding saved by :func:`save_embedding`.

    Beyond the artifact layer's integrity checks, the payload itself is
    validated: the matrix must be 2-d and finite, ``p`` must be a finite
    scalar ``>= 1``, and — when ``expect_n`` is given — the row count must
    match the graph it will serve.  Violations raise
    :class:`~repro.reliability.artifacts.ArtifactError`.
    """
    arrays, _ = load_artifact(path, expect_kind="embedding")
    if "matrix" not in arrays or "p" not in arrays:
        raise ArtifactError(f"{os.fspath(path)}: embedding artifact is missing arrays")
    return validate_embedding_payload(
        path, arrays["matrix"], arrays["p"], expect_n=expect_n
    )
