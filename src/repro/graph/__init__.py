"""Road-network substrate: graph core, generators, I/O and partitioning."""

from .graph import Edge, Graph, GraphError
from .generators import (
    dataset,
    delaunay_country,
    grid_city,
    multi_city,
    radial_city,
    with_travel_times,
)
from .hierarchy import HierarchyNode, PartitionHierarchy
from .locator import VertexLocator
from .partition import balance, bisect, cut_weight, partition_kway

__all__ = [
    "Edge",
    "Graph",
    "GraphError",
    "HierarchyNode",
    "PartitionHierarchy",
    "VertexLocator",
    "balance",
    "bisect",
    "cut_weight",
    "dataset",
    "delaunay_country",
    "grid_city",
    "multi_city",
    "partition_kway",
    "radial_city",
    "with_travel_times",
]
