"""Synthetic road-network generators.

The paper evaluates on Beijing, Florida and Western-USA road networks.  Those
datasets are not redistributable here, so these generators produce networks
with the same *metric character*: planar, grid-like, locally sparse, with
arterial structure and mild weight noise.  The reproduction claims in
EXPERIMENTS.md are about curve shapes across methods, which depend on exactly
these properties.

Four families are provided:

``grid_city``
    Perturbed lattice with diagonal in-fill and random street removals —
    Manhattan-style downtown.
``radial_city``
    Ring roads plus radial avenues — Beijing-style layout.
``delaunay_country``
    Delaunay triangulation of random sites, thinned — inter-city road
    network in open terrain (Florida-style).
``multi_city``
    Several ``grid_city`` clusters connected by sparse highways — a
    Western-USA-style multi-region graph.

Every generator accepts a ``seed`` and returns a connected :class:`Graph`
with planar coordinates attached.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from .graph import Graph


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _euclid(coords: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    return np.linalg.norm(coords[u] - coords[v], axis=-1)


def _ensure_connected(graph: Graph) -> Graph:
    if graph.is_connected():
        return graph
    sub, _ = graph.largest_component()
    return sub


def grid_city(
    rows: int = 24,
    cols: int = 24,
    *,
    block: float = 100.0,
    jitter: float = 0.15,
    removal: float = 0.08,
    diagonal: float = 0.05,
    weight_noise: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Perturbed street grid.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions; the graph has at most ``rows * cols`` vertices.
    block:
        Nominal block length (edge weight unit).
    jitter:
        Vertex position noise as a fraction of ``block``.
    removal:
        Fraction of lattice edges randomly deleted (dead ends, rivers).
    diagonal:
        Fraction of cells that gain one diagonal street.
    weight_noise:
        Multiplicative lognormal-ish noise applied to edge lengths, modelling
        curvature: real streets are longer than straight lines.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_city needs rows >= 2 and cols >= 2")
    rng = _rng(seed)
    n = rows * cols
    ii, jj = np.divmod(np.arange(n), cols)
    coords = np.column_stack([jj * block, ii * block]).astype(float)
    coords += rng.normal(scale=jitter * block, size=coords.shape)

    edges: list[tuple[int, int]] = []
    right = np.nonzero(jj < cols - 1)[0]
    edges.extend(zip(right, right + 1))
    down = np.nonzero(ii < rows - 1)[0]
    edges.extend(zip(down, down + cols))

    cells = np.nonzero((ii < rows - 1) & (jj < cols - 1))[0]
    diag_cells = cells[rng.random(cells.size) < diagonal]
    for c in diag_cells:
        if rng.random() < 0.5:
            edges.append((c, c + cols + 1))
        else:
            edges.append((c + 1, c + cols))

    edges_arr = np.asarray(edges, dtype=np.int64)
    keep = rng.random(len(edges_arr)) >= removal
    # Never drop everything; keep at least a spanning portion.
    if keep.sum() < n - 1:
        keep[:] = True
    edges_arr = edges_arr[keep]

    lengths = _euclid(coords, edges_arr[:, 0], edges_arr[:, 1])
    lengths *= 1.0 + np.abs(rng.normal(scale=weight_noise, size=lengths.shape))
    graph = Graph(
        n,
        zip(edges_arr[:, 0], edges_arr[:, 1], np.maximum(lengths, 1e-6)),
        coords=coords,
    )
    return _ensure_connected(graph)


def radial_city(
    rings: int = 8,
    spokes: int = 24,
    *,
    ring_gap: float = 400.0,
    removal: float = 0.05,
    weight_noise: float = 0.08,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Ring-and-spoke city: concentric ring roads crossed by radial avenues.

    Vertex ``r * spokes + s`` sits on ring ``r`` (1-based radius) at angular
    slot ``s``; a centre vertex with id ``rings * spokes`` joins the first
    ring.
    """
    if rings < 1 or spokes < 3:
        raise ValueError("radial_city needs rings >= 1 and spokes >= 3")
    rng = _rng(seed)
    n = rings * spokes + 1
    centre = n - 1
    angles = 2 * np.pi * np.arange(spokes) / spokes
    coords = np.zeros((n, 2), dtype=np.float64)
    for r in range(rings):
        radius = (r + 1) * ring_gap
        base = r * spokes
        coords[base : base + spokes, 0] = radius * np.cos(angles)
        coords[base : base + spokes, 1] = radius * np.sin(angles)
    coords += rng.normal(scale=0.03 * ring_gap, size=coords.shape)

    edges: list[tuple[int, int]] = []
    for r in range(rings):
        base = r * spokes
        for s in range(spokes):
            edges.append((base + s, base + (s + 1) % spokes))  # along ring
            if r + 1 < rings:
                edges.append((base + s, base + spokes + s))  # outward spoke
    for s in range(spokes):
        edges.append((centre, s))

    edges_arr = np.asarray(edges, dtype=np.int64)
    keep = rng.random(len(edges_arr)) >= removal
    if keep.sum() < n - 1:
        keep[:] = True
    edges_arr = edges_arr[keep]

    lengths = _euclid(coords, edges_arr[:, 0], edges_arr[:, 1])
    lengths *= 1.0 + np.abs(rng.normal(scale=weight_noise, size=lengths.shape))
    graph = Graph(
        n,
        zip(edges_arr[:, 0], edges_arr[:, 1], np.maximum(lengths, 1e-6)),
        coords=coords,
    )
    return _ensure_connected(graph)


def delaunay_country(
    n: int = 1000,
    *,
    extent: float = 100_000.0,
    thinning: float = 0.35,
    weight_noise: float = 0.15,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Thinned Delaunay triangulation over random sites.

    A Delaunay triangulation is planar and its edges connect spatial
    neighbours, which after thinning gives the sparse, roughly degree-3
    topology of rural/inter-city road networks.
    """
    if n < 4:
        raise ValueError("delaunay_country needs n >= 4")
    rng = _rng(seed)
    coords = rng.uniform(0.0, extent, size=(n, 2))
    tri = Delaunay(coords)
    pairs = set()
    for simplex in tri.simplices:
        for a in range(3):
            u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
            pairs.add((min(u, v), max(u, v)))
    edges_arr = np.asarray(sorted(pairs), dtype=np.int64)

    lengths = _euclid(coords, edges_arr[:, 0], edges_arr[:, 1])
    # Thin the longest edges first: long Delaunay edges cross regions where
    # no road would exist.
    order = np.argsort(lengths)
    n_keep = max(n - 1, int(round(len(edges_arr) * (1.0 - thinning))))
    kept = order[:n_keep]
    edges_arr = edges_arr[kept]
    lengths = lengths[kept]

    lengths = lengths * (1.0 + np.abs(rng.normal(scale=weight_noise, size=lengths.shape)))
    graph = Graph(
        n,
        zip(edges_arr[:, 0], edges_arr[:, 1], np.maximum(lengths, 1e-6)),
        coords=coords,
    )
    return _ensure_connected(graph)


def multi_city(
    cities: int = 4,
    city_rows: int = 14,
    city_cols: int = 14,
    *,
    spacing: float = 20_000.0,
    highways_per_city: int = 2,
    highway_speedup: float = 2.0,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Several grid cities connected by sparse highways.

    Cities are placed on a rough circle of radius ``spacing`` around the
    origin.  ``highways_per_city`` edges connect each city's border vertices
    to the next city's, with weights equal to the Euclidean gap divided by
    ``highway_speedup`` (highways are faster per unit distance).
    """
    if cities < 2:
        raise ValueError("multi_city needs at least 2 cities")
    rng = _rng(seed)
    offset = 0
    all_edges: list[tuple[int, int, float]] = []
    all_coords: list[np.ndarray] = []
    city_ranges: list[tuple[int, int]] = []
    for c in range(cities):
        city = grid_city(city_rows, city_cols, seed=rng)
        angle = 2 * np.pi * c / cities
        shift = spacing * np.array([np.cos(angle), np.sin(angle)])
        coords = city.coords + shift
        all_coords.append(coords)
        for e in city.edges():
            all_edges.append((e.u + offset, e.v + offset, e.weight))
        city_ranges.append((offset, offset + city.n))
        offset += city.n

    coords = np.vstack(all_coords)
    for c in range(cities):
        lo_a, hi_a = city_ranges[c]
        lo_b, hi_b = city_ranges[(c + 1) % cities]
        for _ in range(highways_per_city):
            a = int(rng.integers(lo_a, hi_a))
            b = int(rng.integers(lo_b, hi_b))
            gap = float(np.linalg.norm(coords[a] - coords[b]))
            all_edges.append((a, b, max(gap / highway_speedup, 1e-6)))

    graph = Graph(offset, all_edges, coords=coords)
    return _ensure_connected(graph)


def with_travel_times(
    graph: Graph,
    *,
    arterial_fraction: float = 0.15,
    arterial_speed: float = 60.0,
    local_speed: float = 30.0,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Convert length weights to travel-time weights.

    A random ``arterial_fraction`` of edges becomes fast arterials; the
    rest are local streets.  Time = length / speed, so the metric keeps the
    paper's positive-symmetric structure but is no longer proportional to
    geometry — a harder (and more realistic) setting for the geometric
    baselines, while RNE is metric-agnostic.
    """
    if not 0.0 <= arterial_fraction <= 1.0:
        raise ValueError(f"arterial_fraction must be in [0, 1], got {arterial_fraction}")
    if arterial_speed <= 0 or local_speed <= 0:
        raise ValueError("speeds must be positive")
    rng = _rng(seed)
    edges = []
    for e in graph.edges():
        speed = arterial_speed if rng.random() < arterial_fraction else local_speed
        edges.append((e.u, e.v, e.weight / speed))
    return Graph(graph.n, edges, coords=graph.coords)


#: Named dataset registry used by the benchmark harness.  The three entries
#: mirror the scale ordering of the paper's BJ / FLA / US-W datasets.
def dataset(name: str, *, scale: float = 1.0, seed: int = 7) -> Graph:
    """Build one of the named benchmark networks.

    ``name`` is one of ``"BJ-S"`` (radial city, Beijing-like), ``"FLA-S"``
    (Delaunay country, Florida-like), ``"USW-S"`` (multi-city, Western-USA
    -like).  ``scale`` multiplies the vertex budget; the defaults give
    roughly 1.2k / 3k / 6k vertices so the whole suite runs in seconds.
    """
    key = name.upper()
    if key in ("BJ", "BJ-S"):
        rings = max(2, int(round(10 * np.sqrt(scale))))
        spokes = max(6, int(round(36 * np.sqrt(scale))))
        return radial_city(rings, spokes, seed=seed)
    if key in ("FLA", "FLA-S"):
        return delaunay_country(max(16, int(round(3000 * scale))), seed=seed)
    if key in ("USW", "US-W", "USW-S"):
        side = max(4, int(round(16 * np.sqrt(scale))))
        return multi_city(4, side, side, seed=seed)
    raise KeyError(f"unknown dataset {name!r}; expected BJ-S, FLA-S or USW-S")
