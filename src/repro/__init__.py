"""repro — reproduction of "A Learning-based Method for Computing Shortest
Path Distances on Road Networks" (Huang, Wang, Zhao & Li, ICDE 2021).

Quick start::

    from repro import build_rne, grid_city

    graph = grid_city(24, 24, seed=7)
    rne = build_rne(graph)
    print(rne.query(0, graph.n - 1))   # approximate network distance

Sub-packages
------------
``repro.graph``
    Road-network substrate: CSR graphs, synthetic generators, DIMACS I/O,
    multilevel partitioning and the partition hierarchy.
``repro.algorithms``
    Exact/approximate shortest-path baselines: Dijkstra, A*/ALT, CH, ACH,
    hub labels, WSPD distance oracle, exact kNN/range.
``repro.core``
    The paper's contribution: RNE models, hierarchical training, sample
    selection, active fine-tuning, metrics, embedding query index.
``repro.baselines``
    Learning and geometric baselines: DeepWalk regression, Euclidean /
    Manhattan estimators, G-tree-style kNN.
``repro.bench``
    The experiment harness regenerating every table and figure.
"""

from .core import RNE, RNEConfig, RNEModel, build_rne
from .graph import Graph, dataset, delaunay_country, grid_city, multi_city, radial_city

__all__ = [
    "Graph",
    "RNE",
    "RNEConfig",
    "RNEModel",
    "build_rne",
    "dataset",
    "delaunay_country",
    "grid_city",
    "multi_city",
    "radial_city",
]

__version__ = "1.0.0"
