"""The RNE numeric-correctness linter.

Usage::

    python -m repro.devtools.lint src tests benchmarks examples
    rne-lint --list-rules
    rne-lint --select RNE001,RNE005 src

Exit status 0 when clean, 1 when violations were found, 2 on usage errors.
A violation is suppressed by a waiver comment on the same line (or the
line directly above): ``# rne: ignore`` (all rules), ``# rne:
ignore[RNE003]``, or a rule-specific alias such as ``# perf: loop-ok``.
Directories named ``fixtures`` are skipped by default — they hold the lint
test corpus, which is *supposed* to violate rules.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, List, Optional, Sequence

from .rules import FileContext, Rule, Violation, all_rules

#: Path segments never linted (fixture corpus, caches, VCS internals).
DEFAULT_EXCLUDED_SEGMENTS = frozenset(
    {"fixtures", "__pycache__", ".git", ".hypothesis", "build", "dist", ".eggs"}
)


def iter_python_files(
    paths: Sequence[str],
    *,
    excluded_segments: Iterable[str] = DEFAULT_EXCLUDED_SEGMENTS,
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    excluded = set(excluded_segments)
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in excluded)
            for fname in sorted(filenames):
                if fname.endswith(".py"):
                    out.append(os.path.join(dirpath, fname))
    return sorted(set(out))


def lint_file(
    path: str,
    rules: Sequence[Rule],
    *,
    root: Optional[str] = None,
) -> List[Violation]:
    """Run ``rules`` over one file; syntax errors surface as RNE000."""
    relpath = os.path.relpath(path, root) if root else path
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        ctx = FileContext(path, relpath, source)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [
            Violation(
                path=relpath.replace("\\", "/"),
                line=line,
                col=1,
                code="RNE000",
                message=f"file does not parse: {exc.__class__.__name__}: {exc}",
            )
        ]
    found: List[Violation] = []
    for rule in rules:
        found.extend(rule.run(ctx))
    return sorted(found, key=lambda v: (v.line, v.col, v.code))


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths`` with the registered rules."""
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        dropped = set(ignore)
        rules = [r for r in rules if r.code not in dropped]
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, rules, root=root))
    return violations


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rne-lint",
        description="RNE numeric-correctness linter (rules RNE001..RNE009)",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--select", help="comma-separated rule codes to run")
    parser.add_argument("--ignore", help="comma-separated rule codes to skip")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    paths = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"rne-lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(
        paths, select=_parse_codes(args.select), ignore=_parse_codes(args.ignore)
    )
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        checked = len(iter_python_files(paths))
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        print(f"rne-lint: {checked} file(s) checked, {status}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
