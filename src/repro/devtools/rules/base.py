"""Shared infrastructure for RNE lint rules."""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["Violation", "FileContext", "Rule", "np_call_name"]

#: Generic waiver token: ``# rne: ignore`` or ``# rne: ignore[RNE003]``.
WAIVER_PREFIX = "rne: ignore"
#: Rule-specific waiver aliases (comment substring -> rule code).
WAIVER_ALIASES = {
    "perf: loop-ok": "RNE004",
    "mutation-ok": "RNE003",
    "float-eq-ok": "RNE007",
}


@dataclass(frozen=True)
class Violation:
    """One lint finding, printable as ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """A parsed source file plus its comment/waiver map."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self._comments: Dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    self._comments[tok.start[0]] = tok.string
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught worse
            pass
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------------
    def comment_on(self, line: int) -> str:
        return self._comments.get(line, "")

    def is_waived(self, line: int, code: str) -> bool:
        """True if ``line`` (or the line above) carries a waiver for ``code``.

        Accepted forms: ``# rne: ignore`` (all rules), ``# rne:
        ignore[RNE00X]``, and the rule-specific aliases in
        :data:`WAIVER_ALIASES` (e.g. ``# perf: loop-ok`` for RNE004).
        """
        for ln in (line, line - 1):
            comment = self._comments.get(ln, "")
            if not comment:
                continue
            if WAIVER_PREFIX in comment:
                idx = comment.index(WAIVER_PREFIX) + len(WAIVER_PREFIX)
                rest = comment[idx:].strip()
                if not rest.startswith("["):
                    return True
                listed = rest[1 : rest.index("]")] if "]" in rest else rest[1:]
                if code in listed:
                    return True
            for alias, alias_code in WAIVER_ALIASES.items():
                if alias in comment and alias_code == code:
                    return True
        return False

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        cursor = self._parents.get(node)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cursor
            cursor = self._parents.get(cursor)
        return None

    def function_params(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
        args = fn.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return set(names)


class Rule:
    """Base class: subclasses set ``code``/``name`` and implement ``check``."""

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(self, ctx: FileContext) -> List[Violation]:
        if not self.applies_to(ctx):
            return []
        return [v for v in self.check(ctx) if not ctx.is_waived(v.line, v.code)]

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


def np_call_name(node: ast.Call) -> Optional[Tuple[str, ...]]:
    """Dotted name of a call target as a tuple, e.g. ``("np", "zeros")``.

    Returns ``None`` for non-name call targets (lambdas, subscripts, ...).
    """
    parts: List[str] = []
    cursor = node.func
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return tuple(reversed(parts))
    return None
