"""RNE001 / RNE008: controlled-randomness rules.

Reproducibility of a learned distance index hinges on controlled
randomness: every stochastic path must flow through a seedable
``numpy.random.Generator``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, np_call_name

#: ``np.random`` attributes that are *not* legacy global-state RNG calls.
_SANCTIONED_ATTRS = frozenset({"Generator", "default_rng", "SeedSequence", "BitGenerator", "PCG64"})
#: Parameter names that count as a caller-controlled randomness source.
SEED_PARAM_NAMES = frozenset({"seed", "rng", "generator", "random_state"})


def _in_rng_helper(ctx: FileContext, node: ast.AST) -> bool:
    fn = ctx.enclosing_function(node)
    return fn is not None and (fn.name == "_rng" or fn.name.endswith("_rng"))


class UnseededRandomness(Rule):
    code = "RNE001"
    name = "unseeded-randomness"
    description = (
        "np.random.<fn> legacy global-RNG calls, and default_rng() without "
        "a seed/Generator argument, outside sanctioned _rng helpers"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = np_call_name(node)
            if dotted is None:
                continue
            # Legacy module-level RNG: np.random.rand / shuffle / choice ...
            if (
                len(dotted) == 3
                and dotted[0] in ("np", "numpy")
                and dotted[1] == "random"
                and dotted[2] not in _SANCTIONED_ATTRS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy global-state RNG call np.random.{dotted[2]}(); "
                    "use a seeded np.random.Generator",
                )
                continue
            # default_rng() with no argument == nondeterministic OS entropy.
            if dotted[-1] == "default_rng" and not node.args and not node.keywords:
                if not _in_rng_helper(ctx, node):
                    yield self.violation(
                        ctx,
                        node,
                        "default_rng() without a seed or Generator argument "
                        "is nondeterministic; thread a seed through",
                    )


class MissingSeedParameter(Rule):
    code = "RNE008"
    name = "missing-seed-parameter"
    description = (
        "public functions in src/ that consume randomness must expose a "
        "seed/rng parameter so callers control determinism"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "src/repro/" in ctx.relpath or ctx.relpath.startswith("repro/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            if ctx.enclosing_function(node) is not None:
                continue  # nested closure, not public API
            params = ctx.function_params(node)
            if params & SEED_PARAM_NAMES:
                continue
            # Does the body create randomness itself (not via a parameter)?
            for sub in ast.walk(node):
                inner = ctx.enclosing_function(sub)
                if inner is not node:
                    continue  # belongs to a nested function: judged on its own
                if isinstance(sub, ast.Call):
                    dotted = np_call_name(sub)
                    if dotted and dotted[-1] == "default_rng":
                        yield self.violation(
                            ctx,
                            node,
                            f"public function '{node.name}' consumes randomness "
                            "but has no seed/rng parameter",
                        )
                        break
