"""RNE009: hot-path entry points must carry a ``@shapes`` contract.

The runtime contract layer (:mod:`repro.devtools.contracts`) only protects
functions that are actually decorated; this rule closes the loop by
statically verifying the entry-point list declared in
:func:`repro.devtools.contracts.expected_entry_points`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..contracts import expected_entry_points
from .base import FileContext, Rule, Violation


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    names: Set[str] = set()
    for dec in node.decorator_list:
        cursor = dec.func if isinstance(dec, ast.Call) else dec
        while isinstance(cursor, ast.Attribute):
            if isinstance(cursor.value, ast.Name):
                names.add(cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name):
            names.add(cursor.id)
    return names


class ContractCoverage(Rule):
    code = "RNE009"
    name = "contract-coverage"
    description = (
        "declared hot-path entry points must be decorated with "
        "@shapes from repro.devtools.contracts"
    )

    def __init__(self) -> None:
        self._targets: Dict[str, Set[str]] = {
            suffix: set(names) for suffix, names in expected_entry_points().items()
        }

    def _suffix_for(self, ctx: FileContext) -> str | None:
        for suffix in self._targets:
            if ctx.relpath.endswith(suffix):
                return suffix
        return None

    def applies_to(self, ctx: FileContext) -> bool:
        return self._suffix_for(ctx) is not None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        suffix = self._suffix_for(ctx)
        if suffix is None:  # applies_to guarantees it cannot happen
            return
        wanted = self._targets[suffix]

        found: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        found[f"{node.name}.{sub.name}"] = sub

        for qualname in sorted(wanted):
            fn = found.get(qualname)
            if fn is None:
                yield Violation(
                    path=ctx.relpath,
                    line=1,
                    col=1,
                    code=self.code,
                    message=(
                        f"declared entry point '{qualname}' not found; update "
                        "expected_entry_points() in devtools/contracts.py"
                    ),
                )
            elif "shapes" not in _decorator_names(fn):
                yield self.violation(
                    ctx,
                    fn,
                    f"hot-path entry point '{qualname}' lacks a @shapes "
                    "contract (repro.devtools.contracts)",
                )
