"""RNE004: no Python-level loops over vertices/pairs in hot-path modules.

``core/training.py``, ``core/finetune.py``, ``core/index.py`` and the
serving engine/front door are the modules every query and every training
step flows through; a Python ``for`` over per-vertex or per-pair data
there is an O(n) interpreter loop hiding inside an otherwise vectorised
path.  Loops that are genuinely bounded by something small (epochs,
levels, tree fanout, cache bookkeeping) carry a ``# perf: loop-ok``
waiver explaining why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation

HOT_PATH_FILES = (
    "core/training.py",
    "core/finetune.py",
    "core/index.py",
    "core/sampling.py",
    "core/update.py",
    "serving/engine.py",
    "serving/frontdoor.py",
    "parallel/pool.py",
    "parallel/labeler.py",
    "parallel/prefetch.py",
    "live/update.py",
)

#: Identifiers that mark an iterable as per-vertex / per-pair sized.
_HOT_IDENTIFIERS = frozenset(
    {"pairs", "vertices", "verts", "members", "nodes", "targets", "batch"}
)


def _mentions_hot_identifier(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _HOT_IDENTIFIERS:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in (_HOT_IDENTIFIERS | {"n"}):
            return True
    return False


class HotPathPythonLoop(Rule):
    code = "RNE004"
    name = "hot-path-python-loop"
    description = (
        "Python for-loops over vertices/pairs in the training, sampling, "
        "indexing, serving and parallel-labelling hot paths require a "
        "'# perf: loop-ok' waiver"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return any(ctx.relpath.endswith(suffix) for suffix in HOT_PATH_FILES)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            if _mentions_hot_identifier(node.iter):
                yield self.violation(
                    ctx,
                    node,
                    "Python-level loop over vertex/pair-sized data in a "
                    "hot-path module; vectorise it or justify with "
                    "'# perf: loop-ok (<reason>)'",
                )
