"""RNE lint rule registry."""

from __future__ import annotations

from typing import List

from .arrays import ExplicitDtype, HiddenParameterMutation
from .base import FileContext, Rule, Violation
from .contracts_rule import ContractCoverage
from .layering import CoreLayering
from .perf import HotPathPythonLoop
from .randomness import MissingSeedParameter, UnseededRandomness
from .validation import NoBareAssert, NoFloatDistanceEquality

__all__ = ["FileContext", "Rule", "Violation", "all_rules"]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    rules: List[Rule] = [
        UnseededRandomness(),
        ExplicitDtype(),
        HiddenParameterMutation(),
        HotPathPythonLoop(),
        NoBareAssert(),
        CoreLayering(),
        NoFloatDistanceEquality(),
        MissingSeedParameter(),
        ContractCoverage(),
    ]
    return sorted(rules, key=lambda r: r.code)
