"""RNE006: layering — ``core/`` must not import networkx.

The numeric core consumes the repo's own :class:`~repro.graph.Graph`
(CSR arrays); networkx is quarantined in the graph layer so the hot path
never grows an accidental dependency on per-edge Python objects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation


class CoreLayering(Rule):
    code = "RNE006"
    name = "core-layering"
    description = "networkx imports are banned inside src/repro/core"

    def applies_to(self, ctx: FileContext) -> bool:
        return "repro/core/" in ctx.relpath

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "networkx":
                        yield self.violation(
                            ctx,
                            node,
                            "networkx import inside core/; go through "
                            "repro.graph instead (graph layer only)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "networkx":
                    yield self.violation(
                        ctx,
                        node,
                        "networkx import inside core/; go through "
                        "repro.graph instead (graph layer only)",
                    )
