"""RNE002 / RNE003: array-discipline rules.

The L1 SGD math in ``core/`` assumes float64 everywhere and assumes callers'
arrays are not mutated behind their back; both assumptions break silently,
so both are enforced statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .base import FileContext, Rule, Violation, np_call_name

#: Constructors whose dtype defaults silently drift with the platform /
#: numpy version.  ``np.array``/``asarray`` are excluded: they convert
#: existing data, where forcing a dtype can itself be the bug.
_DTYPE_CONSTRUCTORS = frozenset({"zeros", "ones", "empty", "full"})


def _root_name(node: ast.AST) -> Optional[str]:
    """Leftmost ``Name`` of an assignment target / argument expression."""
    cursor = node
    while isinstance(cursor, (ast.Attribute, ast.Subscript, ast.Starred)):
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        return cursor.id
    return None


class ExplicitDtype(Rule):
    code = "RNE002"
    name = "explicit-dtype"
    description = (
        "np.zeros/ones/empty/full in src/repro must pass an explicit dtype= "
        "so numeric precision never drifts with defaults"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "src/repro/" in ctx.relpath or ctx.relpath.startswith("repro/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = np_call_name(node)
            if (
                dotted
                and len(dotted) == 2
                and dotted[0] in ("np", "numpy")
                and dotted[1] in _DTYPE_CONSTRUCTORS
            ):
                if not any(kw.arg == "dtype" for kw in node.keywords):
                    yield self.violation(
                        ctx,
                        node,
                        f"np.{dotted[1]}() without an explicit dtype=; "
                        "pin the dtype to keep numeric behaviour deterministic",
                    )


class HiddenParameterMutation(Rule):
    code = "RNE003"
    name = "hidden-parameter-mutation"
    description = (
        "in-place ops / out= targeting function parameters in core/ "
        "(shared embedding arrays) need an explicit mutation-ok waiver"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "repro/core/" in ctx.relpath

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                root = _root_name(node.target)
                if root is None or root == "self":
                    continue
                fn = ctx.enclosing_function(node)
                if fn is not None and root in ctx.function_params(fn):
                    yield self.violation(
                        ctx,
                        node,
                        f"in-place update of parameter '{root}' mutates the "
                        "caller's array; document with '# mutation-ok' if "
                        "in-place semantics are the contract",
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg != "out":
                        continue
                    root = _root_name(kw.value)
                    if root is None or root == "self":
                        continue
                    fn = ctx.enclosing_function(node)
                    if fn is not None and root in ctx.function_params(fn):
                        yield self.violation(
                            ctx,
                            node,
                            f"out= writes into parameter '{root}'; document "
                            "with '# mutation-ok' if intentional",
                        )
