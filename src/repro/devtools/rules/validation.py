"""RNE005 / RNE007: runtime-validation discipline.

``assert`` disappears under ``python -O`` and conflates test expectations
with production validation; float ``==`` on computed distances is wrong for
every non-trivial path.  Both belong to the "fails only probabilistically"
class of bug the devtools exist to kill.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .base import FileContext, Rule, Violation

#: Identifier fragments that mark a value as a computed distance/metric.
_DISTANCE_FRAGMENTS = ("dist", "phi", "weight", "pred", "error")
#: Comparison partners that make float equality legitimate (exact
#: sentinels propagate exactly through min/+).
_EXACT_SENTINELS = frozenset({"INF", "inf"})


class NoBareAssert(Rule):
    code = "RNE005"
    name = "no-bare-assert"
    description = (
        "bare assert for runtime validation in src/ (stripped under -O); "
        "raise ValueError or use a devtools contract instead"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "src/repro/" in ctx.relpath or ctx.relpath.startswith("repro/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    ctx,
                    node,
                    "assert is stripped under 'python -O'; raise ValueError "
                    "(or use repro.devtools.contracts) for runtime validation",
                )


def _identifier_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _identifier_of(node.func)
    if isinstance(node, ast.Subscript):
        return _identifier_of(node.value)
    return None


def _is_distance_like(node: ast.AST) -> bool:
    ident = _identifier_of(node)
    if ident is None:
        return False
    lowered = ident.lower()
    return any(frag in lowered for frag in _DISTANCE_FRAGMENTS)


def _is_exact_sentinel(node: ast.AST) -> bool:
    ident = _identifier_of(node)
    if ident in _EXACT_SENTINELS:
        return True
    if isinstance(node, ast.Constant) and node.value == 0:
        return True
    if isinstance(node, ast.Attribute) and node.attr == "inf":
        return True
    return False


class NoFloatDistanceEquality(Rule):
    code = "RNE007"
    name = "no-float-distance-equality"
    description = (
        "== / != between computed distances; compare with a tolerance "
        "(np.isclose) — exact sentinels (0, INF) are exempt"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "src/repro/" in ctx.relpath or ctx.relpath.startswith("repro/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exact_sentinel(left) or _is_exact_sentinel(right):
                    continue
                if _is_distance_like(left) or _is_distance_like(right):
                    yield self.violation(
                        ctx,
                        node,
                        "float equality on a computed distance; use "
                        "np.isclose / an explicit tolerance "
                        "(waive with '# float-eq-ok' if integral)",
                    )
                    break
