"""Developer tooling: numeric-correctness static analysis + runtime contracts.

Two complementary layers guard the numpy discipline the RNE code relies on:

* :mod:`repro.devtools.lint` — a custom AST linter (rules ``RNE001`` …
  ``RNE009``) catching unseeded randomness, dtype drift, hidden mutation,
  Python-level hot loops, assert-based validation, layering violations,
  float equality on distances, missing ``seed`` parameters, and missing
  contracts on hot-path entry points.  Run it with::

      python -m repro.devtools.lint src tests benchmarks examples

* :mod:`repro.devtools.contracts` — lightweight ``@shapes`` decorators
  validating array shape / dtype / finiteness at module boundaries, with a
  ``REPRO_CONTRACTS=off`` switch so benchmarks pay zero cost.

See ``docs/DEVTOOLS.md`` for the full rule catalogue and waiver syntax.
"""

from .contracts import ContractError, contracts_enabled, set_contracts_enabled, shapes

__all__ = [
    "ContractError",
    "contracts_enabled",
    "set_contracts_enabled",
    "shapes",
]
