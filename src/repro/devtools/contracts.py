"""Runtime array contracts: shape / dtype / finiteness checks at boundaries.

The hand-derived numpy math in :mod:`repro.core` fails *silently* under
dtype drift or mis-shaped inputs (broadcasting hides most mistakes), so
module-boundary functions declare their array expectations with
:func:`shapes`::

    @shapes(pairs="(k,2):int", phi="(k,):float:finite", ret="(k,):float")
    def predict(pairs, phi): ...

Spec grammar (colon-separated segments, first is the shape):

* ``(n,d)`` — dimension symbols are unified across every spec of one call,
  so ``pairs="(k,2)"`` and ``phi="(k,)"`` must agree on ``k``.
* integer literals pin a dimension exactly; ``*`` matches any size.
* a leading ``...`` (``"(...,d)"``) allows any number of batch dimensions.
* ``()`` matches a scalar (Python number or 0-d array).
* dtype segment: ``float`` | ``int`` | ``bool`` | ``any`` (numpy kind check,
  so ``float32``/``float64`` both satisfy ``float``).
* ``finite`` segment: rejects NaN / infinity.
* a ``?`` prefix makes the argument optional (``None`` is accepted).

The reserved spec name ``ret`` validates the return value.

Checks run only while contracts are enabled.  The switch is the
``REPRO_CONTRACTS`` environment variable, read at import time (``off`` /
``0`` / ``false`` / ``no`` disable), plus :func:`set_contracts_enabled` for
tests.  When disabled at import time the decorator returns the function
*unwrapped* — benchmarks pay literally zero per-call cost; when disabled at
runtime the wrapper's only cost is one global bool check.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = [
    "ContractError",
    "contracts_enabled",
    "set_contracts_enabled",
    "shapes",
    "check_array",
]

F = TypeVar("F", bound=Callable[..., Any])

_FALSY = frozenset({"off", "0", "false", "no"})

_ENABLED: bool = os.environ.get("REPRO_CONTRACTS", "on").strip().lower() not in _FALSY
#: Whether the decorator was a no-op at import time (zero-cost mode).
_IMPORT_DISABLED: bool = not _ENABLED

_DTYPE_KINDS = {
    "float": "f",
    "int": "iu",
    "bool": "b",
    "any": None,
}


class ContractError(ValueError):
    """An array argument or return value violated its declared contract."""


def contracts_enabled() -> bool:
    """Whether contract validation currently runs."""
    return _ENABLED


def set_contracts_enabled(enabled: bool) -> bool:
    """Toggle validation at runtime (tests); returns the previous state.

    Has no effect on functions decorated while ``REPRO_CONTRACTS=off`` was
    set at import time — those were left unwrapped for zero cost.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


class _Spec:
    """One parsed contract spec string."""

    __slots__ = ("raw", "optional", "scalar", "dims", "variadic", "kind", "finite")

    def __init__(self, raw: str) -> None:
        self.raw = raw
        text = raw.strip()
        self.optional = text.startswith("?")
        if self.optional:
            text = text[1:].strip()
        segments = [seg.strip() for seg in text.split(":")]
        shape = segments[0]
        if not (shape.startswith("(") and shape.endswith(")")):
            raise ValueError(f"bad contract spec {raw!r}: shape must be '(...)'")
        body = shape[1:-1].strip().rstrip(",")
        dims = [d.strip() for d in body.split(",")] if body else []
        self.variadic = bool(dims) and dims[0] == "..."
        if self.variadic:
            dims = dims[1:]
        if any(d == "..." for d in dims):
            raise ValueError(f"bad contract spec {raw!r}: '...' must lead")
        self.dims: List[str] = dims
        self.scalar = not dims and not self.variadic
        self.kind: Optional[str] = None
        self.finite = False
        for seg in segments[1:]:
            if seg == "finite":
                self.finite = True
            elif seg in _DTYPE_KINDS:
                self.kind = _DTYPE_KINDS[seg]
            elif seg:
                raise ValueError(f"bad contract spec {raw!r}: unknown segment {seg!r}")


def _check_value(
    where: str,
    name: str,
    value: Any,
    spec: _Spec,
    bindings: Dict[str, int],
) -> None:
    if value is None:
        if spec.optional:
            return
        raise ContractError(f"{where}: argument '{name}' must not be None")
    arr = np.asarray(value)
    if spec.scalar:
        if arr.ndim != 0:
            raise ContractError(
                f"{where}: '{name}' must be a scalar, got shape {arr.shape}"
            )
    else:
        rank = len(spec.dims)
        if spec.variadic:
            if arr.ndim < rank:
                raise ContractError(
                    f"{where}: '{name}' must have rank >= {rank} "
                    f"(spec {spec.raw!r}), got shape {arr.shape}"
                )
            actual: Tuple[int, ...] = arr.shape[arr.ndim - rank :]
        else:
            if arr.ndim != rank:
                raise ContractError(
                    f"{where}: '{name}' must have rank {rank} "
                    f"(spec {spec.raw!r}), got shape {arr.shape}"
                )
            actual = arr.shape
        for sym, size in zip(spec.dims, actual):
            if sym == "*":
                continue
            if sym.isdigit():
                if size != int(sym):
                    raise ContractError(
                        f"{where}: '{name}' dimension must be {sym} "
                        f"(spec {spec.raw!r}), got shape {arr.shape}"
                    )
            elif sym in bindings:
                if bindings[sym] != size:
                    raise ContractError(
                        f"{where}: dimension '{sym}' of '{name}' is {size}, "
                        f"but '{sym}' = {bindings[sym]} elsewhere in the call"
                    )
            else:
                bindings[sym] = size
    if spec.kind is not None and arr.dtype.kind not in spec.kind:
        raise ContractError(
            f"{where}: '{name}' must have dtype kind [{spec.kind}] "
            f"(spec {spec.raw!r}), got dtype {arr.dtype}"
        )
    if spec.finite and arr.size and not np.isfinite(arr).all():
        raise ContractError(f"{where}: '{name}' must be finite (no NaN/inf)")


def check_array(
    name: str,
    value: Any,
    spec: str,
    *,
    bindings: Optional[Dict[str, int]] = None,
) -> None:
    """Imperative one-off contract check (same spec grammar as ``@shapes``).

    ``bindings`` lets successive calls share dimension symbols.
    """
    _check_value("check_array", name, value, _Spec(spec), bindings if bindings is not None else {})


def shapes(**specs: str) -> Callable[[F], F]:
    """Declare array contracts for named arguments (and ``ret``).

    See the module docstring for the spec grammar.  Unknown argument names
    raise ``TypeError`` at decoration time, so contracts cannot silently
    drift away from a changed signature.
    """
    parsed = {name: _Spec(raw) for name, raw in specs.items()}
    ret_spec = parsed.pop("ret", None)

    def decorate(fn: F) -> F:
        if _IMPORT_DISABLED:
            return fn
        import inspect

        sig = inspect.signature(fn)
        unknown = set(parsed) - set(sig.parameters)
        if unknown:
            raise TypeError(
                f"@shapes on {fn.__qualname__}: no such argument(s) {sorted(unknown)}"
            )
        # Precompute positional indices so the hot path avoids sig.bind().
        positions: Dict[str, int] = {}
        for i, pname in enumerate(sig.parameters):
            if pname in parsed:
                positions[pname] = i
        defaults = {
            pname: param.default
            for pname, param in sig.parameters.items()
            if pname in parsed and param.default is not inspect.Parameter.empty
        }
        where = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _ENABLED:
                bindings: Dict[str, int] = {}
                for pname, spec in parsed.items():
                    idx = positions[pname]
                    if idx < len(args):
                        value = args[idx]
                    elif pname in kwargs:
                        value = kwargs[pname]
                    elif pname in defaults:
                        value = defaults[pname]
                    else:  # missing required arg: let Python raise its own error
                        return fn(*args, **kwargs)
                    _check_value(where, pname, value, spec, bindings)
                out = fn(*args, **kwargs)
                if ret_spec is not None:
                    _check_value(where, "return", out, ret_spec, bindings)
                return out
            return fn(*args, **kwargs)

        wrapper.__contract_specs__ = dict(specs)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def expected_entry_points() -> Dict[str, Sequence[str]]:
    """Hot-path entry points that must carry a ``@shapes`` contract.

    Keyed by path suffix relative to the repo; values are function names or
    ``Class.method`` names.  The linter's RNE009 rule enforces this list —
    keeping it here (next to the decorator) makes the contract layer and
    its static verification impossible to update independently by accident.
    """
    return {
        "repro/core/model.py": (
            "lp_distance",
            "lp_gradient",
            "RNEModel.query_pairs",
        ),
        "repro/core/training.py": ("train_flat", "train_hierarchical"),
        "repro/core/finetune.py": ("active_finetune",),
        "repro/core/index.py": (
            "EmbeddingTreeIndex.range_query",
            "EmbeddingTreeIndex.knn_query",
        ),
        "repro/core/hierarchical.py": (
            "HierarchicalRNE.global_vectors",
            "HierarchicalRNE.query_pairs",
        ),
        "repro/graph/hierarchy.py": ("PartitionHierarchy.from_ancestor_rows",),
    }
