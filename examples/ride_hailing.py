"""Ride hailing: match passengers to their closest cars (the Uber scenario).

Run:  python examples/ride_hailing.py

The paper's motivating example: each incoming passenger must be compared
against ~1K candidate cars, so matching throughput is dominated by
shortest-path-distance computation.  This script simulates a fleet on a
radial (Beijing-style) city and measures end-to-end matching with

  1. exact incremental Dijkstra (the no-index baseline),
  2. the G-tree partition index (V-tree's mechanism; exact),
  3. RNE embedding kNN (approximate, O(d) per candidate).

It reports per-request latency and how often RNE picks the truly closest
car (top-1 agreement) or a car within 5% of the optimum.
"""

from __future__ import annotations

import time

import numpy as np

from repro import RNEConfig, build_rne, radial_city
from repro.algorithms import pair_distances
from repro.algorithms.knn import knn_true
from repro.baselines import GTreeIndex


def main() -> None:
    print("Building a radial city and a fleet...")
    graph = radial_city(12, 48, seed=3)
    rng = np.random.default_rng(0)
    n_cars, n_requests = 300, 100
    cars = rng.choice(graph.n, size=n_cars, replace=False)
    street = np.setdiff1d(np.arange(graph.n), cars)  # don't spawn on a car
    passengers = rng.choice(street, size=n_requests)
    print(f"  {graph.n} intersections, {n_cars} cars, {n_requests} requests")

    print("\nTraining RNE + building G-tree...")
    rne = build_rne(graph, RNEConfig(d=32, seed=0))
    gtree = GTreeIndex(graph, num_cells=12, seed=0)
    print(f"  RNE error after training: "
          f"{rne.history.phase_errors['final'] * 100:.2f}%")

    def time_matcher(name, fn):
        start = time.perf_counter()
        picks = [fn(int(p)) for p in passengers]
        elapsed = (time.perf_counter() - start) / n_requests * 1e3
        print(f"  {name:<22} {elapsed:8.3f} ms/request")
        return picks

    print("\nMatching every passenger to the closest car:")
    exact_picks = time_matcher(
        "Dijkstra (exact)", lambda p: int(knn_true(graph, p, cars, 1)[0])
    )
    gtree_picks = time_matcher(
        "G-tree (exact)", lambda p: int(gtree.knn(p, cars, 1)[0])
    )
    rne_picks = time_matcher(
        "RNE kNN (approx)", lambda p: int(rne.knn(p, cars, 1)[0])
    )

    # G-tree must agree with Dijkstra by distance (ties may differ).
    for p, a, b in zip(passengers, exact_picks, gtree_picks):
        da, db = (
            pair_distances(graph, np.array([[p, a], [p, b]]))
        )
        assert abs(da - db) < 1e-6, "G-tree disagreed with exact matching"

    print("\nRNE matching quality:")
    top1 = 0
    detours = []
    for p, best, got in zip(passengers, exact_picks, rne_picks):
        d_best, d_got = pair_distances(graph, np.array([[p, best], [p, got]]))
        top1 += int(d_got <= d_best + 1e-9)
        detours.append(d_got / max(d_best, 1e-9) - 1.0)
    print(f"  top-1 agreement          : {top1 / n_requests * 100:.0f}%")
    print(f"  mean pickup detour       : {np.mean(detours) * 100:.2f}%")
    print(f"  95th percentile detour   : {np.percentile(detours, 95) * 100:.2f}%")


if __name__ == "__main__":
    main()
