"""Certified queries: RNE speed with hard landmark error bounds.

Run:  python examples/certified_queries.py

RNE answers in O(d) but gives no per-query guarantee.  The hybrid
estimator (an extension beyond the paper, see DESIGN.md) sandwiches each
RNE estimate between certified triangle-inequality bounds from a small
landmark table, so an application can

  * clamp the estimate into the certified interval (never hurts accuracy),
  * read off a hard worst-case error for *this* query, and
  * route only the loosely certified queries to an exact method.

This script measures how many queries a 16-landmark certificate already
settles within 5%, and the exact-fallback rate that remains.
"""

from __future__ import annotations

import numpy as np

from repro import RNEConfig, build_rne, grid_city
from repro.algorithms import pair_distances
from repro.core import HybridEstimator


def main() -> None:
    print("Building network and training RNE...")
    graph = grid_city(22, 22, seed=9)
    rne = build_rne(graph, RNEConfig(d=32, seed=0))
    print(f"  base RNE error: {rne.history.phase_errors['final'] * 100:.2f}%")

    rng = np.random.default_rng(1)
    pairs = rng.integers(graph.n, size=(3000, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    truth = pair_distances(graph, pairs)

    for num_landmarks in (4, 16, 64):
        hybrid = HybridEstimator(
            rne.model, graph, num_landmarks=num_landmarks, seed=0
        )
        est, lowers, uppers = hybrid.query_pairs(pairs)
        contained = np.mean((lowers <= truth + 1e-9) & (truth <= uppers + 1e-9))
        width = (uppers - lowers) / np.maximum(lowers, 1e-9)
        certified_5 = float(np.mean(width <= 0.05))
        raw_err = np.abs(rne.query_pairs(pairs) - truth) / truth
        hyb_err = np.abs(est - truth) / truth
        print(f"\n|U| = {num_landmarks}:")
        print(f"  bounds contain truth        : {contained * 100:.1f}% (must be 100%)")
        print(f"  queries certified within 5% : {certified_5 * 100:.1f}%")
        print(f"  mean e_rel raw RNE          : {raw_err.mean() * 100:.2f}%")
        print(f"  mean e_rel clamped hybrid   : {hyb_err.mean() * 100:.2f}%")
        loose = hybrid.loose_queries(pairs, tolerance=0.05)
        print(f"  exact-fallback rate at 5%   : {len(loose) / len(pairs) * 100:.1f}%")


if __name__ == "__main__":
    main()
