"""POI search: range and kNN queries over points of interest (the Yelp
scenario).

Run:  python examples/poi_search.py

Section VI of the paper extends RNE with a tree-structured index over the
embedding so that "restaurants within 2 km" (range) and "5 nearest hotels"
(kNN) run without any graph search.  This script builds a multi-city road
network, scatters POIs, and scores the embedding index against exact
network-distance ground truth with the F1 measure from Fig. 16.
"""

from __future__ import annotations

import time

import numpy as np

from repro import RNEConfig, build_rne, multi_city
from repro.algorithms.knn import knn_true, range_true
from repro.core.metrics import f1_score


def main() -> None:
    print("Building a 4-city road network with highways...")
    graph = multi_city(4, 14, 14, seed=5)
    rng = np.random.default_rng(2)
    pois = np.sort(rng.choice(graph.n, size=250, replace=False))
    users = rng.choice(graph.n, size=40, replace=False)
    print(f"  {graph.n} vertices, {len(pois)} POIs, {len(users)} users")

    print("\nTraining RNE (this powers both query types)...")
    rne = build_rne(graph, RNEConfig(d=48, lr=0.015, seed=0))
    print(f"  final training error: "
          f"{rne.history.phase_errors['final'] * 100:.2f}%")

    # Range queries: "all POIs within tau of me".
    diameter = float(
        np.max(rne.query_pairs(rng.integers(graph.n, size=(500, 2))))
    )
    print("\nRange queries (F1 against exact network ranges):")
    for frac in (0.05, 0.15, 0.30):
        tau = frac * diameter
        scores = []
        start = time.perf_counter()
        for u in users:
            got = rne.range_query(int(u), pois, tau)
            scores.append(f1_score(got, range_true(graph, int(u), pois, tau)))
        per_q = (time.perf_counter() - start) / len(users) * 1e6
        print(f"  tau = {frac:>4.0%} of diameter : F1 = {np.mean(scores):.3f}  "
              f"({per_q:7.1f} us/query incl. ground truth check)")

    print("\nkNN queries (F1 of the returned POI sets):")
    for k in (1, 5, 10):
        scores = []
        for u in users:
            got = rne.knn(int(u), pois, k)
            scores.append(f1_score(got, knn_true(graph, int(u), pois, k)))
        print(f"  k = {k:>2} : F1 = {np.mean(scores):.3f}")

    print("\nNote: F1 < 1 cases are near-boundary POIs whose approximate "
          "distance falls on the other side of the threshold — the error "
          "profile Fig. 16 of the paper quantifies.")


if __name__ == "__main__":
    main()
