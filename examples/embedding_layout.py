"""Embedding layout: reproduce Fig. 7's flat-vs-hierarchical comparison.

Run:  python examples/embedding_layout.py

The paper's Fig. 7 shows 2-d embeddings of Manhattan: trained flat, many
vertices collapse into corner clusters; trained hierarchically, the
embedding preserves the city's global layout.  This script trains both at
d=2 on a grid city, renders each embedding as an ASCII density map, and
prints the collapse statistic.
"""

from __future__ import annotations

import numpy as np

from repro import grid_city
from repro.bench.experiments import _collapse_fraction
from repro.core import (
    DistanceLabeler,
    HierarchicalRNE,
    RNEModel,
    TrainConfig,
    landmark_samples,
    level_schedule,
    random_pair_samples,
    train_flat,
    train_hierarchical,
    subgraph_level_samples,
    vertex_only_schedule,
)
from repro.core.training import new_adam_states
from repro.algorithms import select_landmarks
from repro.graph import PartitionHierarchy


def ascii_density(matrix: np.ndarray, *, rows: int = 14, cols: int = 44) -> str:
    """Render a 2-d point set as an ASCII density map."""
    xs, ys = matrix[:, 0], matrix[:, 1]
    span_x = float(xs.max() - xs.min())
    span_y = float(ys.max() - ys.min())
    if span_x == 0 or span_y == 0:
        return "(degenerate layout)"
    gx = np.clip(((xs - xs.min()) / span_x * (cols - 1)).astype(int), 0, cols - 1)
    gy = np.clip(((ys - ys.min()) / span_y * (rows - 1)).astype(int), 0, rows - 1)
    counts = np.zeros((rows, cols), dtype=int)
    np.add.at(counts, (gy, gx), 1)
    shades = " .:+*#@"
    top = counts.max()
    lines = []
    for r in range(rows - 1, -1, -1):
        line = "".join(
            shades[min(int(c / max(top, 1) * (len(shades) - 1) * 2), len(shades) - 1)]
            for c in counts[r]
        )
        lines.append("|" + line + "|")
    return "\n".join(lines)


def main() -> None:
    graph = grid_city(20, 20, seed=11)
    labeler = DistanceLabeler(graph)
    rng = np.random.default_rng(0)
    probe = random_pair_samples(graph, 400, labeler, rng)[1]
    mean_phi = float(np.mean(probe))
    d = 2
    scale = mean_phi * np.sqrt(np.pi) / (2 * d)

    print("Training a FLAT 2-d embedding on random pairs...")
    flat = RNEModel.random(graph.n, d, scale=scale, seed=1)
    for _ in range(6):
        pairs, phi = random_pair_samples(graph, 8000, labeler, rng)
        train_flat(flat, pairs, phi, TrainConfig(epochs=3, lr=0.05), rng)

    print("Training a HIERARCHICAL 2-d embedding (Algorithm 1)...")
    hierarchy = PartitionHierarchy(graph, fanout=4, leaf_size=32, seed=2)
    hier = HierarchicalRNE(hierarchy, d, init_scale=scale, seed=2)
    adam = new_adam_states(hier)
    for focus in range(hierarchy.num_subgraph_levels):
        pairs, phi = subgraph_level_samples(hierarchy, focus, 6000, labeler, rng)
        train_hierarchical(
            hier, pairs, phi, level_schedule(focus, hier.num_levels),
            TrainConfig(epochs=3, lr=0.05), rng, adam_states=adam,
        )
    landmarks = select_landmarks(graph, 40, seed=3)
    for _ in range(5):
        pairs, phi = landmark_samples(graph, landmarks, 8000, labeler, rng)
        train_hierarchical(
            hier, pairs, phi, vertex_only_schedule(hier.num_levels),
            TrainConfig(epochs=2, lr=0.05), rng, adam_states=adam,
        )

    print("\nOriginal city (vertex coordinates):")
    print(ascii_density(graph.coords))
    print("\nFlat-trained embedding (Fig. 7b — look for collapsed clumps):")
    print(ascii_density(flat.matrix))
    print("\nHierarchically trained embedding (Fig. 7c — layout preserved):")
    print(ascii_density(hier.global_matrix()))

    print("\nCollapse statistic (share of near-coincident embedding pairs):")
    print(f"  flat         : {_collapse_fraction(flat.matrix) * 100:.2f}%")
    print(f"  hierarchical : {_collapse_fraction(hier.global_matrix()) * 100:.2f}%")


if __name__ == "__main__":
    main()
