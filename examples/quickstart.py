"""Quickstart: train an RNE on a synthetic city and query distances.

Run:  python examples/quickstart.py

Builds a perturbed-grid road network, trains the hierarchical road-network
embedding (Algorithm 1 of the paper), and compares its O(d) approximate
distance queries against exact Dijkstra ground truth.
"""

from __future__ import annotations

import time

import numpy as np

from repro import RNEConfig, build_rne, grid_city
from repro.algorithms import pair_distances
from repro.core.metrics import error_report


def main() -> None:
    print("Building a 24x24 grid city (~576 vertices)...")
    graph = grid_city(24, 24, seed=7)
    print(f"  {graph.n} vertices, {graph.m} edges")

    print("\nTraining the road network embedding (hierarchy -> vertices -> "
          "active fine-tuning)...")
    config = RNEConfig(d=32, seed=0)
    start = time.perf_counter()
    rne = build_rne(graph, config)
    print(f"  trained in {time.perf_counter() - start:.1f}s; "
          f"index = {rne.index_bytes() / 1024:.0f} KB")
    for phase, err in rne.history.phase_errors.items():
        print(f"  {phase:>18}: mean relative error {err * 100:.2f}%")

    print("\nSpot-checking 5 random queries against exact Dijkstra:")
    rng = np.random.default_rng(1)
    pairs = rng.integers(graph.n, size=(5, 2))
    truth = pair_distances(graph, pairs)
    for (s, t), exact in zip(pairs, truth):
        approx = rne.query(int(s), int(t))
        print(f"  d({s:>3}, {t:>3})  exact={exact:8.1f}  "
              f"rne={approx:8.1f}  err={abs(approx - exact) / exact * 100:5.2f}%")

    print("\nThroughput comparison on 10,000 queries:")
    big = rng.integers(graph.n, size=(10_000, 2))
    start = time.perf_counter()
    rne.query_pairs(big)
    rne_time = time.perf_counter() - start
    start = time.perf_counter()
    pair_distances(graph, big[:500])  # exact is too slow for the full batch
    exact_time = (time.perf_counter() - start) * 20
    print(f"  RNE   : {rne_time * 1e6 / len(big):8.2f} us/query")
    print(f"  exact : {exact_time * 1e6 / len(big):8.2f} us/query "
          f"(extrapolated) -> {exact_time / rne_time:.0f}x slower")

    work = rng.integers(graph.n, size=(2000, 2))
    report = error_report(rne.query_pairs(work), pair_distances(graph, work))
    print(f"\nOverall: {report}")


if __name__ == "__main__":
    main()
